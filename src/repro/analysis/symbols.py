"""Symbol-hygiene pass: referential integrity, reachability, productivity.

Codes (see the catalogue in ``docs/GRAMMAR.md``):

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
G001  error     production component references an undeclared symbol
G002  error     start symbol is not a declared nonterminal
G003  error     nonterminal is declared (or referenced) but has no productions
G004  warning   nonterminal unreachable from the start symbol
G005  warning   unproductive nonterminal (its fix-point can never bottom out
                in terminals, so no instance of it is ever constructed)
G006  warning   terminal declared but used by no production
G007  warning   duplicate production name (ambiguous provenance in
                schedules, caches, and diagnostics)
G008  warning   dead production (a component can never be instantiated, so
                the production can never apply)
====  ========  ==============================================================

Reachability and productivity are the classic fix-point computations over
the production set; both run on the *declared* data only, so they work on
unvalidated views.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.view import GrammarView


def productive_symbols(view: GrammarView) -> set[str]:
    """Symbols that can derive at least one all-terminal instance.

    Terminals are productive by definition; a nonterminal is productive
    once some production of it has all-productive components (fix-point).
    """
    productive: set[str] = set(view.terminals)
    changed = True
    while changed:
        changed = False
        for production in view.productions:
            if production.head in productive:
                continue
            if all(c in productive for c in production.components):
                productive.add(production.head)
                changed = True
    return productive


def reachable_symbols(view: GrammarView) -> set[str]:
    """Symbols reachable from the start symbol through productions."""
    reachable: set[str] = {view.start}
    changed = True
    while changed:
        changed = False
        for production in view.productions:
            if production.head in reachable:
                for component in production.components:
                    if component not in reachable:
                        reachable.add(component)
                        changed = True
    return reachable


def check_symbols(view: GrammarView) -> list[Diagnostic]:
    """Run the symbol-hygiene pass."""
    diagnostics: list[Diagnostic] = []
    alphabet = view.alphabet
    heads = {production.head for production in view.productions}

    # G001: undeclared component symbols.
    seen_undeclared: set[tuple[str, str]] = set()
    for production in view.productions:
        for component in production.components:
            key = (production.name, component)
            if component not in alphabet and key not in seen_undeclared:
                seen_undeclared.add(key)
                diagnostics.append(
                    Diagnostic(
                        code="G001",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"production {production.name} references "
                            f"undeclared symbol {component!r}"
                        ),
                        symbol=component,
                        production=production.name,
                    )
                )

    # G002: start symbol must be a nonterminal.
    if view.start not in view.nonterminals:
        hint = (
            "it is a terminal"
            if view.start in view.terminals
            else "it is not declared at all"
        )
        diagnostics.append(
            Diagnostic(
                code="G002",
                severity=SEVERITY_ERROR,
                message=(
                    f"start symbol {view.start!r} is not a declared "
                    f"nonterminal ({hint})"
                ),
                symbol=view.start,
            )
        )

    # G003: nonterminals that no production defines.  Declared-but-headless
    # symbols silently produce empty instance pools at parse time -- every
    # production referencing them is dead.
    referenced = {
        component
        for production in view.productions
        for component in production.components
    }
    for symbol in sorted(view.nonterminals - heads):
        used = symbol in referenced or symbol == view.start
        diagnostics.append(
            Diagnostic(
                code="G003",
                severity=SEVERITY_ERROR,
                message=(
                    f"nonterminal {symbol!r} has no productions"
                    + (
                        "; every production or preference referencing it "
                        "can never fire"
                        if used
                        else " and is never referenced"
                    )
                ),
                symbol=symbol,
            )
        )

    # G004: unreachable nonterminals (only meaningful with a valid start).
    if view.start in view.nonterminals:
        reachable = reachable_symbols(view)
        for symbol in sorted(view.nonterminals - reachable):
            diagnostics.append(
                Diagnostic(
                    code="G004",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"nonterminal {symbol!r} is unreachable from the "
                        f"start symbol {view.start!r}; its parses can "
                        "never join a maximal tree rooted in the start"
                    ),
                    symbol=symbol,
                )
            )

    # G005: unproductive nonterminals.
    productive = productive_symbols(view)
    unproductive = sorted(
        symbol for symbol in heads if symbol not in productive
    )
    for symbol in unproductive:
        diagnostics.append(
            Diagnostic(
                code="G005",
                severity=SEVERITY_WARNING,
                message=(
                    f"nonterminal {symbol!r} is unproductive: none of its "
                    "productions can ever bottom out in terminals, so no "
                    "instance of it is ever constructed"
                ),
                symbol=symbol,
            )
        )

    # G006: unused terminals.
    for symbol in sorted(view.terminals - referenced):
        diagnostics.append(
            Diagnostic(
                code="G006",
                severity=SEVERITY_WARNING,
                message=(
                    f"terminal {symbol!r} is declared but used by no "
                    "production; its tokens can only ever be uncovered "
                    "input"
                ),
                symbol=symbol,
            )
        )

    # G007: duplicate production names.
    by_name: dict[str, int] = {}
    for production in view.productions:
        by_name[production.name] = by_name.get(production.name, 0) + 1
    for name in sorted(n for n, count in by_name.items() if count > 1):
        diagnostics.append(
            Diagnostic(
                code="G007",
                severity=SEVERITY_WARNING,
                message=(
                    f"production name {name!r} is declared "
                    f"{by_name[name]} times; provenance in schedules and "
                    "diagnostics becomes ambiguous"
                ),
                production=name,
                data={"count": by_name[name]},
            )
        )

    # G008: dead productions (components that can never be instantiated:
    # headless nonterminals or unproductive symbols).  Undeclared symbols
    # are already G001 errors; do not double-report them here.
    for production in view.productions:
        dead = sorted(
            {
                component
                for component in production.components
                if component in alphabet
                and (
                    (component in view.nonterminals and component not in heads)
                    or (component in heads and component not in productive)
                )
            }
        )
        if dead:
            diagnostics.append(
                Diagnostic(
                    code="G008",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"production {production.name} is dead: "
                        f"component(s) {', '.join(repr(d) for d in dead)} "
                        "can never be instantiated"
                    ),
                    production=production.name,
                    symbol=dead[0],
                    data={"components": list(dead)},
                )
            )

    return diagnostics
