"""Coverage/derivability pass: §6.4's incompleteness argument, statically.

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
C001  warning   the tokenizer emits a token class the grammar does not even
                declare -- those tokens can only ever be uncovered input
C002  warning   a token class is consumed *only* by productions whose heads
                are unreachable from the start symbol; its tokens reach the
                fix-point but never a maximal tree
C003  info      an attribute-pattern shape (input control with 0-2 label
                texts) has no derivation by any symbol: forms using that
                arrangement fall outside the grammar, the §6.4 failure mode
C004  info      a shape is derivable only through assembly-level recursion
                (row/column chaining or the start symbol), never as one
                pattern-level instance -- the tokens parse as *disjoint*
                conditions and the merger reports missing elements
C005  info      the yield enumeration was truncated; the coverage verdicts
                are best-effort for the affected symbols
====  ========  ==============================================================

C001/C003/C004/C005 need a tokenizer vocabulary
(:class:`repro.grammar.vocabulary.TokenVocabulary`) and only run when one
is supplied -- ``repro lint --coverage`` passes the form tokenizer's; a
plain :func:`~repro.analysis.analyzer.analyze_grammar` call does not, so
grammars over private alphabets (navmenu) are not spammed.  C002 is a pure
grammar property and always runs.

The *shapes* enumerated are the paper's attribute-pattern skeletons: one
input control plus zero, one, or two label texts --
``(a)``, ``(text, a)``, ``(text, a, a)``, ``(text, text, a)`` for every
input class ``a``.  This is deliberately the vocabulary of Figure 12's
pattern tier, not arbitrary multisets: it keeps the matrix small, readable,
and aligned with what §6.4 counted.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.symbols import reachable_symbols
from repro.analysis.view import GrammarView
from repro.analysis.yields import (
    Multiset,
    YieldSummary,
    compute_yields,
    derives_relation,
)
from repro.grammar.vocabulary import TokenVocabulary


def pattern_shapes(
    view: GrammarView, vocabulary: TokenVocabulary
) -> list[Multiset]:
    """The attribute-pattern skeletons the coverage matrix enumerates."""
    shapes: list[Multiset] = []
    has_text = "text" in view.terminals
    for input_class in sorted(vocabulary.input_classes):
        if input_class not in view.terminals:
            continue  # C001's territory: the class is not even declared
        shapes.append((input_class,))
        if has_text:
            shapes.append(tuple(sorted(("text", input_class))))
            shapes.append(
                tuple(sorted(("text", input_class, input_class)))
            )
            shapes.append(tuple(sorted(("text", "text", input_class))))
    return shapes


def _assembly_symbols(view: GrammarView) -> set[str]:
    """Symbols that chain instances rather than form one pattern:
    directly-or-transitively self-recursive heads, plus the start."""
    derives = derives_relation(view)
    recursive = {
        head for head, reached in derives.items() if head in reached
    }
    recursive.add(view.start)
    return recursive


def coverage_matrix(
    view: GrammarView,
    vocabulary: TokenVocabulary,
    summary: YieldSummary | None = None,
) -> dict[str, object]:
    """The machine-readable coverage matrix behind ``repro lint --coverage``.

    One row per pattern shape: ``covered`` (a pattern-level symbol derives
    it), ``assembly-only`` (only recursive assembly symbols derive it), or
    ``uncovered`` (nothing derives it).
    """
    if summary is None:
        summary = compute_yields(view)
    assembly = _assembly_symbols(view)
    rows: list[dict[str, object]] = []
    for shape in pattern_shapes(view, vocabulary):
        derivers = sorted(
            symbol
            for symbol in view.nonterminals
            if shape in summary.yields.get(symbol, frozenset())
        )
        pattern_level = [s for s in derivers if s not in assembly]
        if pattern_level:
            status = "covered"
        elif derivers:
            status = "assembly-only"
        else:
            status = "uncovered"
        rows.append(
            {
                "shape": list(shape),
                "status": status,
                "symbols": pattern_level if pattern_level else derivers,
            }
        )
    return {
        "grammar": view.name,
        "vocabulary": sorted(vocabulary.classes),
        "input_classes": sorted(vocabulary.input_classes),
        "undeclared_classes": sorted(
            vocabulary.classes - view.terminals
        ),
        "shapes": rows,
        "truncated_symbols": sorted(summary.truncated),
    }


def render_coverage_matrix(matrix: dict[str, object]) -> str:
    """Human-readable rendering of :func:`coverage_matrix`."""
    lines = [f"coverage matrix for grammar {matrix['grammar']}:"]
    shapes = matrix["shapes"]
    assert isinstance(shapes, list)
    for row in shapes:
        shape = "+".join(row["shape"])
        symbols = ", ".join(row["symbols"]) or "-"
        lines.append(f"  {row['status']:13s} {shape:40s} {symbols}")
    undeclared = matrix["undeclared_classes"]
    assert isinstance(undeclared, list)
    if undeclared:
        lines.append(
            "  undeclared token classes: " + ", ".join(undeclared)
        )
    truncated = matrix["truncated_symbols"]
    assert isinstance(truncated, list)
    if truncated:
        lines.append(
            "  (yield enumeration truncated for: "
            + ", ".join(truncated)
            + ")"
        )
    counts: dict[str, int] = {}
    for row in shapes:
        status = row["status"]
        counts[status] = counts.get(status, 0) + 1
    lines.append(
        "  total: "
        + ", ".join(
            f"{counts.get(s, 0)} {s}"
            for s in ("covered", "assembly-only", "uncovered")
        )
    )
    return "\n".join(lines)


def check_coverage(
    view: GrammarView,
    summary: YieldSummary | None = None,
    vocabulary: TokenVocabulary | None = None,
) -> list[Diagnostic]:
    """Run the coverage pass (C001-C005; see module doc for gating)."""
    if summary is None:
        summary = compute_yields(view)
    diagnostics: list[Diagnostic] = []

    # C002: token classes feeding only unreachable heads.  Needs a valid
    # start (otherwise reachability is meaningless -- G002's problem).
    if view.start in view.nonterminals:
        reachable = reachable_symbols(view)
        consumers: dict[str, set[str]] = {}
        for production in view.productions:
            for component in production.components:
                if component in view.terminals:
                    consumers.setdefault(component, set()).add(
                        production.head
                    )
        for terminal in sorted(consumers):
            heads = consumers[terminal]
            if heads and not heads & reachable:
                diagnostics.append(
                    Diagnostic(
                        code="C002",
                        severity=SEVERITY_WARNING,
                        message=(
                            f"token class {terminal!r} is consumed only "
                            "by productions of unreachable head(s) "
                            f"{', '.join(sorted(heads))}; its tokens can "
                            "never join a maximal tree"
                        ),
                        symbol=terminal,
                        data={"heads": sorted(heads)},
                    )
                )

    if vocabulary is None:
        return diagnostics

    # C001: classes the tokenizer emits but the grammar never declared.
    for missing in sorted(vocabulary.classes - view.terminals):
        diagnostics.append(
            Diagnostic(
                code="C001",
                severity=SEVERITY_WARNING,
                message=(
                    f"the tokenizer emits token class {missing!r} but "
                    "the grammar does not declare it; those tokens can "
                    "only ever be uncovered input"
                ),
                symbol=missing,
            )
        )

    # C003/C004: the shape matrix.
    matrix = coverage_matrix(view, vocabulary, summary)
    rows = matrix["shapes"]
    assert isinstance(rows, list)
    for row in rows:
        shape = row["shape"]
        assert isinstance(shape, list)
        label = "+".join(shape)
        if row["status"] == "uncovered":
            diagnostics.append(
                Diagnostic(
                    code="C003",
                    severity=SEVERITY_INFO,
                    message=(
                        f"attribute-pattern shape ({label}) has no "
                        "derivation: forms arranging tokens this way "
                        "fall outside the grammar (the §6.4 "
                        "incompleteness failure mode)"
                    ),
                    data={"shape": shape},
                )
            )
        elif row["status"] == "assembly-only":
            symbols = row["symbols"]
            assert isinstance(symbols, list)
            diagnostics.append(
                Diagnostic(
                    code="C004",
                    severity=SEVERITY_INFO,
                    message=(
                        f"attribute-pattern shape ({label}) is derivable "
                        "only through assembly recursion "
                        f"({', '.join(symbols)}); the tokens parse as "
                        "disjoint items and the merger will report "
                        "missing elements instead of one condition"
                    ),
                    data={"shape": shape, "symbols": symbols},
                )
            )

    # C005: honesty about the caps.
    if summary.truncated:
        truncated = sorted(summary.truncated)
        diagnostics.append(
            Diagnostic(
                code="C005",
                severity=SEVERITY_INFO,
                message=(
                    "coverage verdicts are best-effort: yield "
                    f"enumeration was truncated for {len(truncated)} "
                    "symbol(s); a shape reported uncovered could still "
                    "be derivable past the enumeration caps"
                ),
                data={"symbols": truncated},
            )
        )
    return diagnostics
