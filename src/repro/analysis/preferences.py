"""Preference pass: arbitration rules that cannot do what they say.

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
P001  error     preference references an undeclared symbol
P002  warning   preference can never fire (neither symbol is ever
                instantiated by a scheduled fix-point)
P003  warning   trivial self-preference (``A > A`` with the always-true
                condition and criteria) -- every conflicting pair
                invalidates itself both ways
P004  warning   mutually-contradictory trivial pair (``A > B`` and
                ``B > A``, both unconditional)
P005  warning   preference shadowed by an earlier unconditional
                preference on the same symbol pair
P006  warning   duplicate preference name
P007  error     condition or criteria is not a binary predicate
====  ========  ==============================================================

"Trivial" means both the condition and the criteria are the shared
:func:`repro.grammar.preference.always` sentinel (identity check -- a
user-written always-true lambda is *not* assumed trivial, because the
analyzer cannot prove it).

The firing model behind P002 mirrors the parser: preferences are enforced
at the end of each *scheduled* symbol's fix-point
(``grammar.preferences_involving(symbol)``), and the schedule contains
production heads only.  A preference whose two symbols are both terminals
(or headless nonterminals) is therefore dead weight.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.productions import _arity_problem
from repro.analysis.view import GrammarView
from repro.grammar.preference import Preference, always


def is_trivial(preference: Preference) -> bool:
    """Unconditional preference: always applies, winner always wins."""
    return preference.condition is always and preference.criteria is always


def check_preferences(view: GrammarView) -> list[Diagnostic]:
    """Run the preference pass."""
    diagnostics: list[Diagnostic] = []
    alphabet = view.alphabet
    heads = {production.head for production in view.productions}

    trivial_pairs_seen: dict[tuple[str, str], str] = {}
    name_counts: dict[str, int] = {}

    for preference in view.preferences:
        pair = (preference.winner_symbol, preference.loser_symbol)
        name_counts[preference.name] = name_counts.get(preference.name, 0) + 1

        # P001: undeclared symbols.
        for role, symbol in (
            ("winner", preference.winner_symbol),
            ("loser", preference.loser_symbol),
        ):
            if symbol not in alphabet:
                diagnostics.append(
                    Diagnostic(
                        code="P001",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"preference {preference.name} names "
                            f"undeclared symbol {symbol!r} as its {role}"
                        ),
                        symbol=symbol,
                        preference=preference.name,
                        data={"role": role},
                    )
                )

        # P002: never enforced.  Enforcement runs at the end of each
        # scheduled head's fix-point, so a preference fires only if at
        # least one of its symbols is a production head.
        involved_heads = [s for s in pair if s in heads]
        declared = [s for s in pair if s in alphabet]
        if not involved_heads and len(declared) == len(pair):
            diagnostics.append(
                Diagnostic(
                    code="P002",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"preference {preference.name} can never fire: "
                        f"neither {pair[0]!r} nor {pair[1]!r} heads a "
                        "production, and preferences are only enforced "
                        "when a scheduled head finishes instantiating"
                    ),
                    preference=preference.name,
                )
            )

        # P003: trivial self-preference.
        if pair[0] == pair[1] and is_trivial(preference):
            diagnostics.append(
                Diagnostic(
                    code="P003",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"preference {preference.name} prefers "
                        f"{pair[0]!r} over itself unconditionally; every "
                        "conflicting pair of instances invalidates both "
                        "members (self-preferences need a non-trivial "
                        "criterion such as subsumption)"
                    ),
                    symbol=pair[0],
                    preference=preference.name,
                )
            )

        # P004: unconditional A > B after an unconditional B > A.
        reverse = (pair[1], pair[0])
        if (
            pair[0] != pair[1]
            and is_trivial(preference)
            and reverse in trivial_pairs_seen
        ):
            diagnostics.append(
                Diagnostic(
                    code="P004",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"preference {preference.name} unconditionally "
                        f"prefers {pair[0]!r} over {pair[1]!r}, but "
                        f"{trivial_pairs_seen[reverse]} unconditionally "
                        "prefers the reverse; conflicting instances "
                        "invalidate each other both ways"
                    ),
                    preference=preference.name,
                    data={"contradicts": trivial_pairs_seen[reverse]},
                )
            )

        # P005: anything after an unconditional preference on the same
        # pair is shadowed -- the earlier rule already invalidates every
        # conflicting loser.
        if pair in trivial_pairs_seen:
            diagnostics.append(
                Diagnostic(
                    code="P005",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"preference {preference.name} is shadowed: "
                        f"{trivial_pairs_seen[pair]} already prefers "
                        f"{pair[0]!r} over {pair[1]!r} unconditionally, "
                        "so this rule never changes the outcome"
                    ),
                    preference=preference.name,
                    data={"shadowed_by": trivial_pairs_seen[pair]},
                )
            )
        elif is_trivial(preference):
            trivial_pairs_seen[pair] = preference.name

        # P007: predicates that cannot take (winner, loser).
        for role, predicate in (
            ("condition", preference.condition),
            ("criteria", preference.criteria),
        ):
            reason = _arity_problem(predicate, 2)
            if reason is not None:
                diagnostics.append(
                    Diagnostic(
                        code="P007",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"preference {preference.name}: {role} is not "
                            f"a binary predicate -- it {reason}; every "
                            "enforcement would raise TypeError"
                        ),
                        preference=preference.name,
                        data={"role": role},
                    )
                )

    # P006: duplicate preference names.
    for name in sorted(n for n, count in name_counts.items() if count > 1):
        diagnostics.append(
            Diagnostic(
                code="P006",
                severity=SEVERITY_WARNING,
                message=(
                    f"preference name {name!r} is declared "
                    f"{name_counts[name]} times; diagnostics and r-edge "
                    "decisions become ambiguous"
                ),
                preference=name,
                data={"count": name_counts[name]},
            )
        )

    return diagnostics
