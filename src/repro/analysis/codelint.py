"""Code-side lint: keep the code and the observability contract in sync.

Two checkers, both AST-driven and dependency-free, both run as CI steps
(see ``benchmarks/check_metrics_catalog.py`` and
``benchmarks/check_blocking_calls.py``):

* :func:`check_metrics_catalog` -- cross-checks every metric and event
  name *emitted* by the code (``MetricsRegistry.inc``/``.observe`` and
  ``log_event`` call sites under ``src/repro/``) against the catalogue
  *documented* in ``docs/OBSERVABILITY.md``.  An undocumented name is a
  dashboard nobody can find; an orphaned documented name is a dashboard
  that silently flatlined after a rename.  F-string names become
  ``<dyn>`` wildcard segments (``f"degrade.{level}"`` ->
  ``degrade.<dyn>``), matching the doc's own ``<level>``-style
  placeholders segment-wise.

* :func:`check_blocking_calls` -- flags blocking primitives
  (``time.sleep``, ``open``, ``socket.*``, ``subprocess.*``) inside
  ``async def`` bodies under ``src/repro/server/``: one such call stalls
  the event loop for every connected client.  Deliberate uses (a
  metrics-endpoint read of a tiny local file, say) are annotated with a
  ``# blocking-ok`` comment on the offending line; nested *sync*
  functions are skipped -- they are executor targets, not loop code.

Findings are plain data (:class:`CodeLintFinding`); the wrappers print
them one per line and exit non-zero, mirroring ``repro lint``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

#: Documented dotted names that are trace/span *vocabulary*, not emitted
#: metric or event names -- the catalogue explains them (span stage
#: names, trace tags), so the orphan check must not demand a literal
#: ``inc``/``log_event`` call site for them.
DOC_VOCABULARY = frozenset(
    {
        "parse.construct",  # span stage names (Trace), folded via
        "parse.maximize",  # record_trace's span.<stage>.* f-strings
        "degrade.level",  # trace *tag*, not a counter
        "cache.signature",  # trace tag on cached extractions
        "json.dumps",  # stdlib API mention, not a metric
    }
)

#: The allowlist marker for deliberate blocking calls in async code.
BLOCKING_OK_MARKER = "# blocking-ok"

_NAME_PATTERN = re.compile(r"`([A-Za-z0-9_./<>*-]+)`")
_VALID_NAME = re.compile(r"^[a-z0-9_<>*-]+(\.[a-z0-9_<>*-]+)+$")

#: Backticked mentions ending in these are files, not catalogue names.
_FILE_SUFFIXES = (".py", ".md", ".json", ".yml", ".yaml", ".txt", ".log")

#: Module roots whose attribute calls block the loop.
_BLOCKING_MODULES = frozenset({"socket", "subprocess"})


@dataclass(frozen=True)
class CodeLintFinding:
    """One code-lint finding, formatted ``path:line: message``."""

    path: str
    line: int
    kind: str
    name: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.kind}] {self.message}"


# ---------------------------------------------------------------------------
# metrics-catalogue cross-check
# ---------------------------------------------------------------------------


def _fstring_name(node: ast.JoinedStr) -> str | None:
    """Render an f-string as a name with ``<dyn>`` wildcard segments."""
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            parts.append("<dyn>")
    return "".join(parts) or None


def _literal_name(node: ast.expr) -> str | None:
    """The string a call-site name argument evaluates to, if static."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return _fstring_name(node)
    return None  # computed name: out of the checker's reach


@dataclass(frozen=True)
class _UsedName:
    name: str
    path: str
    line: int


def _collect_used_names(src_root: Path) -> list[_UsedName]:
    """Every metric/event name emitted under *src_root* (see module doc)."""
    used: list[_UsedName] = []
    for path in sorted(src_root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name_arg: ast.expr | None = None
            if (
                isinstance(node.func, ast.Attribute)
                # _count is the HTTP layer's metric hook; same contract.
                and node.func.attr in ("inc", "observe", "_count")
                and node.args
            ):
                name_arg = node.args[0]
            elif (
                (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "log_event"
                )
                or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "log_event"
                )
            ) and len(node.args) >= 3:
                name_arg = node.args[2]
            if name_arg is None:
                continue
            name = _literal_name(name_arg)
            # Dotless strings are not catalogue names (e.g. a Summary
            # observed under a payload-derived key); skip them.
            if name is None or "." not in name:
                continue
            used.append(
                _UsedName(name=name, path=str(path), line=node.lineno)
            )
    return used


def _collect_documented_names(doc_path: Path) -> dict[str, int]:
    """Backticked dotted names in the observability doc, with lines."""
    documented: dict[str, int] = {}
    for lineno, line in enumerate(
        doc_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _NAME_PATTERN.finditer(line):
            name = match.group(1)
            if not _VALID_NAME.match(name):
                continue  # module paths, CamelCase APIs
            if name.endswith(_FILE_SUFFIXES):
                continue  # file names, not catalogue names
            if name.startswith("repro.") or name in DOC_VOCABULARY:
                continue
            documented.setdefault(name, lineno)
    return documented


def _is_wild(segment: str) -> bool:
    return segment == "*" or (
        segment.startswith("<") and segment.endswith(">")
    )


def _seglists_match(pattern: list[str], used: list[str]) -> bool:
    if not pattern and not used:
        return True
    if not pattern or not used:
        return False
    if _is_wild(pattern[0]):
        return _seglists_match(pattern[1:], used[1:]) or _seglists_match(
            pattern, used[1:]
        )
    if _is_wild(used[0]):
        return _seglists_match(pattern[1:], used[1:]) or _seglists_match(
            pattern[1:], used
        )
    return pattern[0] == used[0] and _seglists_match(
        pattern[1:], used[1:]
    )


def _names_match(pattern: str, used: str) -> bool:
    """Segment-wise match; either side's wildcards match 1+ segments.

    Wildcards must absorb *multiple* segments because span stage names
    themselves contain dots: the emitted ``span.<dyn>.<dyn>``
    (``f"span.{name}.{counter}"``) must match the documented
    ``span.parse.construct.instances_created``.  The doc's trailing
    ``serve.*`` shorthand works the same way.
    """
    return _seglists_match(pattern.split("."), used.split("."))


def check_metrics_catalog(
    src_root: Path, doc_path: Path
) -> list[CodeLintFinding]:
    """Cross-check emitted metric/event names against the catalogue.

    Returns one ``undocumented-name`` finding per call site whose name
    no documented entry matches, and one ``orphaned-name`` finding per
    documented entry no call site can produce.
    """
    used = _collect_used_names(src_root)
    documented = _collect_documented_names(doc_path)
    findings: list[CodeLintFinding] = []

    reported: set[tuple[str, str, int]] = set()
    for site in used:
        if any(_names_match(doc, site.name) for doc in documented):
            continue
        key = (site.name, site.path, site.line)
        if key in reported:
            continue
        reported.add(key)
        findings.append(
            CodeLintFinding(
                path=site.path,
                line=site.line,
                kind="undocumented-name",
                name=site.name,
                message=(
                    f"metric/event {site.name!r} is emitted here but "
                    f"not documented in {doc_path.name}"
                ),
            )
        )

    used_names = {site.name for site in used}
    for doc_name, lineno in sorted(documented.items()):
        if any(_names_match(doc_name, name) for name in used_names):
            continue
        findings.append(
            CodeLintFinding(
                path=str(doc_path),
                line=lineno,
                kind="orphaned-name",
                name=doc_name,
                message=(
                    f"documented name {doc_name!r} matches no metric/"
                    "event call site under src/repro (stale after a "
                    "rename?)"
                ),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# blocking-call detector
# ---------------------------------------------------------------------------


def _blocking_reason(node: ast.Call) -> str | None:
    """Why this call blocks the event loop, or ``None`` if it doesn't."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open() performs blocking file I/O"
    if isinstance(func, ast.Attribute):
        root = func.value
        if (
            isinstance(root, ast.Name)
            and root.id == "time"
            and func.attr == "sleep"
        ):
            return "time.sleep() stalls the event loop"
        if isinstance(root, ast.Name) and root.id in _BLOCKING_MODULES:
            return f"{root.id}.{func.attr}() is a blocking call"
    return None


def _async_blocking_calls(
    tree: ast.AST, source_lines: list[str], path: str
) -> list[CodeLintFinding]:
    findings: list[CodeLintFinding] = []

    def visit(node: ast.AST, in_async: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                visit(child, True)
                continue
            if isinstance(child, (ast.FunctionDef, ast.Lambda)):
                # A nested sync function is an executor/callback target;
                # it runs off-loop (or is somebody else's problem).
                visit(child, False)
                continue
            if in_async and isinstance(child, ast.Call):
                reason = _blocking_reason(child)
                if reason is not None:
                    line_text = (
                        source_lines[child.lineno - 1]
                        if 0 < child.lineno <= len(source_lines)
                        else ""
                    )
                    if BLOCKING_OK_MARKER not in line_text:
                        findings.append(
                            CodeLintFinding(
                                path=path,
                                line=child.lineno,
                                kind="blocking-call",
                                name=ast.unparse(child.func),
                                message=(
                                    f"{reason} inside an async def; "
                                    "hop to an executor, or annotate "
                                    f"with {BLOCKING_OK_MARKER!r} if "
                                    "deliberate"
                                ),
                            )
                        )
            visit(child, in_async)

    visit(tree, False)
    return findings


def check_blocking_calls(root: Path) -> list[CodeLintFinding]:
    """Find blocking primitives inside ``async def`` bodies under *root*."""
    findings: list[CodeLintFinding] = []
    for path in sorted(root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        findings.extend(
            _async_blocking_calls(tree, text.splitlines(), str(path))
        )
    return findings
