"""The admission gate for machine-proposed productions.

The roadmap's grammar-learning loop proposes new productions from parse
failures (the paper's §6.4 argument: the grammar is necessarily
incomplete, so it must grow).  A machine-proposed production must not be
admitted blindly -- a bad one silently degrades *every* extraction, and
the damage only shows up in end-to-end quality metrics days later.

:func:`admit_production` is the gatekeeper.  It runs the full analyzer
twice -- once on the base grammar, once on the base grammar *plus* the
candidate -- and judges the candidate purely on the **delta**: the
diagnostics that appear only when the candidate is present.  Pre-existing
warnings never count against a candidate; a candidate that introduces no
new findings is admitted even into a noisy grammar.

Verdicts:

* ``accept`` -- no new diagnostics beyond informational ones;
* ``accept-with-warnings`` -- new warnings, but nothing blocking;
* ``reject`` -- at least one *blocking* finding: any new error-severity
  diagnostic, or a new instance of the codes in :data:`BLOCKING_CODES`
  (guaranteed double-fire ambiguity ``G020``, unarbitrated overlap
  ``P010``, spatially-unplaceable production ``G031``) -- defects that
  are harmless-looking warnings for a hand-audited grammar but are
  exactly how a machine-proposed rule poisons the merger.

Candidates arrive as JSON (the learning loop is a separate process); see
:meth:`CandidateProduction.from_dict` for the schema.  Opaque Python
callables cannot cross that boundary, so constraints default to "always"
and preferences name their criteria from the standard library
(``subsumes``, ``covers_more``, ``tighter``, ``always``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.analyzer import analyze_grammar
from repro.analysis.diagnostics import (
    REPORT_SCHEMA_VERSION,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
)
from repro.analysis.view import GrammarView
from repro.grammar.preference import (
    Predicate,
    Preference,
    always,
    covers_more,
    subsumes,
    tighter,
)
from repro.grammar.production import AxisSpec, Production, SpatialBound

#: Diagnostic codes that block admission even though they are warnings
#: for hand-written grammars (see module docstring).
BLOCKING_CODES = frozenset({"G020", "P010", "G031"})

#: Named winning criteria a candidate preference may reference.
_CRITERIA: dict[str, Predicate] = {
    "always": always,
    "subsumes": subsumes,
    "covers_more": covers_more,
    "tighter": tighter,
}

_VERDICT_ACCEPT = "accept"
_VERDICT_WARN = "accept-with-warnings"
_VERDICT_REJECT = "reject"


class CandidateError(ValueError):
    """A candidate payload is malformed (bad JSON shape, not bad grammar).

    Grammar-level problems are *diagnostics*, reported through the
    admission verdict; this exception means the payload itself could not
    be understood.
    """


def _fail(message: str) -> CandidateError:
    return CandidateError(f"invalid candidate: {message}")


def _parse_axis(raw: object, where: str) -> AxisSpec:
    if raw is None:
        return None
    if isinstance(raw, bool):
        raise _fail(f"{where}: axis spec must be null, a number, or [lo, hi]")
    if isinstance(raw, (int, float)):
        return float(raw)
    if isinstance(raw, (list, tuple)) and len(raw) == 2:
        ends: list[float | None] = []
        for end in raw:
            if end is None:
                ends.append(None)
            elif isinstance(end, (int, float)) and not isinstance(end, bool):
                ends.append(float(end))
            else:
                raise _fail(
                    f"{where}: interval ends must be numbers or null"
                )
        return (ends[0], ends[1])
    raise _fail(f"{where}: axis spec must be null, a number, or [lo, hi]")


def _parse_bounds(raw: object) -> tuple[SpatialBound, ...]:
    if not isinstance(raw, list):
        raise _fail('"bounds" must be a list of [i, j, h, v] entries')
    bounds: list[SpatialBound] = []
    for index, entry in enumerate(raw):
        where = f"bounds[{index}]"
        if not isinstance(entry, (list, tuple)) or len(entry) != 4:
            raise _fail(f"{where}: expected [i, j, h_spec, v_spec]")
        i_raw, j_raw, h_raw, v_raw = entry
        if (
            isinstance(i_raw, bool)
            or isinstance(j_raw, bool)
            or not isinstance(i_raw, int)
            or not isinstance(j_raw, int)
        ):
            raise _fail(f"{where}: positions must be integers")
        bounds.append(
            (
                i_raw,
                j_raw,
                _parse_axis(h_raw, where),
                _parse_axis(v_raw, where),
            )
        )
    return tuple(bounds)


def _parse_preferences(
    raw: object,
) -> tuple[tuple[str, str, str, str], ...]:
    """Parse ``"preferences"`` into ``(winner, loser, when, name)`` rows."""
    if not isinstance(raw, list):
        raise _fail('"preferences" must be a list of objects')
    rows: list[tuple[str, str, str, str]] = []
    for index, entry in enumerate(raw):
        where = f"preferences[{index}]"
        if not isinstance(entry, dict):
            raise _fail(f"{where}: expected an object")
        winner = entry.get("winner")
        loser = entry.get("loser")
        if not isinstance(winner, str) or not isinstance(loser, str):
            raise _fail(f'{where}: "winner" and "loser" must be strings')
        when = entry.get("when", "always")
        if not isinstance(when, str) or when not in _CRITERIA:
            raise _fail(
                f'{where}: "when" must be one of '
                f"{sorted(_CRITERIA)}, got {when!r}"
            )
        name = entry.get("name", "")
        if not isinstance(name, str):
            raise _fail(f'{where}: "name" must be a string')
        rows.append((winner, loser, when, name))
    return tuple(rows)


@dataclass(frozen=True)
class CandidateProduction:
    """A machine-proposed production, decoded from its JSON payload.

    Schema (JSON object)::

        {
          "head": "CP",                      // required nonterminal
          "components": ["Attr", "Val"],     // required, non-empty
          "name": "cand-cp",                 // optional
          "bounds": [[0, 1, 12.0, [0, 5]]],  // optional SpatialBounds;
                                             // axis = null | gap | [lo, hi]
          "terminals": ["newclass"],         // optional new terminal decls
          "preferences": [                   // optional companion rules
            {"winner": "CP", "loser": "CP",
             "when": "subsumes",             // always | subsumes |
                                             // covers_more | tighter
             "name": "cand-cp-self"}
          ]
        }

    Constraints and constructors are opaque callables and cannot cross the
    JSON boundary; a candidate production always uses the defaults
    (constraint "always", empty payload).  That makes the gate strictly
    *harsher* than reality: an implementation may later add a narrowing
    constraint, which can only remove overlaps, never add them.
    """

    head: str
    components: tuple[str, ...]
    name: str = ""
    bounds: tuple[SpatialBound, ...] = ()
    terminals: frozenset[str] = frozenset()
    preferences: tuple[tuple[str, str, str, str], ...] = ()

    @classmethod
    def from_dict(cls, payload: object) -> "CandidateProduction":
        if not isinstance(payload, dict):
            raise _fail("payload must be a JSON object")
        known = {
            "head",
            "components",
            "name",
            "bounds",
            "terminals",
            "preferences",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise _fail(f"unknown key(s): {', '.join(unknown)}")
        head = payload.get("head")
        if not isinstance(head, str) or not head:
            raise _fail('"head" must be a non-empty string')
        components_raw = payload.get("components")
        if (
            not isinstance(components_raw, list)
            or not components_raw
            or not all(
                isinstance(c, str) and c for c in components_raw
            )
        ):
            raise _fail(
                '"components" must be a non-empty list of symbol names'
            )
        name = payload.get("name", "")
        if not isinstance(name, str):
            raise _fail('"name" must be a string')
        terminals_raw = payload.get("terminals", [])
        if not isinstance(terminals_raw, list) or not all(
            isinstance(t, str) and t for t in terminals_raw
        ):
            raise _fail('"terminals" must be a list of class names')
        return cls(
            head=head,
            components=tuple(components_raw),
            name=name,
            bounds=_parse_bounds(payload.get("bounds", [])),
            terminals=frozenset(terminals_raw),
            preferences=_parse_preferences(payload.get("preferences", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "CandidateProduction":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise _fail(f"not valid JSON ({error})") from error
        return cls.from_dict(payload)

    def display_name(self) -> str:
        return self.name or f"{self.head}<-{'+'.join(self.components)}"


@dataclass(frozen=True)
class AdmissionReport:
    """The gate's verdict on one candidate, with full evidence.

    ``new_diagnostics`` is the delta -- findings present with the
    candidate but absent without it; ``blocking`` is the subset that
    forced a rejection (empty unless ``verdict == "reject"``).
    """

    candidate: str
    grammar: str
    verdict: str
    new_diagnostics: tuple[Diagnostic, ...] = ()
    blocking: tuple[Diagnostic, ...] = ()
    base_report: AnalysisReport = field(
        default_factory=lambda: AnalysisReport(grammar="grammar")
    )
    extended_report: AnalysisReport = field(
        default_factory=lambda: AnalysisReport(grammar="grammar")
    )

    @property
    def admitted(self) -> bool:
        return self.verdict != _VERDICT_REJECT

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "candidate": self.candidate,
            "grammar": self.grammar,
            "verdict": self.verdict,
            "admitted": self.admitted,
            "new_diagnostics": [d.to_dict() for d in self.new_diagnostics],
            "blocking": [d.to_dict() for d in self.blocking],
            "base_summary": self.base_report.summary(),
            "extended_summary": self.extended_report.summary(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        lines = [
            f"candidate {self.candidate} against grammar "
            f"{self.grammar}: {self.verdict}"
        ]
        if self.blocking:
            lines.append("blocking:")
            lines.extend(f"  {d}" for d in self.blocking)
        rest = [d for d in self.new_diagnostics if d not in self.blocking]
        if rest:
            lines.append("new diagnostics:")
            lines.extend(f"  {d}" for d in rest)
        if not self.new_diagnostics:
            lines.append("no new diagnostics")
        return "\n".join(lines)


def _extended_view(
    view: GrammarView, candidate: CandidateProduction
) -> GrammarView:
    production = Production(
        head=candidate.head,
        components=candidate.components,
        name=candidate.display_name(),
        bounds=candidate.bounds,
    )
    preferences = tuple(
        # Condition stays "always": the framework-level conflict test is
        # built into Preference.applies.
        _make_preference(winner, loser, when, name)
        for winner, loser, when, name in candidate.preferences
    )
    return GrammarView(
        terminals=view.terminals | candidate.terminals,
        nonterminals=view.nonterminals | {candidate.head},
        start=view.start,
        productions=view.productions + (production,),
        preferences=view.preferences + preferences,
        name=view.name,
    )


def _make_preference(
    winner: str, loser: str, when: str, name: str
) -> Preference:
    return Preference(
        winner_symbol=winner,
        loser_symbol=loser,
        criteria=_CRITERIA[when],
        name=name or f"{winner}>{loser}",
    )


def admit_production(
    grammar_view: GrammarView,
    candidate: CandidateProduction,
) -> AdmissionReport:
    """Judge *candidate* against *grammar_view* (see module docstring).

    The candidate's ``bounds`` are validated structurally first (the
    :class:`~repro.grammar.production.Production` constructor enforces
    ``0 <= i < j < arity``); violations surface as :class:`CandidateError`
    because they are payload defects, not grammar defects.
    """
    try:
        extended = _extended_view(grammar_view, candidate)
    except ValueError as error:
        if isinstance(error, CandidateError):
            raise
        raise _fail(str(error)) from error

    base_report = analyze_grammar(grammar_view)
    extended_report = analyze_grammar(extended)

    seen = {
        json.dumps(d.to_dict(), sort_keys=True)
        for d in base_report.diagnostics
    }
    delta = tuple(
        d
        for d in extended_report.diagnostics
        if json.dumps(d.to_dict(), sort_keys=True) not in seen
    )
    blocking = tuple(
        d
        for d in delta
        if d.severity == SEVERITY_ERROR or d.code in BLOCKING_CODES
    )
    if blocking:
        verdict = _VERDICT_REJECT
    elif any(d.severity == SEVERITY_WARNING for d in delta):
        verdict = _VERDICT_WARN
    else:
        verdict = _VERDICT_ACCEPT
    return AdmissionReport(
        candidate=candidate.display_name(),
        grammar=grammar_view.name,
        verdict=verdict,
        new_diagnostics=delta,
        blocking=blocking,
        base_report=base_report,
        extended_report=extended_report,
    )
