"""The diagnostic-code catalogue: one registry behind ``lint --explain``.

Every code the analyzer can emit has an entry here -- severity, a
one-paragraph explanation, and the standard fix.  ``docs/GRAMMAR.md``
renders the same catalogue for humans; a test asserts the two stay in
sync with the passes (no emittable code may be missing here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)


@dataclass(frozen=True)
class CatalogEntry:
    """Reference documentation for one diagnostic code."""

    code: str
    severity: str
    summary: str
    fix: str

    def describe(self) -> str:
        return (
            f"{self.code} ({self.severity})\n"
            f"  finding: {self.summary}\n"
            f"  fix:     {self.fix}"
        )


def _entry(code: str, severity: str, summary: str, fix: str) -> CatalogEntry:
    return CatalogEntry(code=code, severity=severity, summary=summary, fix=fix)


#: The full catalogue, keyed by code.  Codes are stable: never renumber.
CATALOG: dict[str, CatalogEntry] = {
    entry.code: entry
    for entry in (
        # -- symbols (G001-G008) ------------------------------------------
        _entry("G001", SEVERITY_ERROR,
               "a production component references an undeclared symbol",
               "declare the terminal/nonterminal or fix the typo"),
        _entry("G002", SEVERITY_ERROR,
               "the start symbol is not a declared nonterminal",
               "point start at a symbol that heads productions"),
        _entry("G003", SEVERITY_ERROR,
               "a nonterminal is declared or referenced but has no "
               "productions",
               "add a production for it or remove the references"),
        _entry("G004", SEVERITY_WARNING,
               "a nonterminal is unreachable from the start symbol",
               "link it into the derivation or delete the dead subtree"),
        _entry("G005", SEVERITY_WARNING,
               "an unproductive nonterminal: its fix-point can never "
               "bottom out in terminals",
               "add a non-recursive base production"),
        _entry("G006", SEVERITY_WARNING,
               "a terminal is declared but used by no production",
               "consume it in a pattern or drop the declaration"),
        _entry("G007", SEVERITY_WARNING,
               "a production name is declared more than once",
               "give every production a unique name"),
        _entry("G008", SEVERITY_WARNING,
               "a dead production: a component can never be instantiated",
               "fix the component symbol's own productions first"),
        # -- per-production bounds and callables (G010-G013) ---------------
        _entry("G010", SEVERITY_ERROR,
               "an axis spec admits no geometry on its own",
               "fix the negative gap or inverted interval"),
        _entry("G011", SEVERITY_ERROR,
               "the conjunction of bounds on one component pair/axis is "
               "unsatisfiable",
               "widen or remove one of the contradicting bounds"),
        _entry("G012", SEVERITY_ERROR,
               "the constructor cannot accept one positional argument "
               "per component",
               "match the constructor signature to the component count"),
        _entry("G013", SEVERITY_ERROR,
               "the constraint cannot accept one positional argument "
               "per component",
               "match the constraint signature to the component count"),
        # -- ambiguity / overlap (G020-G024) --------------------------------
        _entry("G020", SEVERITY_WARNING,
               "two same-head productions with identical components, "
               "compatible bounds, and no constraints: every qualifying "
               "combination fires both",
               "merge the duplicates, or add a distinguishing "
               "constraint/bound to one of them"),
        _entry("G021", SEVERITY_INFO,
               "two same-head productions can cover the same token "
               "multiset; only opaque constraints separate them",
               "keep a self-preference (e.g. when=subsumes) on the head "
               "so double fires are arbitrated"),
        _entry("G022", SEVERITY_INFO,
               "two distinct symbols can claim the same multi-token run "
               "(a statically-predicted merger conflict)",
               "add a preference between the two symbols if one reading "
               "should win"),
        _entry("G023", SEVERITY_INFO,
               "two leaf-level symbols compete for the same single token "
               "class",
               "expected for role symbols (Attr vs Note); add a "
               "preference if one role should dominate"),
        _entry("G024", SEVERITY_INFO,
               "yield enumeration hit a cap; overlap analysis is "
               "incomplete for the listed symbols",
               "nothing to fix -- treat missing overlap findings for "
               "these symbols as unknown, not absent"),
        # -- cross-production spatial chains (G030-G031) --------------------
        _entry("G030", SEVERITY_ERROR,
               "spatial bounds are jointly infeasible once chained "
               "through component minimum extents",
               "relax one link of the chain; check transitive "
               "displacement sums against the direct bounds"),
        _entry("G031", SEVERITY_WARNING,
               "a locally-satisfiable production builds instances too "
               "large for every parent context",
               "widen the parent bounds or shrink the production's "
               "minimum chain length"),
        # -- preferences (P001-P007) ---------------------------------------
        _entry("P001", SEVERITY_ERROR,
               "a preference references an undeclared symbol",
               "declare the symbol or fix the typo"),
        _entry("P002", SEVERITY_WARNING,
               "a preference can never fire: neither symbol heads a "
               "production",
               "point the preference at scheduled heads"),
        _entry("P003", SEVERITY_WARNING,
               "a trivial self-preference invalidates every conflicting "
               "pair both ways",
               "add a non-trivial criterion such as when=subsumes"),
        _entry("P004", SEVERITY_WARNING,
               "two unconditional preferences contradict each other "
               "(A > B and B > A)",
               "drop one direction or make one conditional"),
        _entry("P005", SEVERITY_WARNING,
               "a preference is shadowed by an earlier unconditional one "
               "on the same pair",
               "remove the shadowed rule or reorder"),
        _entry("P006", SEVERITY_WARNING,
               "a preference name is declared more than once",
               "give every preference a unique name"),
        _entry("P007", SEVERITY_ERROR,
               "a condition or criteria is not a binary predicate",
               "accept exactly (winner, loser)"),
        # -- preference totality (P010-P013) --------------------------------
        _entry("P010", SEVERITY_WARNING,
               "a head has overlapping productions but no "
               "self-preference; the conflict survivor is iteration "
               "order",
               "add prefer(H, over=H, when=subsumes) or similar"),
        _entry("P011", SEVERITY_INFO,
               "two overlapping symbols have no preference path ordering "
               "them; resolution falls to maximization",
               "add a preference if one reading should systematically "
               "win"),
        _entry("P012", SEVERITY_WARNING,
               "a preference's winner and loser can never cover a common "
               "token class -- the rule is dead",
               "delete the preference or fix the symbols it names"),
        _entry("P013", SEVERITY_WARNING,
               "the preference relation is cyclic across distinct "
               "symbols (A > B > ... > A)",
               "break the cycle so arbitration is a priority order"),
        # -- coverage (C001-C005) ------------------------------------------
        _entry("C001", SEVERITY_WARNING,
               "the tokenizer emits a token class the grammar does not "
               "declare",
               "declare the class and give it at least one pattern"),
        _entry("C002", SEVERITY_WARNING,
               "a token class is consumed only by unreachable "
               "productions",
               "connect the consuming heads to the start symbol"),
        _entry("C003", SEVERITY_INFO,
               "an attribute-pattern shape has no derivation: forms "
               "arranged that way fall outside the grammar",
               "add a pattern production for the shape (the paper's "
               "§6.4 growth path)"),
        _entry("C004", SEVERITY_INFO,
               "a shape is derivable only through assembly recursion; "
               "its tokens parse as disjoint items",
               "add a pattern-level production so the merger sees one "
               "condition"),
        _entry("C005", SEVERITY_INFO,
               "coverage verdicts are best-effort: the yield enumeration "
               "was truncated",
               "nothing to fix -- treat 'uncovered' for the listed "
               "symbols as unknown"),
        # -- schedule (S001-S003) ------------------------------------------
        _entry("S001", SEVERITY_ERROR,
               "the mandatory d-edges are cyclic; the grammar cannot be "
               "scheduled",
               "break the production cycle or restructure the symbols"),
        _entry("S002", SEVERITY_INFO,
               "an r-edge will be transformed (winner ordered before the "
               "loser's parents)",
               "nothing to fix -- a scheduling cost preview"),
        _entry("S003", SEVERITY_WARNING,
               "an r-edge will be relaxed; pruning falls back to "
               "rollback",
               "restructure so the winner can be scheduled first, or "
               "accept the rollback cost"),
    )
}


def explain(code: str) -> CatalogEntry | None:
    """Look up one code (case-insensitive); ``None`` when unknown."""
    return CATALOG.get(code.upper())
