"""Bounded terminal-yield abstraction: what token multisets can a symbol cover?

The semantic passes (overlap, coverage, preference totality) all need the
same abstract question answered: *which multisets of token classes can an
instance of symbol ``S`` cover?*  This module computes a **bounded
under-approximation** of that set by abstract interpretation over the
production set -- the classic fix-point, with three caps so recursive
grammars terminate:

* multisets larger than ``max_tokens`` are dropped (and the head marked
  truncated);
* a symbol keeps at most ``max_variants`` distinct multisets (excess
  marked truncated);
* one production examines at most ``max_combos`` component combinations
  per fix-point round (excess marked truncated).

Because the result is an under-approximation, every multiset reported is
genuinely derivable (modulo spatial constraints and opaque predicates) --
so overlap findings built on shared multisets are *witnessed*, never
speculative.  Truncation is surfaced explicitly (G024/C005) rather than
silently narrowing the analysis.

A multiset is represented as a sorted tuple of terminal names, e.g.
``("radiobutton", "radiobutton", "text")``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.analysis.view import GrammarView
from repro.grammar.production import Production

#: One abstract token configuration: a sorted tuple of terminal classes.
Multiset = tuple[str, ...]

#: Default caps.  Chosen so the standard grammar (~70 productions, four
#: recursive heads) converges in well under 100ms while still yielding
#: multi-token witnesses for every pattern-level symbol.
MAX_TOKENS = 6
MAX_VARIANTS = 48
MAX_COMBOS = 4096


@dataclass(frozen=True)
class YieldSummary:
    """Per-symbol bounded yield sets plus the truncation ledger.

    Attributes:
        yields: symbol -> the set of token-class multisets instances of
            the symbol can cover (bounded; see module doc).  Terminals map
            to their singleton multiset.  Symbols with no derivation
            (unproductive heads, headless nonterminals) map to the empty
            set.
        truncated: symbols whose yield enumeration hit a cap; their sets
            are incomplete and negative conclusions about them are unsafe.
    """

    yields: dict[str, frozenset[Multiset]]
    truncated: frozenset[str]

    def classes(self, symbol: str) -> frozenset[str]:
        """Union of token classes across the symbol's known multisets."""
        return frozenset(
            terminal
            for multiset in self.yields.get(symbol, frozenset())
            for terminal in multiset
        )


def production_yields(
    production: Production,
    summary: YieldSummary,
    *,
    max_tokens: int = MAX_TOKENS,
    max_combos: int = MAX_COMBOS,
) -> tuple[frozenset[Multiset], bool]:
    """Yield multisets one production can construct, given *summary*.

    Returns ``(multisets, truncated)`` where *truncated* is true when a
    component's own enumeration was truncated or a cap fired here.
    """
    component_sets: list[tuple[Multiset, ...]] = []
    truncated = any(
        component in summary.truncated for component in production.components
    )
    for component in production.components:
        variants = summary.yields.get(component, frozenset())
        if not variants:
            return frozenset(), truncated
        component_sets.append(tuple(sorted(variants)))
    results: set[Multiset] = set()
    examined = 0
    for combo in itertools.product(*component_sets):
        examined += 1
        if examined > max_combos:
            truncated = True
            break
        total = sum(len(part) for part in combo)
        if total > max_tokens:
            truncated = True
            continue
        merged: list[str] = []
        for part in combo:
            merged.extend(part)
        merged.sort()
        results.add(tuple(merged))
    return frozenset(results), truncated


def compute_yields(
    view: GrammarView,
    *,
    max_tokens: int = MAX_TOKENS,
    max_variants: int = MAX_VARIANTS,
    max_combos: int = MAX_COMBOS,
) -> YieldSummary:
    """Run the bounded yield fix-point over *view*'s productions."""
    yields: dict[str, set[Multiset]] = {
        terminal: {(terminal,)} for terminal in view.terminals
    }
    for symbol in view.nonterminals:
        yields.setdefault(symbol, set())
    for production in view.productions:
        yields.setdefault(production.head, set())
    truncated: set[str] = set()

    # Version counters let a round skip productions whose component sets
    # did not change since the production last ran -- the bulk of the
    # grammar converges in one round, so this keeps the fix-point linear
    # in practice.
    versions: dict[str, int] = {symbol: 1 for symbol in yields}
    seen_versions: dict[int, int] = {}

    changed = True
    while changed:
        changed = False
        for index, production in enumerate(view.productions):
            key = index
            stamp = sum(
                versions.get(component, 0)
                for component in production.components
            )
            if seen_versions.get(key) == stamp:
                continue
            seen_versions[key] = stamp
            head = production.head
            head_set = yields.setdefault(head, set())
            interim = YieldSummary(
                yields={s: frozenset(v) for s, v in yields.items()},
                truncated=frozenset(truncated),
            )
            produced, was_truncated = production_yields(
                production,
                interim,
                max_tokens=max_tokens,
                max_combos=max_combos,
            )
            if was_truncated and head not in truncated:
                truncated.add(head)
            before = len(head_set)
            for multiset in produced:
                if multiset in head_set:
                    continue
                if len(head_set) >= max_variants:
                    truncated.add(head)
                    break
                head_set.add(multiset)
            if len(head_set) != before:
                changed = True
                versions[head] = versions.get(head, 0) + 1
    return YieldSummary(
        yields={symbol: frozenset(v) for symbol, v in yields.items()},
        truncated=frozenset(truncated),
    )


def derives_relation(view: GrammarView) -> dict[str, set[str]]:
    """Transitive symbol-level derivation: head -> every symbol reachable
    through its productions' components (the head itself excluded unless
    it is genuinely recursive)."""
    direct: dict[str, set[str]] = {}
    for production in view.productions:
        direct.setdefault(production.head, set()).update(
            production.components
        )
    closure: dict[str, set[str]] = {
        head: set(components) for head, components in direct.items()
    }
    changed = True
    while changed:
        changed = False
        for head, reached in closure.items():
            extra: set[str] = set()
            for symbol in reached:
                extra |= closure.get(symbol, set())
            if not extra <= reached:
                reached |= extra
                changed = True
    return closure
