"""Calibrating spatial conventions from annotated sources.

Procedure (a supervised pass over training sources):

1. extract each training source with the current grammar;
2. match extracted conditions against the source's ground truth;
3. for every *correct* condition, walk back to its CP parse node and
   harvest the binding geometry its payload recorded (``attr_gap``,
   ``arrangement``);
4. fit thresholds at a high percentile of the observed distribution plus
   slack -- the measured form of "adjacency is implied" (Section 4.1).

The calibrator never sees which thresholds produced the current grammar;
it rediscovers them from the evidence, and
``benchmarks/bench_learning_calibration.py`` checks that a grammar rebuilt
from the learned config holds accuracy on held-out sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.generator import GeneratedSource
from repro.extractor import FormExtractor
from repro.semantics.matching import ConditionMatcher
from repro.spatial.relations import DEFAULT_SPATIAL, SpatialConfig


@dataclass
class ArrangementStats:
    """Geometry harvested from correctly-parsed conditions."""

    #: Label-to-field gaps of correct "left" attachments.
    left_gaps: list[float] = field(default_factory=list)
    #: Label-to-field gaps of correct "above"/"below" attachments.
    vertical_gaps: list[float] = field(default_factory=list)
    #: How often each arrangement carried a correct condition.
    arrangement_counts: dict[str, int] = field(default_factory=dict)
    sources_used: int = 0
    conditions_used: int = 0

    def observe(self, arrangement: str, gap: float | None) -> None:
        self.arrangement_counts[arrangement] = (
            self.arrangement_counts.get(arrangement, 0) + 1
        )
        if gap is None:
            return
        if arrangement == "left":
            self.left_gaps.append(gap)
        elif arrangement in ("above", "below"):
            self.vertical_gaps.append(gap)


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


class SpatialCalibrator:
    """Harvests arrangement statistics and fits a spatial config."""

    def __init__(
        self,
        extractor: FormExtractor | None = None,
        matcher: ConditionMatcher | None = None,
    ):
        self.extractor = extractor or FormExtractor()
        self.matcher = matcher or ConditionMatcher()
        self.stats = ArrangementStats()

    # -- harvesting ----------------------------------------------------------------

    def observe_source(self, source: GeneratedSource) -> None:
        """Extract one training source and harvest its correct conditions."""
        detail = self.extractor.extract_detailed(source.html)
        pairs = self.matcher.match_sets(
            list(detail.model.conditions), list(source.truth)
        )
        correct = {id(extracted) for extracted, _ in pairs}
        self.stats.sources_used += 1

        seen_nodes: set[int] = set()
        for tree in detail.parse.trees:
            stack = [tree]
            while stack:
                node = stack.pop()
                condition = node.payload.get("condition")
                if condition is not None:
                    if node.uid not in seen_nodes and any(
                        condition is extracted or condition == extracted
                        for extracted in detail.model.conditions
                        if id(extracted) in correct
                    ):
                        seen_nodes.add(node.uid)
                        self.stats.conditions_used += 1
                        self.stats.observe(
                            str(node.payload.get("arrangement", "bare")),
                            node.payload.get("attr_gap"),
                        )
                    continue
                stack.extend(node.children)

    def observe_many(self, sources: list[GeneratedSource]) -> None:
        for source in sources:
            self.observe_source(source)

    # -- fitting ----------------------------------------------------------------------

    def fit(
        self,
        percentile: float = 0.98,
        slack: float = 1.25,
        base: SpatialConfig = DEFAULT_SPATIAL,
    ) -> SpatialConfig:
        """A spatial config fitted to the harvested evidence.

        Thresholds land at the *percentile*-th observed gap times *slack*;
        dimensions with no evidence keep the base configuration's value.
        """
        horizontal = base.max_horizontal_gap
        if self.stats.left_gaps:
            horizontal = max(
                20.0, _percentile(self.stats.left_gaps, percentile) * slack
            )
        vertical = base.max_vertical_gap
        if self.stats.vertical_gaps:
            vertical = max(
                8.0, _percentile(self.stats.vertical_gaps, percentile) * slack
            )
        return SpatialConfig(
            max_horizontal_gap=horizontal,
            max_vertical_gap=vertical,
            alignment_tolerance=base.alignment_tolerance,
            min_row_overlap=base.min_row_overlap,
            min_column_overlap=base.min_column_overlap,
        )


def calibrate_spatial_config(
    sources: list[GeneratedSource],
    percentile: float = 0.98,
    slack: float = 1.25,
) -> tuple[SpatialConfig, ArrangementStats]:
    """One-call calibration over *sources*."""
    calibrator = SpatialCalibrator()
    calibrator.observe_many(sources)
    return calibrator.fit(percentile=percentile, slack=slack), calibrator.stats
