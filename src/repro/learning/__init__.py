"""Learning support for grammar derivation (paper Section 7).

The paper derives its global grammar by hand and asks whether "techniques
such as machine learning can be explored to automate such grammar
creation".  This package implements the tractable core of that program:
*calibrating* the derived grammar's spatial conventions from annotated
sources.  Given training sources with ground-truth semantic models, the
calibrator extracts, identifies which parsed conditions were correct,
harvests the spatial statistics of their winning interpretations (label-to-
field gaps, arrangement frequencies), and fits adjacency thresholds --
turning the hand-picked constants of :class:`~repro.spatial.SpatialConfig`
into measured conventions.
"""

from repro.learning.calibrate import (
    ArrangementStats,
    SpatialCalibrator,
    calibrate_spatial_config,
)

__all__ = [
    "ArrangementStats",
    "SpatialCalibrator",
    "calibrate_spatial_config",
]
