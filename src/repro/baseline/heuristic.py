"""The pairwise proximity/alignment heuristic extractor.

Algorithm (one local decision per control, no global context):

1. Group radio buttons and checkboxes that share an HTML ``name``.
2. For every input control (or group), pick the closest text token that
   lies to its left on the same row, else the closest text above it --
   the classic "label is left or above" rule of thumb.
3. Emit one condition per control/group: textboxes become ``contains``
   text conditions, selects and radio groups become ``=`` enumerations,
   checkbox groups become ``in`` enumerations.

By construction the baseline cannot represent operator lists (each radio
group becomes its own enum condition), from/to ranges (two separate
conditions), or month/day/year dates (three separate conditions) -- the
failure modes the parsing paradigm was designed to fix.
"""

from __future__ import annotations

from repro.grammar.text_heuristics import clean_label
from repro.html.parser import parse_html
from repro.semantics.condition import Condition, Domain, SemanticModel
from repro.spatial.relations import DEFAULT_SPATIAL, SpatialConfig, left_of, above
from repro.tokens.model import Token
from repro.tokens.tokenizer import FormTokenizer


class HeuristicExtractor:
    """Pairwise label-association baseline."""

    def __init__(self, spatial: SpatialConfig = DEFAULT_SPATIAL):
        self.spatial = spatial

    # -- public API --------------------------------------------------------------

    def extract(self, html: str, form_index: int = 0) -> SemanticModel:
        """Extract a semantic model from the *form_index*-th form."""
        document = parse_html(html)
        tokenizer = FormTokenizer(document)
        forms = document.forms
        form = forms[min(form_index, len(forms) - 1)] if forms else None
        tokens = tokenizer.tokenize(form)
        return self.extract_from_tokens(tokens)

    def extract_from_tokens(self, tokens: list[Token]) -> SemanticModel:
        """Associate each control with its nearest label and emit conditions."""
        texts = [token for token in tokens if token.terminal == "text"]
        conditions: list[Condition] = []
        for unit in self._control_units(tokens):
            conditions.append(self._condition_for(unit, texts))
        return SemanticModel(conditions=conditions)

    # -- grouping -------------------------------------------------------------------

    @staticmethod
    def _control_units(tokens: list[Token]) -> list[list[Token]]:
        """Controls as units: widgets sharing a name group together."""
        units: list[list[Token]] = []
        groups: dict[str, list[Token]] = {}
        for token in tokens:
            if token.terminal in ("radiobutton", "checkbox"):
                key = f"{token.terminal}:{token.name or id(token)}"
                group = groups.get(key)
                if group is None:
                    groups[key] = group = []
                    units.append(group)
                group.append(token)
            elif token.is_input:
                units.append([token])
        return units

    # -- label association ----------------------------------------------------------

    def _nearest_label(
        self, anchor: Token, texts: list[Token]
    ) -> Token | None:
        """Closest text left of *anchor* on its row, else closest above."""
        left_candidates = [
            text
            for text in texts
            if left_of(text.bbox, anchor.bbox, self.spatial)
        ]
        if left_candidates:
            return min(
                left_candidates, key=lambda text: anchor.bbox.gap(text.bbox)
            )
        above_candidates = [
            text
            for text in texts
            if above(text.bbox, anchor.bbox, self.spatial)
        ]
        if above_candidates:
            return min(
                above_candidates, key=lambda text: anchor.bbox.gap(text.bbox)
            )
        return None

    def _condition_for(
        self, unit: list[Token], texts: list[Token]
    ) -> Condition:
        anchor = unit[0]
        fields = tuple(
            dict.fromkeys(token.name for token in unit if token.name)
        )
        if anchor.terminal in ("radiobutton", "checkbox"):
            bindings = []
            for widget in unit:
                label = self._widget_label(widget, texts)
                if label:
                    bindings.append(
                        (label, widget.name or "",
                         str(widget.attrs.get("value", "")))
                    )
            values = tuple(label for label, _, _ in bindings)
            label_token = self._nearest_label(anchor, texts)
            attribute = (
                clean_label(label_token.sval) if label_token is not None else ""
            )
            multi = anchor.terminal == "checkbox"
            return Condition(
                attribute=attribute,
                operators=("in",) if multi else ("=",),
                domain=Domain("enum", values),
                fields=fields,
                value_bindings=tuple(bindings),
            )
        if anchor.terminal in ("selectlist", "listbox"):
            label_token = self._nearest_label(anchor, texts)
            attribute = (
                clean_label(label_token.sval) if label_token is not None else ""
            )
            values = tuple(
                option.label for option in anchor.options if option.label
            )
            name = anchor.name or ""
            return Condition(
                attribute=attribute,
                operators=("=",),
                domain=Domain("enum", values),
                fields=fields,
                value_bindings=tuple(
                    (option.label, name, option.value)
                    for option in anchor.options
                    if option.label
                ),
            )
        label_token = self._nearest_label(anchor, texts)
        attribute = (
            clean_label(label_token.sval) if label_token is not None else ""
        )
        return Condition(
            attribute=attribute,
            operators=("contains",),
            domain=Domain("text"),
            fields=fields,
        )

    def _widget_label(self, widget: Token, texts: list[Token]) -> str:
        """The text immediately right of a radio/checkbox widget."""
        right_candidates = [
            text
            for text in texts
            if left_of(widget.bbox, text.bbox, self.spatial)
        ]
        if not right_candidates:
            return ""
        best = min(right_candidates, key=lambda text: widget.bbox.gap(text.bbox))
        return clean_label(best.sval)


def heuristic_extract(html: str) -> SemanticModel:
    """One-shot baseline extraction."""
    return HeuristicExtractor().extract(html)
