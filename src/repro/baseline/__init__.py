"""Baseline: pairwise proximity/alignment heuristics (paper Section 2).

Prior work (notably the hidden-Web crawler of Raghavan & Garcia-Molina,
reference [21]) associates form elements and texts *pairwise* using simple
proximity and alignment heuristics, with no global interpretation.  This
package implements that approach as the comparison baseline: it reproduces
the behaviour the paper argues against -- reasonable on simple label+field
forms, unable to capture operators, ranges, or composite dates.
"""

from repro.baseline.heuristic import HeuristicExtractor, heuristic_extract

__all__ = ["HeuristicExtractor", "heuristic_extract"]
