"""Spatial relations between visual tokens.

The 2P grammar's productions constrain components with two-dimensional
topology -- ``left``, ``above``, ``below``, alignment -- with adjacency
implied in every relation (paper Section 4.1).  This package defines those
predicates over :class:`~repro.layout.box.BBox` values, parameterized by a
:class:`SpatialConfig` of adjacency thresholds.
"""

from repro.spatial.relations import (
    DEFAULT_SPATIAL,
    SpatialConfig,
    above,
    below,
    bottom_aligned,
    horizontally_adjacent,
    left_aligned,
    left_of,
    right_of,
    same_column,
    same_row,
    top_aligned,
    vertically_adjacent,
)

__all__ = [
    "DEFAULT_SPATIAL",
    "SpatialConfig",
    "above",
    "below",
    "bottom_aligned",
    "horizontally_adjacent",
    "left_aligned",
    "left_of",
    "right_of",
    "same_column",
    "same_row",
    "top_aligned",
    "vertically_adjacent",
]
