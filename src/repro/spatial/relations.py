"""Topological predicates used by grammar constraints.

All relations imply *adjacency* (paper Section 4.1: "adjacency is implied in
all spatial relations and thus omitted in the constraint names").  A label
40 px left of its text box is "left" of it; a label in a different column
300 px away is not.  The thresholds live in :class:`SpatialConfig` so tests
and alternative grammars can tighten or relax them.

Conventions: x grows rightward, y grows downward, boxes are
``(left, right, top, bottom)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.box import BBox


@dataclass(frozen=True)
class SpatialConfig:
    """Adjacency and alignment tolerances, in pixels.

    Attributes:
        max_horizontal_gap: Largest x-separation for ``left``/``right``.
            Forms align labels and fields in table columns, so the gap can
            be substantially wider than one space.
        max_vertical_gap: Largest y-separation for ``above``/``below``.
        alignment_tolerance: Slack when comparing edges for alignment.
        min_row_overlap: Fraction of the shorter box's height that must be
            shared for two boxes to sit on the same text row.
        min_column_overlap: Same, horizontally, for column relations.
    """

    max_horizontal_gap: float = 170.0
    max_vertical_gap: float = 28.0
    alignment_tolerance: float = 6.0
    min_row_overlap: float = 0.5
    min_column_overlap: float = 0.3


#: Shared default configuration.
DEFAULT_SPATIAL = SpatialConfig()


def same_row(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when the boxes share a horizontal band (one visual row)."""
    shorter = min(a.height, b.height)
    if shorter <= 0:
        return a.vertical_overlap(b) > 0 or a.vertical_gap(b) == 0
    return a.vertical_overlap(b) >= config.min_row_overlap * shorter


def same_column(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when the boxes share a vertical band (one visual column)."""
    narrower = min(a.width, b.width)
    if narrower <= 0:
        return a.horizontal_overlap(b) > 0 or a.horizontal_gap(b) == 0
    return a.horizontal_overlap(b) >= config.min_column_overlap * narrower


def left_of(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when *a* sits immediately to the left of *b* on the same row.

    The alignment tolerance permits a slight overlap, so a strict center
    ordering keeps the relation antisymmetric even for boxes narrower than
    the tolerance.
    """
    if a.center_x >= b.center_x:
        return False
    if a.right > b.left + config.alignment_tolerance:
        return False
    if b.left - a.right > config.max_horizontal_gap:
        return False
    return same_row(a, b, config)


def right_of(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when *a* sits immediately to the right of *b* on the same row."""
    return left_of(b, a, config)


def above(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when *a* sits immediately above *b* in the same column.

    Strict center ordering keeps the relation antisymmetric (see
    :func:`left_of`).
    """
    if a.center_y >= b.center_y:
        return False
    if a.bottom > b.top + config.alignment_tolerance:
        return False
    if b.top - a.bottom > config.max_vertical_gap:
        return False
    return same_column(a, b, config)


def below(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when *a* sits immediately below *b* in the same column."""
    return above(b, a, config)


def left_aligned(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when the boxes share their left edge (within tolerance)."""
    return abs(a.left - b.left) <= config.alignment_tolerance


def top_aligned(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when the boxes share their top edge (within tolerance)."""
    return abs(a.top - b.top) <= config.alignment_tolerance


def bottom_aligned(a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL) -> bool:
    """True when the boxes share their bottom edge (within tolerance)."""
    return abs(a.bottom - b.bottom) <= config.alignment_tolerance


def horizontally_adjacent(
    a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL
) -> bool:
    """True when the boxes are close along x, in either order."""
    return left_of(a, b, config) or left_of(b, a, config)


def vertically_adjacent(
    a: BBox, b: BBox, config: SpatialConfig = DEFAULT_SPATIAL
) -> bool:
    """True when the boxes are close along y, in either order."""
    return above(a, b, config) or above(b, a, config)
