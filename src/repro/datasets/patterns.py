"""The condition-pattern catalog.

The paper's survey of 150 sources found ~25 condition patterns, of which 21
occur more than once (Section 3.1, Figure 4).  This module is the synthetic
equivalent: each :class:`PatternSpec` renders an attribute as HTML in one
fixed visual arrangement and emits the ground-truth condition(s) the
arrangement expresses.  Patterns 1-21 are covered by the derived global
grammar (:mod:`repro.grammar.standard`); patterns 22-25 are the rare
out-of-grammar conventions that exercise grammar *incompleteness* -- the
best-effort parser must degrade gracefully on them, exactly as the paper's
parser does on unseen real-world patterns.

Ground-truth conventions intentionally mirror the extraction conventions
documented in :mod:`repro.grammar.standard` (e.g. a plain keyword box
supports the single implicit ``contains`` operator; a select condition's
domain enumerates all option labels including placeholders), so that the
evaluation measures *parsing* quality rather than annotation style.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.datasets.domains import AttributeSpec, DomainSpec
from repro.semantics.condition import Condition, Domain

_MONTHS = ("January", "February", "March", "April", "May", "June", "July",
           "August", "September", "October", "November", "December")


@dataclass
class RenderedPattern:
    """One rendered pattern occurrence.

    ``rows`` feed a two-column table layout: ``(label_cell, control_cell)``
    pairs, with ``None`` labels meaning the control cell spans both columns.
    The generator may also rebuild the rows into a flowing (``<br>``
    separated) layout; both preserve the pattern's topology.
    """

    rows: list[tuple[str | None, str]]
    conditions: list[Condition]
    pattern_id: int = 0
    #: Raw ``<tr>...`` markup for table layouts that the (label, control)
    #: rows cannot express (e.g. a rowspanning label); when set, table
    #: assembly injects it verbatim and flow assembly falls back to rows.
    rows_html: str | None = None


#: Renderer signature: (attribute, domain, rng) -> rendered occurrence.
Renderer = Callable[[AttributeSpec, DomainSpec, random.Random], RenderedPattern]


@dataclass(frozen=True)
class PatternSpec:
    """Catalog entry for one condition pattern."""

    id: int
    name: str
    kind: str
    in_grammar: bool
    rank: int
    render: Renderer = field(compare=False)

    def applicable(self, spec: AttributeSpec) -> bool:
        """True when the pattern can present *spec*."""
        if spec.kind != self.kind:
            return False
        if self.id in (4, 5, 6, 7) and not spec.operators:
            return False
        if self.id == 10 and not 2 <= len(spec.values) <= 7:
            return False
        if self.id == 11 and len(spec.values) != 2:
            return False
        if self.id == 12 and not 2 <= len(spec.values) <= 4:
            return False
        if self.id in (16, 17) and not spec.values:
            return False
        if self.id == 20 and spec.label not in ("Keywords",):
            return False
        if self.id == 21 and not spec.unit:
            return False
        if self.id == 22 and not spec.operators:
            return False
        if self.id == 23 and not 3 <= len(spec.values) <= 8:
            return False
        return True


# ---------------------------------------------------------------------------
# HTML building blocks
# ---------------------------------------------------------------------------


def _label_html(label: str, rng: random.Random) -> str:
    style = rng.random()
    if style < 0.45:
        return f"{label}:"
    if style < 0.70:
        return f"<b>{label}</b>:"
    if style < 0.90:
        return label
    return f"{label}*:"


def _textbox(name: str, rng: random.Random) -> str:
    size = rng.choice((12, 15, 18, 20, 24, 30))
    return f'<input type="text" name="{name}" size="{size}">'


def _select(name: str, values: tuple[str, ...], multiple: bool = False,
            size: int = 1) -> str:
    options = "".join(f"<option>{value}</option>" for value in values)
    extra = " multiple" if multiple else ""
    if size > 1:
        extra += f' size="{size}"'
    return f'<select name="{name}"{extra}>{options}</select>'


def _radio(name: str, value: str, label: str, checked: bool = False) -> str:
    mark = " checked" if checked else ""
    return f'<input type="radio" name="{name}" value="{value}"{mark}> {label}'


def _checkbox(name: str, value: str, label: str) -> str:
    return f'<input type="checkbox" name="{name}" value="{value}"> {label}'


def _radio_group(name: str, labels: tuple[str, ...], sep: str) -> str:
    return sep.join(
        _radio(name, f"v{i}", label, checked=(i == 0))
        for i, label in enumerate(labels)
    )


def _checkbox_group(name: str, labels: tuple[str, ...], sep: str) -> str:
    return sep.join(
        _checkbox(name, f"v{i}", label) for i, label in enumerate(labels)
    )


def _maybe_placeholder(spec: AttributeSpec, rng: random.Random) -> tuple[str, ...]:
    """Enum values, sometimes with a leading placeholder option."""
    values = spec.values
    if values and not values[0].lower().startswith(("any", "all")) and rng.random() < 0.4:
        placeholder = rng.choice((f"All {spec.label.lower()}s", "Any", "All"))
        return (placeholder,) + values
    return values


# -- ground-truth helpers ------------------------------------------------------


def _text_condition(spec: AttributeSpec, bare: bool = False) -> Condition:
    return Condition(
        attribute="" if bare else spec.label,
        operators=("contains",),
        domain=Domain("text"),
        fields=(spec.field_name,),
    )


def _op_condition(spec: AttributeSpec, mode_values: tuple[str, ...]) -> Condition:
    """Text condition with explicit operator choices and their bindings."""
    mode_field = f"{spec.field_name}_mode"
    return Condition(
        attribute=spec.label,
        operators=spec.operators,
        domain=Domain("text"),
        fields=(spec.field_name, mode_field),
        operator_bindings=tuple(
            (operator, mode_field, value)
            for operator, value in zip(spec.operators, mode_values)
        ),
    )


def _enum_condition(
    spec: AttributeSpec, values: tuple[str, ...], multi: bool = False,
    bare: bool = False, submit_values: tuple[str, ...] | None = None,
) -> Condition:
    """Enumerated condition; ``submit_values`` defaults to the labels
    (selects without explicit option values submit the label text)."""
    if submit_values is None:
        submit_values = values
    return Condition(
        attribute="" if bare else spec.label,
        operators=("in",) if multi else ("=",),
        domain=Domain("enum", values),
        fields=(spec.field_name,),
        value_bindings=tuple(
            (label, spec.field_name, value)
            for label, value in zip(values, submit_values)
        ),
    )


def _range_condition(spec: AttributeSpec) -> Condition:
    lo_field = f"{spec.field_name}_lo"
    hi_field = f"{spec.field_name}_hi"
    return Condition(
        attribute=spec.label,
        operators=("between",),
        domain=Domain("range"),
        fields=(lo_field, hi_field),
        field_roles=((lo_field, "lo"), (hi_field, "hi")),
    )


def _date_condition(
    spec: AttributeSpec, parts: tuple[str, ...] = ("month", "day", "year")
) -> Condition:
    suffix = {"month": "m", "day": "d", "year": "y"}
    fields = tuple(f"{spec.field_name}_{suffix[part]}" for part in parts)
    return Condition(
        attribute=spec.label,
        operators=("=",),
        domain=Domain("datetime"),
        fields=fields,
        field_roles=tuple(zip(fields, parts)),
    )


# ---------------------------------------------------------------------------
# pattern renderers (1-21: in-grammar)
# ---------------------------------------------------------------------------


def _p1_textval_left(spec, domain, rng) -> RenderedPattern:
    label = _label_html(spec.label, rng)
    if rng.random() < 0.2:
        # Some sources use explicit <label for> markup.
        label = f'<label for="{spec.field_name}">{label}</label>'
    return RenderedPattern(
        rows=[(label, _textbox(spec.field_name, rng))],
        conditions=[_text_condition(spec)],
    )


def _p2_textval_above(spec, domain, rng) -> RenderedPattern:
    html = f"{_label_html(spec.label, rng)}<br>{_textbox(spec.field_name, rng)}"
    return RenderedPattern(rows=[(None, html)], conditions=[_text_condition(spec)])


def _p3_textval_below(spec, domain, rng) -> RenderedPattern:
    html = f"{_textbox(spec.field_name, rng)}<br>{_label_html(spec.label, rng)}"
    return RenderedPattern(rows=[(None, html)], conditions=[_text_condition(spec)])


def _p4_textop_below(spec, domain, rng) -> RenderedPattern:
    radios = _radio_group(f"{spec.field_name}_mode", spec.operators, "<br>")
    return RenderedPattern(
        rows=[
            (_label_html(spec.label, rng), _textbox(spec.field_name, rng)),
            ("", radios),
        ],
        conditions=[_op_condition(spec, tuple(f"v{i}" for i in range(len(spec.operators))))],
    )


def _p5_textop_right(spec, domain, rng) -> RenderedPattern:
    radios = _radio_group(f"{spec.field_name}_mode", spec.operators, " ")
    html = f"{_textbox(spec.field_name, rng)} {radios}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_op_condition(spec, tuple(f"v{i}" for i in range(len(spec.operators))))],
    )


def _p6_textopsel_mid(spec, domain, rng) -> RenderedPattern:
    op_select = _select(f"{spec.field_name}_mode", spec.operators)
    html = f"{op_select} {_textbox(spec.field_name, rng)}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_op_condition(spec, spec.operators)],
    )


def _p7_textopsel_below(spec, domain, rng) -> RenderedPattern:
    op_select = _select(f"{spec.field_name}_mode", spec.operators)
    html = f"{_textbox(spec.field_name, rng)}<br>{op_select}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_op_condition(spec, spec.operators)],
    )


def _p8_sel_left(spec, domain, rng) -> RenderedPattern:
    values = _maybe_placeholder(spec, rng)
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), _select(spec.field_name, values))],
        conditions=[_enum_condition(spec, values)],
    )


def _p9_sel_above(spec, domain, rng) -> RenderedPattern:
    values = _maybe_placeholder(spec, rng)
    html = f"{_label_html(spec.label, rng)}<br>{_select(spec.field_name, values)}"
    return RenderedPattern(
        rows=[(None, html)], conditions=[_enum_condition(spec, values)]
    )


def _p10_enumrb_labeled(spec, domain, rng) -> RenderedPattern:
    sep = " " if len(spec.values) <= 4 else "<br>"
    radios = _radio_group(spec.field_name, spec.values, sep)
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), radios)],
        conditions=[_enum_condition(spec, spec.values, submit_values=tuple(f"v{i}" for i in range(len(spec.values))))],
    )


def _p11_enumrb_bare(spec, domain, rng) -> RenderedPattern:
    radios = _radio_group(spec.field_name, spec.values, " ")
    return RenderedPattern(
        rows=[(None, radios)],
        conditions=[
            _enum_condition(spec, spec.values, bare=True, submit_values=tuple(f"v{i}" for i in range(len(spec.values))))
        ],
    )


def _p12_enumcb_labeled(spec, domain, rng) -> RenderedPattern:
    sep = " " if len(spec.values) <= 3 else "<br>"
    boxes = _checkbox_group(spec.field_name, spec.values, sep)
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), boxes)],
        conditions=[
            _enum_condition(spec, spec.values, multi=True, submit_values=tuple(f"v{i}" for i in range(len(spec.values))))
        ],
    )


def _p13_flag(spec, domain, rng) -> RenderedPattern:
    html = _checkbox(spec.field_name, "1", spec.label)
    return RenderedPattern(
        rows=[(None, html)],
        conditions=[
            Condition(
                attribute="",
                operators=("in",),
                domain=Domain("enum", (spec.label,)),
                fields=(spec.field_name,),
                value_bindings=((spec.label, spec.field_name, "1"),),
            )
        ],
    )


def _p14_range_text_row(spec, domain, rng) -> RenderedPattern:
    lo = f'<input type="text" name="{spec.field_name}_lo" size="8">'
    hi = f'<input type="text" name="{spec.field_name}_hi" size="8">'
    style = rng.random()
    if style < 0.5:
        html = f"from {lo} to {hi}"
    else:
        html = f"{lo} to {hi}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_range_condition(spec)],
    )


def _p15_range_text_stacked(spec, domain, rng) -> RenderedPattern:
    lo = f'<input type="text" name="{spec.field_name}_lo" size="8">'
    hi = f'<input type="text" name="{spec.field_name}_hi" size="8">'
    html = f"min {lo}<br>max {hi}"
    label = _label_html(spec.label, rng)
    rows_html = None
    if rng.random() < 0.35:
        # Some sources span the label over the two endpoint rows.
        rows_html = (
            f'<tr><td rowspan="2">{label}</td><td>min {lo}</td></tr>'
            f"<tr><td>max {hi}</td></tr>"
        )
    return RenderedPattern(
        rows=[(label, html)],
        conditions=[_range_condition(spec)],
        rows_html=rows_html,
    )


def _p16_range_sel_row(spec, domain, rng) -> RenderedPattern:
    lo = _select(f"{spec.field_name}_lo", spec.values)
    hi = _select(f"{spec.field_name}_hi", spec.values)
    html = f"from {lo} to {hi}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_range_condition(spec)],
    )


def _p17_range_sel_pair(spec, domain, rng) -> RenderedPattern:
    lo = _select(f"{spec.field_name}_lo", spec.values)
    hi = _select(f"{spec.field_name}_hi", spec.values)
    joiner = rng.choice(("to", "-"))
    html = f"{lo} {joiner} {hi}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_range_condition(spec)],
    )


def _date_selects(field_name: str, rng: random.Random,
                  parts: tuple[str, ...]) -> str:
    pieces = []
    for part in parts:
        if part == "month":
            pieces.append(_select(f"{field_name}_m", _MONTHS))
        elif part == "day":
            pieces.append(
                _select(f"{field_name}_d", tuple(str(d) for d in range(1, 32)))
            )
        else:
            pieces.append(
                _select(f"{field_name}_y", ("2004", "2005", "2006"))
            )
    return " ".join(pieces)


def _p18_date3(spec, domain, rng) -> RenderedPattern:
    order = rng.choice((("month", "day", "year"), ("day", "month", "year")))
    html = _date_selects(spec.field_name, rng, order)
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_date_condition(spec, order)],
    )


def _p19_date2(spec, domain, rng) -> RenderedPattern:
    order = rng.choice((("month", "day"), ("day", "month"), ("month", "year")))
    html = _date_selects(spec.field_name, rng, order)
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_date_condition(spec, order)],
    )


def _p20_bare_keyword(spec, domain, rng) -> RenderedPattern:
    return RenderedPattern(
        rows=[(None, _textbox(spec.field_name, rng))],
        conditions=[_text_condition(spec, bare=True)],
    )


def _p21_textval_unit(spec, domain, rng) -> RenderedPattern:
    box = f'<input type="text" name="{spec.field_name}" size="8">'
    html = f"{box} {spec.unit}"
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_text_condition(spec)],
    )


# ---------------------------------------------------------------------------
# pattern renderers (22-25: out-of-grammar, rare)
# ---------------------------------------------------------------------------


def _p22_field_selector(spec, domain, rng) -> RenderedPattern:
    """Radios choose *which attribute* the single textbox searches."""
    others = [s for s in domain.attributes if s.kind == "text" and s is not spec]
    second = others[0].label if others else "Keywords"
    radios = _radio_group(
        f"{spec.field_name}_which", (spec.label, second), " "
    )
    html = f"{radios} {_textbox(spec.field_name, rng)}"
    return RenderedPattern(
        rows=[("Search in:", html)],
        conditions=[
            Condition(
                attribute="",
                operators=(spec.label, second),
                domain=Domain("text"),
                fields=(spec.field_name,),
            )
        ],
    )


def _p23_double_list(spec, domain, rng) -> RenderedPattern:
    """Dual list-mover: available values + chosen values + buttons."""
    source = _select(spec.field_name, spec.values, multiple=True, size=4)
    chosen = _select(f"{spec.field_name}_chosen", (), multiple=True, size=4)
    html = (
        f"{source} "
        '<input type="button" value="Add &gt;"> '
        '<input type="button" value="&lt; Remove"> '
        f"{chosen}"
    )
    return RenderedPattern(
        rows=[(_label_html(spec.label, rng), html)],
        conditions=[_enum_condition(spec, spec.values, multi=True)],
    )


def _p24_label_right(spec, domain, rng) -> RenderedPattern:
    """The attribute name trails the field: "Stay for [box] nights"."""
    html = f"Stay for {_textbox(spec.field_name, rng)} {spec.label.lower()}"
    return RenderedPattern(
        rows=[(None, html)],
        conditions=[_text_condition(spec)],
    )


def _p25_legend_group(spec, domain, rng) -> RenderedPattern:
    """A fieldset legend names the attribute of two bare selects."""
    values = spec.values or ("1", "2", "3")
    lo = _select(f"{spec.field_name}_lo", values)
    hi = _select(f"{spec.field_name}_hi", values)
    html = (
        f"<fieldset><legend>{spec.label}</legend>{lo} {hi}</fieldset>"
    )
    return RenderedPattern(
        rows=[(None, html)],
        conditions=[_range_condition(spec)],
    )


# ---------------------------------------------------------------------------
# the catalog
# ---------------------------------------------------------------------------

#: All 25 patterns.  ``rank`` orders the 21 in-grammar patterns by the
#: Zipf frequency the survey (Figure 4(b)) assigns them; out-of-grammar
#: patterns have rank 0 and a separate occurrence probability.
PATTERNS: tuple[PatternSpec, ...] = (
    PatternSpec(1, "textval-left", "text", True, 1, _p1_textval_left),
    PatternSpec(2, "textval-above", "text", True, 3, _p2_textval_above),
    PatternSpec(3, "textval-below", "text", True, 18, _p3_textval_below),
    PatternSpec(4, "textop-rb-below", "text", True, 11, _p4_textop_below),
    PatternSpec(5, "textop-rb-right", "text", True, 17, _p5_textop_right),
    PatternSpec(6, "textopsel-mid", "text", True, 12, _p6_textopsel_mid),
    PatternSpec(7, "textopsel-below", "text", True, 20, _p7_textopsel_below),
    PatternSpec(8, "sel-left", "enum", True, 2, _p8_sel_left),
    PatternSpec(9, "sel-above", "enum", True, 4, _p9_sel_above),
    PatternSpec(10, "enumrb-labeled", "enum", True, 5, _p10_enumrb_labeled),
    PatternSpec(11, "enumrb-bare", "enum", True, 10, _p11_enumrb_bare),
    PatternSpec(12, "enumcb-labeled", "enum", True, 13, _p12_enumcb_labeled),
    PatternSpec(13, "flag", "flag", True, 7, _p13_flag),
    PatternSpec(14, "range-text-row", "range", True, 8, _p14_range_text_row),
    PatternSpec(15, "range-text-stacked", "range", True, 19,
                _p15_range_text_stacked),
    PatternSpec(16, "range-sel-row", "range", True, 9, _p16_range_sel_row),
    PatternSpec(17, "range-sel-pair", "range", True, 16, _p17_range_sel_pair),
    PatternSpec(18, "date3", "date", True, 6, _p18_date3),
    PatternSpec(19, "date2", "date", True, 15, _p19_date2),
    PatternSpec(20, "bare-keyword", "text", True, 14, _p20_bare_keyword),
    PatternSpec(21, "textval-unit", "range", True, 21, _p21_textval_unit),
    PatternSpec(22, "field-selector-rb", "text", False, 0, _p22_field_selector),
    PatternSpec(23, "double-list", "enum", False, 0, _p23_double_list),
    PatternSpec(24, "label-right", "text", False, 0, _p24_label_right),
    PatternSpec(25, "legend-group", "range", False, 0, _p25_legend_group),
)

PATTERNS_BY_ID: dict[int, PatternSpec] = {spec.id: spec for spec in PATTERNS}
IN_GRAMMAR_PATTERNS: tuple[PatternSpec, ...] = tuple(
    spec for spec in PATTERNS if spec.in_grammar
)
OUT_OF_GRAMMAR_PATTERNS: tuple[PatternSpec, ...] = tuple(
    spec for spec in PATTERNS if not spec.in_grammar
)


def zipf_weight(rank: int, exponent: float = 1.1) -> float:
    """Zipf weight for a pattern of the given frequency *rank* (1-based)."""
    if rank <= 0:
        return 0.0
    return 1.0 / (rank ** exponent)
