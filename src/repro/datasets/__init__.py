"""Synthetic datasets standing in for TEL-8 / invisibleweb.net.

The paper evaluates on four datasets of live deep-Web sources (Basic,
NewSource, NewDomain, Random).  Offline, we substitute generators that
produce HTML query forms from the same *pattern vocabulary* the paper
surveys -- 21 in-grammar condition patterns with a Zipf frequency
distribution, plus rare out-of-grammar patterns that exercise grammar
incompleteness -- together with ground-truth semantic models.

The accuracy-relevant quantities the paper measures (pattern-vocabulary
growth, rank-frequency shape, per-source and overall precision/recall) are
functions of this pattern mix, so the substitution preserves the
experiments' behaviour; see DESIGN.md for the full argument.
"""

from repro.datasets.domains import DOMAINS, AttributeSpec, DomainSpec
from repro.datasets.fixtures import (
    QAA_HTML,
    QAA_VARIANT_HTML,
    QAM_FRAGMENT_HTML,
    QAM_HTML,
    qaa_ground_truth,
    qam_ground_truth,
)
from repro.datasets.generator import GeneratedSource, SourceGenerator
from repro.datasets.patterns import PATTERNS, PatternSpec
from repro.datasets.repository import Dataset, build_dataset, standard_datasets

__all__ = [
    "AttributeSpec",
    "DOMAINS",
    "Dataset",
    "DomainSpec",
    "GeneratedSource",
    "PATTERNS",
    "PatternSpec",
    "QAA_HTML",
    "QAA_VARIANT_HTML",
    "QAM_FRAGMENT_HTML",
    "QAM_HTML",
    "SourceGenerator",
    "build_dataset",
    "qaa_ground_truth",
    "qam_ground_truth",
    "standard_datasets",
]
