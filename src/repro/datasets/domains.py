"""Domain vocabularies for the synthetic source generator.

Mirrors the paper's evaluation domains: the Basic/NewSource datasets draw
from Books, Automobiles, and Airfares; the NewDomain dataset from six
further domains (the paper used five TEL-8 domains plus RealEstates); the
Random dataset samples across everything.

Each domain lists :class:`AttributeSpec` entries -- queryable attributes
with the *kind* of condition they support, enumerated values where
applicable, and the operator wordings sources attach to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AttributeSpec:
    """One queryable attribute of a domain.

    Attributes:
        label: Attribute label as shown on forms (generators add decoration
            such as trailing colons).
        kind: ``"text"`` (keyword box), ``"enum"`` (finite choices),
            ``"range"`` (numeric interval), ``"date"`` (calendar selects),
            or ``"flag"`` (a lone yes/no checkbox).
        values: Enumerated values for ``enum`` kinds (and endpoint menus
            for enumerated ranges).
        operators: Operator wordings for text attributes that sources
            commonly expose as radio or select modifiers; empty when the
            attribute is typically a plain keyword match.
        unit: Unit text some sources print after the input field.
        field_name: HTML control name used in generated markup.
        numeric_range: Plausible record-value interval for ``range``
            attributes (used by the simulated databases).
    """

    label: str
    kind: str
    values: tuple[str, ...] = ()
    operators: tuple[str, ...] = ()
    unit: str = ""
    field_name: str = ""
    numeric_range: tuple[float, float] = (0.0, 100.0)

    def __post_init__(self) -> None:
        if self.kind not in ("text", "enum", "range", "date", "flag"):
            raise ValueError(f"unknown attribute kind {self.kind!r}")
        if not self.field_name:
            slug = "".join(
                ch if ch.isalnum() else "_" for ch in self.label.lower()
            ).strip("_")
            object.__setattr__(self, "field_name", slug or "field")


@dataclass(frozen=True)
class DomainSpec:
    """A deep-Web domain: its name and queryable attributes."""

    name: str
    attributes: tuple[AttributeSpec, ...] = field(default_factory=tuple)
    #: Sentences generators sprinkle around forms as decoration.
    blurbs: tuple[str, ...] = ()

    def by_kind(self, kind: str) -> list[AttributeSpec]:
        return [spec for spec in self.attributes if spec.kind == kind]


_NAME_OPS = (
    "first name/initials and last name",
    "start(s) of last name",
    "exact name",
)
_WORD_OPS = ("all of the words", "any of the words", "exact phrase")
_TITLE_OPS = ("title word(s)", "start(s) of title word(s)", "exact start of title")
_MATCH_OPS = ("contains", "starts with", "exact match")

_PRICE_STEPS = ("under $5", "$5 to $10", "$10 to $20", "$20 to $50", "over $50")
_BIG_PRICE_STEPS = (
    "under $5,000", "$5,000 - $10,000", "$10,000 - $20,000",
    "$20,000 - $35,000", "over $35,000",
)


BOOKS = DomainSpec(
    name="Books",
    attributes=(
        AttributeSpec("Author", "text", operators=_NAME_OPS),
        AttributeSpec("Title", "text", operators=_TITLE_OPS),
        AttributeSpec("Keywords", "text", operators=_WORD_OPS),
        AttributeSpec("ISBN", "text"),
        AttributeSpec("Publisher", "text", operators=_MATCH_OPS),
        AttributeSpec(
            "Subject", "enum",
            values=("Arts", "Biography", "Computers", "Fiction", "History",
                    "Science", "Travel"),
        ),
        AttributeSpec(
            "Format", "enum",
            values=("Hardcover", "Paperback", "Audio", "E-book"),
        ),
        AttributeSpec(
            "Condition", "enum", values=("New", "Used", "Collectible"),
        ),
        AttributeSpec(
            "Reader age", "enum",
            values=("All ages", "Young adult", "Children"),
        ),
        AttributeSpec("Price", "range", values=_PRICE_STEPS,
                      numeric_range=(1.0, 100.0)),
        AttributeSpec("Publication year", "range",
                      values=("1970", "1980", "1990", "2000", "2004"),
                      numeric_range=(1950.0, 2004.0)),
        AttributeSpec("In stock only", "flag"),
        AttributeSpec(
            "Language", "enum",
            values=("English", "French", "German", "Spanish"),
        ),
    ),
    blurbs=(
        "Search our catalog of over two million titles.",
        "Fields marked * are required.",
        "New! Browse this week's bestsellers.",
    ),
)


AUTOMOBILES = DomainSpec(
    name="Automobiles",
    attributes=(
        AttributeSpec(
            "Make", "enum",
            values=("Acura", "BMW", "Chevrolet", "Ford", "Honda", "Toyota"),
        ),
        AttributeSpec("Model", "text", operators=_MATCH_OPS),
        AttributeSpec("Keywords", "text", operators=_WORD_OPS),
        AttributeSpec("Zip code", "text"),
        AttributeSpec("Price", "range", values=_BIG_PRICE_STEPS,
                      numeric_range=(2000.0, 60000.0)),
        AttributeSpec("Year", "range",
                      values=("1995", "1998", "2000", "2002", "2004"),
                      numeric_range=(1990.0, 2004.0)),
        AttributeSpec("Mileage", "range", unit="miles",
                      values=("10,000", "30,000", "60,000", "100,000"),
                      numeric_range=(0.0, 150000.0)),
        AttributeSpec(
            "Body style", "enum",
            values=("Convertible", "Coupe", "Sedan", "SUV", "Truck", "Wagon"),
        ),
        AttributeSpec(
            "Color", "enum",
            values=("Black", "Blue", "Green", "Red", "Silver", "White"),
        ),
        AttributeSpec("Transmission", "enum", values=("Automatic", "Manual")),
        AttributeSpec("New or used", "enum", values=("New", "Used")),
        AttributeSpec(
            "Distance from zip", "enum", unit="miles",
            values=("10", "25", "50", "100", "250"),
        ),
        AttributeSpec("Photos only", "flag"),
        AttributeSpec(
            "Features", "enum",
            values=("Air conditioning", "Leather seats", "Sunroof"),
        ),
    ),
    blurbs=(
        "Find your next car among 400,000 listings.",
        "Tip: leave fields blank to broaden your search.",
    ),
)


AIRFARES = DomainSpec(
    name="Airfares",
    attributes=(
        AttributeSpec("From", "text"),
        AttributeSpec("To", "text"),
        AttributeSpec("Departure date", "date"),
        AttributeSpec("Return date", "date"),
        AttributeSpec(
            "Passengers", "enum", values=("1", "2", "3", "4", "5", "6"),
        ),
        AttributeSpec("Adults", "enum", values=("1", "2", "3", "4")),
        AttributeSpec("Children", "enum", values=("0", "1", "2", "3")),
        AttributeSpec("Seniors", "enum", values=("0", "1", "2")),
        AttributeSpec(
            "Cabin", "enum",
            values=("Economy", "Business", "First"),
        ),
        AttributeSpec(
            "Trip type", "enum", values=("Round trip", "One way"),
        ),
        AttributeSpec(
            "Departure time", "enum",
            values=("Morning", "Noon", "Afternoon", "Evening"),
        ),
        AttributeSpec(
            "Airline", "enum",
            values=("Any airline", "American", "Delta", "United", "Northwest"),
        ),
        AttributeSpec("Nonstop flights only", "flag"),
        AttributeSpec("Flexible dates", "flag"),
    ),
    blurbs=(
        "Book flights to more than 300 destinations.",
        "All fares include taxes and fees.",
    ),
)


MOVIES = DomainSpec(
    name="Movies",
    attributes=(
        AttributeSpec("Title", "text", operators=_TITLE_OPS),
        AttributeSpec("Director", "text", operators=_NAME_OPS),
        AttributeSpec("Actor", "text", operators=_NAME_OPS),
        AttributeSpec("Keywords", "text", operators=_WORD_OPS),
        AttributeSpec(
            "Genre", "enum",
            values=("Action", "Comedy", "Documentary", "Drama", "Horror",
                    "Sci-Fi"),
        ),
        AttributeSpec(
            "Rating", "enum", values=("G", "PG", "PG-13", "R"),
        ),
        AttributeSpec(
            "Format", "enum", values=("DVD", "VHS", "Blu-ray"),
        ),
        AttributeSpec("Release year", "range",
                      values=("1970", "1980", "1990", "2000", "2004"),
                      numeric_range=(1950.0, 2004.0)),
        AttributeSpec("Price", "range", values=_PRICE_STEPS,
                      numeric_range=(1.0, 60.0)),
        AttributeSpec("In stock only", "flag"),
    ),
    blurbs=("Search 60,000 movie listings.",),
)


MUSIC = DomainSpec(
    name="MusicRecords",
    attributes=(
        AttributeSpec("Artist", "text", operators=_NAME_OPS),
        AttributeSpec("Album title", "text", operators=_TITLE_OPS),
        AttributeSpec("Song title", "text", operators=_TITLE_OPS),
        AttributeSpec("Keywords", "text", operators=_WORD_OPS),
        AttributeSpec(
            "Genre", "enum",
            values=("Blues", "Classical", "Country", "Jazz", "Pop", "Rock"),
        ),
        AttributeSpec("Label", "text", operators=_MATCH_OPS),
        AttributeSpec(
            "Format", "enum", values=("CD", "Vinyl", "Cassette"),
        ),
        AttributeSpec("Price", "range", values=_PRICE_STEPS,
                      numeric_range=(1.0, 60.0)),
        AttributeSpec("Release year", "range",
                      values=("1960", "1970", "1980", "1990", "2000"),
                      numeric_range=(1950.0, 2004.0)),
        AttributeSpec("Used items only", "flag"),
    ),
    blurbs=("Find albums, singles, and rare pressings.",),
)


HOTELS = DomainSpec(
    name="Hotels",
    attributes=(
        AttributeSpec("City", "text"),
        AttributeSpec("Hotel name", "text", operators=_MATCH_OPS),
        AttributeSpec("Check-in date", "date"),
        AttributeSpec("Check-out date", "date"),
        AttributeSpec("Guests", "enum", values=("1", "2", "3", "4", "5")),
        AttributeSpec("Rooms", "enum", values=("1", "2", "3", "4")),
        AttributeSpec(
            "Star rating", "enum",
            values=("2 stars", "3 stars", "4 stars", "5 stars"),
        ),
        AttributeSpec("Price per night", "range",
                      values=("$50", "$100", "$150", "$200", "$300"),
                      numeric_range=(30.0, 400.0)),
        AttributeSpec(
            "Amenities", "enum",
            values=("Pool", "Fitness center", "Restaurant", "Pets allowed"),
        ),
        AttributeSpec("Ocean view only", "flag"),
    ),
    blurbs=("Compare rates at 25,000 hotels worldwide.",),
)


CAR_RENTALS = DomainSpec(
    name="CarRentals",
    attributes=(
        AttributeSpec("Pick-up city", "text"),
        AttributeSpec("Drop-off city", "text"),
        AttributeSpec("Pick-up date", "date"),
        AttributeSpec("Drop-off date", "date"),
        AttributeSpec(
            "Car type", "enum",
            values=("Economy", "Compact", "Midsize", "Full size", "SUV",
                    "Van"),
        ),
        AttributeSpec(
            "Rental company", "enum",
            values=("Any company", "Alamo", "Avis", "Budget", "Hertz"),
        ),
        AttributeSpec("Driver age", "enum", values=("18-24", "25-69", "70+")),
        AttributeSpec("Daily rate", "range",
                      values=("$20", "$35", "$50", "$75", "$100"),
                      numeric_range=(15.0, 120.0)),
        AttributeSpec("Automatic transmission only", "flag"),
    ),
    blurbs=("Reserve a car in three easy steps.",),
)


JOBS = DomainSpec(
    name="Jobs",
    attributes=(
        AttributeSpec("Keywords", "text", operators=_WORD_OPS),
        AttributeSpec("Job title", "text", operators=_MATCH_OPS),
        AttributeSpec("Company", "text", operators=_MATCH_OPS),
        AttributeSpec("City", "text"),
        AttributeSpec(
            "State", "enum",
            values=("Any state", "California", "Illinois", "New York",
                    "Texas", "Washington"),
        ),
        AttributeSpec(
            "Category", "enum",
            values=("Accounting", "Engineering", "Healthcare", "Marketing",
                    "Sales", "Software"),
        ),
        AttributeSpec("Salary", "range",
                      values=("$30,000", "$50,000", "$75,000", "$100,000"),
                      numeric_range=(25000.0, 150000.0)),
        AttributeSpec("Job type", "enum",
                      values=("Full time", "Part time", "Contract")),
        AttributeSpec(
            "Posted within", "enum",
            values=("1 day", "7 days", "30 days", "60 days"),
        ),
        AttributeSpec("Telecommute OK", "flag"),
    ),
    blurbs=("Over 800,000 openings updated daily.",),
)


REAL_ESTATE = DomainSpec(
    name="RealEstates",
    attributes=(
        AttributeSpec("City", "text"),
        AttributeSpec(
            "State", "enum",
            values=("Any state", "Arizona", "California", "Florida",
                    "Illinois", "Nevada"),
        ),
        AttributeSpec("Zip code", "text"),
        AttributeSpec(
            "Property type", "enum",
            values=("Single family", "Condo", "Townhouse", "Multi-family",
                    "Land"),
        ),
        AttributeSpec("Bedrooms", "enum", values=("1+", "2+", "3+", "4+")),
        AttributeSpec("Bathrooms", "enum", values=("1+", "2+", "3+")),
        AttributeSpec("Price", "range",
                      values=("$100,000", "$200,000", "$350,000", "$500,000",
                              "$750,000"),
                      numeric_range=(50000.0, 900000.0)),
        AttributeSpec("Square feet", "range",
                      values=("1,000", "1,500", "2,000", "3,000"),
                      numeric_range=(500.0, 5000.0)),
        AttributeSpec("Year built", "range",
                      values=("1950", "1970", "1990", "2000"),
                      numeric_range=(1900.0, 2004.0)),
        AttributeSpec(
            "Features", "enum",
            values=("Garage", "Pool", "Fireplace", "Waterfront"),
        ),
        AttributeSpec("New construction only", "flag"),
    ),
    blurbs=("Browse homes for sale in 50 states.",),
)


#: All domains, keyed by name.  The first three form the Basic/NewSource
#: pool; the remaining six form the NewDomain pool; Random samples all.
DOMAINS: dict[str, DomainSpec] = {
    domain.name: domain
    for domain in (
        BOOKS, AUTOMOBILES, AIRFARES,
        MOVIES, MUSIC, HOTELS, CAR_RENTALS, JOBS, REAL_ESTATE,
    )
}

BASIC_DOMAINS: tuple[str, ...] = ("Books", "Automobiles", "Airfares")
NEW_DOMAINS: tuple[str, ...] = (
    "Movies", "MusicRecords", "Hotels", "CarRentals", "Jobs", "RealEstates"
)
