"""Synthetic deep-Web source generator.

Produces complete HTML pages containing a query form assembled from the
pattern catalog, together with the form's ground-truth semantic model.
Generation is fully deterministic given a seed, so datasets are
reproducible across runs and machines.

Realism knobs follow the paper's observations:

* pattern choice is Zipf-distributed over the catalog's frequency ranks
  (Figure 4(b));
* a tunable fraction of sources uses one rare out-of-grammar pattern
  (grammar incompleteness, Section 5.3);
* pages carry decoration -- headings, marketing blurbs, required-field
  legends, submit/reset rows -- that the parser must see through;
* forms use either a two-column table layout or a flowing ``<br>`` layout,
  and neighbouring one-row conditions sometimes share a table row (the
  aa.com-style multi-condition row).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.domains import DomainSpec
from repro.datasets.patterns import (
    IN_GRAMMAR_PATTERNS,
    OUT_OF_GRAMMAR_PATTERNS,
    PatternSpec,
    RenderedPattern,
    zipf_weight,
)
from repro.semantics.condition import Condition


@dataclass
class GeneratedSource:
    """One synthetic deep-Web source."""

    name: str
    domain: str
    html: str
    truth: list[Condition]
    patterns_used: list[int] = field(default_factory=list)
    seed: int = 0

    def __repr__(self) -> str:
        return (
            f"<GeneratedSource {self.name} domain={self.domain} "
            f"conditions={len(self.truth)} patterns={self.patterns_used}>"
        )


@dataclass(frozen=True)
class GeneratorProfile:
    """Complexity profile of generated sources.

    Attributes:
        min_conditions / max_conditions: Range of conditions per form.
        rare_pattern_prob: Chance a source uses one out-of-grammar pattern.
        flow_layout_prob: Chance of a ``<br>``-flow layout instead of a
            two-column table.
        pair_rows_prob: Chance of merging two one-row conditions onto one
            table row.
        blurb_prob: Chance of marketing text around the form.
        extra_condition_prob: Chance of appending a generic site condition
            (sort order / results per page).
    """

    min_conditions: int = 2
    max_conditions: int = 8
    rare_pattern_prob: float = 0.30
    second_rare_prob: float = 0.35
    flow_layout_prob: float = 0.3
    pair_rows_prob: float = 0.35
    blurb_prob: float = 0.6
    extra_condition_prob: float = 0.2


#: Profile matching the paper's note that NewSource forms were simpler.
SIMPLE_PROFILE = GeneratorProfile(
    min_conditions=2, max_conditions=5, rare_pattern_prob=0.16,
)

#: Profile for randomly sampled sources (more heterogeneous).
RANDOM_PROFILE = GeneratorProfile(
    min_conditions=1, max_conditions=8, rare_pattern_prob=0.42,
    flow_layout_prob=0.4,
)


class SourceGenerator:
    """Generates query-interface pages for one domain."""

    def __init__(
        self,
        domain: DomainSpec,
        profile: GeneratorProfile | None = None,
    ):
        self.domain = domain
        self.profile = profile or GeneratorProfile()

    # -- public API -----------------------------------------------------------

    def generate(self, seed: int, name: str | None = None) -> GeneratedSource:
        """Generate one source deterministically from *seed*."""
        rng = random.Random(seed)
        profile = self.profile

        rendered, patterns_used, truth = self._pick_conditions(rng)
        use_flow = rng.random() < profile.flow_layout_prob
        body_parts: list[str] = []

        heading = f"<h2>{self.domain.name} Search</h2>"
        body_parts.append(heading)
        if self.domain.blurbs and rng.random() < profile.blurb_prob:
            body_parts.append(f"<p>{rng.choice(self.domain.blurbs)}</p>")

        form_inner = (
            self._render_flow(rendered, rng)
            if use_flow
            else self._render_table(rendered, rng)
        )
        submit_row = self._submit_row(rng)
        form = f'<form action="/search" method="get">{form_inner}{submit_row}</form>'
        body_parts.append(form)
        if rng.random() < 0.3:
            body_parts.append("<p>Results open in a new window.</p>")

        html = (
            "<html><head><title>"
            f"{self.domain.name} search</title></head><body>"
            + "".join(body_parts)
            + "</body></html>"
        )
        return GeneratedSource(
            name=name or f"{self.domain.name.lower()}-{seed}",
            domain=self.domain.name,
            html=html,
            truth=truth,
            patterns_used=patterns_used,
            seed=seed,
        )

    def generate_many(self, count: int, base_seed: int) -> list[GeneratedSource]:
        """Generate *count* sources with consecutive seeds."""
        return [self.generate(base_seed + index) for index in range(count)]

    # -- condition selection ---------------------------------------------------------

    def _pick_conditions(
        self, rng: random.Random
    ) -> tuple[list[RenderedPattern], list[int], list[Condition]]:
        profile = self.profile
        count = rng.randint(profile.min_conditions, profile.max_conditions)
        attributes = list(self.domain.attributes)
        rng.shuffle(attributes)
        chosen = attributes[:count]

        rare_budget = 0
        if rng.random() < profile.rare_pattern_prob:
            rare_budget = 2 if rng.random() < profile.second_rare_prob else 1
        rendered: list[RenderedPattern] = []
        patterns_used: list[int] = []
        truth: list[Condition] = []

        for index, spec in enumerate(chosen):
            pattern = None
            if rare_budget > 0:
                rare_options = [
                    p for p in OUT_OF_GRAMMAR_PATTERNS if p.applicable(spec)
                ]
                if rare_options:
                    pattern = rng.choice(rare_options)
                    rare_budget -= 1
            if pattern is None:
                pattern = self._zipf_choice(spec, rng)
            if pattern is None:
                continue
            occurrence = pattern.render(spec, self.domain, rng)
            occurrence.pattern_id = pattern.id
            rendered.append(occurrence)
            patterns_used.append(pattern.id)
            truth.extend(occurrence.conditions)

        if rendered and rng.random() < profile.extra_condition_prob:
            extra = self._site_condition(rng)
            rendered.append(extra)
            patterns_used.append(extra.pattern_id)
            truth.extend(extra.conditions)
        return rendered, patterns_used, truth

    @staticmethod
    def _zipf_choice(spec, rng: random.Random) -> PatternSpec | None:
        options = [p for p in IN_GRAMMAR_PATTERNS if p.applicable(spec)]
        if not options:
            return None
        weights = [zipf_weight(p.rank) for p in options]
        return rng.choices(options, weights=weights, k=1)[0]

    def _site_condition(self, rng: random.Random) -> RenderedPattern:
        """A generic site-wide condition (sort order / page size)."""
        from repro.datasets.domains import AttributeSpec
        from repro.datasets.patterns import PATTERNS_BY_ID

        if rng.random() < 0.5:
            spec = AttributeSpec(
                "Sort results by", "enum",
                values=("Best match", "Price", "Newest first"),
                field_name="sort",
            )
        else:
            spec = AttributeSpec(
                "Results per page", "enum",
                values=("10", "25", "50"),
                field_name="pagesize",
            )
        pattern = PATTERNS_BY_ID[8]  # sel-left
        occurrence = pattern.render(spec, self.domain, rng)
        occurrence.pattern_id = pattern.id
        return occurrence

    # -- layout assembly -----------------------------------------------------------

    @staticmethod
    def _render_table(
        rendered: list[RenderedPattern], rng: random.Random
    ) -> str:
        rows_html: list[str] = []
        pending_pair: tuple[str, str] | None = None
        wide = False

        # First pass decides whether any row will be paired (4 columns).
        pairable = [
            r for r in rendered if len(r.rows) == 1 and r.rows[0][0] is not None
        ]
        do_pair = len(pairable) >= 2 and rng.random() < 0.35
        paired_ids = set()
        if do_pair:
            paired_ids = {id(pairable[0]), id(pairable[1])}
            wide = True

        for occurrence in rendered:
            if occurrence.rows_html is not None:
                rows_html.append(occurrence.rows_html)
                continue
            if id(occurrence) in paired_ids:
                label, control = occurrence.rows[0]
                if pending_pair is None:
                    pending_pair = (label or "", control)
                    continue
                left_label, left_control = pending_pair
                rows_html.append(
                    f"<tr><td>{left_label}</td><td>{left_control}</td>"
                    f"<td>{label}</td><td>{control}</td></tr>"
                )
                pending_pair = None
                continue
            for label, control in occurrence.rows:
                span = 3 if wide else 1
                if label is None:
                    total = 4 if wide else 2
                    rows_html.append(
                        f'<tr><td colspan="{total}">{control}</td></tr>'
                    )
                else:
                    rows_html.append(
                        f'<tr><td>{label}</td>'
                        f'<td colspan="{span}">{control}</td></tr>'
                    )
        if pending_pair is not None:
            left_label, left_control = pending_pair
            span = 3 if wide else 1
            rows_html.append(
                f'<tr><td>{left_label}</td><td colspan="{span}">{left_control}</td></tr>'
            )
        spacing = rng.choice((2, 4, 6))
        return (
            f'<table cellspacing="{spacing}" cellpadding="2">'
            + "".join(rows_html)
            + "</table>"
        )

    @staticmethod
    def _render_flow(rendered: list[RenderedPattern], rng: random.Random) -> str:
        parts: list[str] = []
        for occurrence in rendered:
            for label, control in occurrence.rows:
                if label is None:
                    parts.append(f"{control}<br>")
                elif label:
                    parts.append(f"{label} {control}<br>")
                else:
                    parts.append(f"{control}<br>")
        return "".join(parts)

    @staticmethod
    def _submit_row(rng: random.Random) -> str:
        submit_label = rng.choice(("Search", "Search Now", "Go", "Find it"))
        parts = [f'<input type="submit" value="{submit_label}">']
        if rng.random() < 0.4:
            parts.append('<input type="reset" value="Clear">')
        return "<br>" + " ".join(parts)
