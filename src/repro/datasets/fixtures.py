"""Handcrafted fixtures modelled on the paper's running examples.

* ``QAM_HTML`` -- a books advanced-search form modelled on Figure 3(a)
  (amazon.com): author and title with radio operator lists, plus subject,
  ISBN, and publisher conditions.
* ``QAM_FRAGMENT_HTML`` -- the author+title fragment of Figure 5 whose
  token set the paper uses to quantify ambiguity (Section 4.2.1: the
  correct parse has 42 instances; brute force produces hundreds).
* ``QAA_HTML`` -- an airfare form modelled on Figure 3(b) (aa.com).
* ``QAA_VARIANT_HTML`` -- the Figure 14 variation whose lower part is
  arranged column-by-column, defeating the row-wise form patterns: parsing
  yields several partial trees, and the "number of passengers" label
  competes with "Adults" for the same selection list -- the paper's example
  of a merger-reported *conflict*.
"""

from __future__ import annotations

from repro.semantics.condition import Condition, Domain

_AUTHOR_OPS = (
    "first name/initials and last name",
    "start(s) of last name",
    "exact name",
)
_TITLE_OPS = ("title word(s)", "start(s) of title word(s)", "exact start of title")


QAM_HTML = """
<html><head><title>Books Search</title></head><body>
<h2>Advanced Search</h2>
<form action="/books-search" method="get">
<table cellspacing="4" cellpadding="2">
<tr><td><b>Author</b>:</td><td><input type="text" name="author" size="30"></td></tr>
<tr><td></td><td>
  <input type="radio" name="author_mode" value="fl" checked> first name/initials and last name
  <input type="radio" name="author_mode" value="sl"> start(s) of last name
  <input type="radio" name="author_mode" value="ex"> exact name
</td></tr>
<tr><td><b>Title</b>:</td><td><input type="text" name="title" size="30"></td></tr>
<tr><td></td><td>
  <input type="radio" name="title_mode" value="tw" checked> title word(s)
  <input type="radio" name="title_mode" value="st"> start(s) of title word(s)
  <input type="radio" name="title_mode" value="ex"> exact start of title
</td></tr>
<tr><td>Subject:</td><td><select name="subject">
  <option>All subjects</option><option>Arts</option><option>Computers</option>
  <option>Fiction</option><option>History</option></select></td></tr>
<tr><td>ISBN:</td><td><input type="text" name="isbn" size="16"></td></tr>
<tr><td>Publisher:</td><td><input type="text" name="publisher" size="24"></td></tr>
</table>
<br><input type="submit" value="Search Now">
</form>
</body></html>
"""


def qam_ground_truth() -> list[Condition]:
    """Semantic model of ``QAM_HTML`` (five conditions, as in Section 1)."""
    return [
        Condition("Author", _AUTHOR_OPS, Domain("text"), ("author",)),
        Condition("Title", _TITLE_OPS, Domain("text"), ("title",)),
        Condition(
            "Subject", ("=",),
            Domain("enum", ("All subjects", "Arts", "Computers", "Fiction",
                            "History")),
            ("subject",),
        ),
        Condition("ISBN", ("contains",), Domain("text"), ("isbn",)),
        Condition("Publisher", ("contains",), Domain("text"), ("publisher",)),
    ]


#: The Figure 5 fragment: author and title rows only (16 tokens:
#: 2 texts + 2 textboxes + 6 radios + 6 radio label texts).
QAM_FRAGMENT_HTML = """
<html><body>
<form action="/books-search">
<table cellspacing="4" cellpadding="2">
<tr><td>Author</td><td><input type="text" name="query-0" size="28"></td></tr>
<tr><td></td><td>
  <input type="radio" name="field-0" value="fl" checked> first name/initials and last name
  <input type="radio" name="field-0" value="sl"> start(s) of last name
  <input type="radio" name="field-0" value="ex"> exact name
</td></tr>
<tr><td>Title</td><td><input type="text" name="query-1" size="28"></td></tr>
<tr><td></td><td>
  <input type="radio" name="field-1" value="tw" checked> title word(s)
  <input type="radio" name="field-1" value="st"> start(s) of title word(s)
  <input type="radio" name="field-1" value="ex"> exact start of title
</td></tr>
</table>
</form>
</body></html>
"""


def qam_fragment_ground_truth() -> list[Condition]:
    """Semantic model of the Figure 5 fragment (two conditions)."""
    return [
        Condition("Author", _AUTHOR_OPS, Domain("text"), ("query-0",)),
        Condition("Title", _TITLE_OPS, Domain("text"), ("query-1",)),
    ]


_MONTH_OPTIONS = "".join(
    f"<option>{month}</option>"
    for month in ("January", "February", "March", "April", "May", "June",
                  "July", "August", "September", "October", "November",
                  "December")
)
_DAY_OPTIONS = "".join(f"<option>{day}</option>" for day in range(1, 32))


QAA_HTML = f"""
<html><head><title>Flight Search</title></head><body>
<h2>Reservations</h2>
<form action="/flights" method="get">
<table cellspacing="4" cellpadding="2">
<tr><td colspan="2">
  <input type="radio" name="triptype" value="rt" checked> Round trip
  <input type="radio" name="triptype" value="ow"> One way
</td></tr>
<tr><td>From:</td><td><input type="text" name="orig" size="18"></td>
    <td>To:</td><td><input type="text" name="dest" size="18"></td></tr>
<tr><td>Departure date:</td><td colspan="3">
  <select name="dep_m">{_MONTH_OPTIONS}</select>
  <select name="dep_d">{_DAY_OPTIONS}</select>
</td></tr>
<tr><td>Return date:</td><td colspan="3">
  <select name="ret_m">{_MONTH_OPTIONS}</select>
  <select name="ret_d">{_DAY_OPTIONS}</select>
</td></tr>
<tr><td>Passengers:</td><td colspan="3"><select name="pax">
  <option>1</option><option>2</option><option>3</option>
  <option>4</option><option>5</option><option>6</option></select></td></tr>
<tr><td>Cabin:</td><td colspan="3"><select name="cabin">
  <option>Economy</option><option>Business</option><option>First</option>
</select></td></tr>
<tr><td colspan="4"><input type="checkbox" name="nonstop" value="1"> Nonstop flights only</td></tr>
</table>
<br><input type="submit" value="Find flights">
</form>
</body></html>
"""


def qaa_ground_truth() -> list[Condition]:
    """Semantic model of ``QAA_HTML`` (eight conditions)."""
    return [
        Condition("", ("=",), Domain("enum", ("Round trip", "One way")),
                  ("triptype",)),
        Condition("From", ("contains",), Domain("text"), ("orig",)),
        Condition("To", ("contains",), Domain("text"), ("dest",)),
        Condition("Departure date", ("=",), Domain("datetime"),
                  ("dep_m", "dep_d")),
        Condition("Return date", ("=",), Domain("datetime"),
                  ("ret_m", "ret_d")),
        Condition("Passengers", ("=",),
                  Domain("enum", ("1", "2", "3", "4", "5", "6")), ("pax",)),
        Condition("Cabin", ("=",),
                  Domain("enum", ("Economy", "Business", "First")), ("cabin",)),
        Condition("", ("in",), Domain("enum", ("Nonstop flights only",)),
                  ("nonstop",)),
    ]


#: Figure 14 variation: the passenger block is arranged column-by-column
#: with the per-column labels packed onto one line above three wide
#: selects.  The labels do not align with their columns, so the label run
#: competes for both the adults and the children selects -- the parser
#: yields overlapping partial trees and the merger reports the contested
#: tokens as *conflicts*, exactly the error class the paper's Figure 14
#: example illustrates.
QAA_VARIANT_HTML = f"""
<html><head><title>Flight Search</title></head><body>
<form action="/flights" method="get">
<table cellspacing="4" cellpadding="2">
<tr><td>From:</td><td><input type="text" name="orig" size="18"></td>
    <td>To:</td><td><input type="text" name="dest" size="18"></td></tr>
<tr><td>Departure date:</td><td colspan="3">
  <select name="dep_m">{_MONTH_OPTIONS}</select>
  <select name="dep_d">{_DAY_OPTIONS}</select>
</td></tr>
</table>
<table cellspacing="2" cellpadding="0">
<tr><td>Number of passengers</td></tr>
<tr><td>Adults &nbsp; Children &nbsp; Seniors</td></tr>
<tr><td>
<select name="adults"><option>Any number</option><option>1</option>
  <option>2</option><option>3</option></select>
<select name="children"><option>Any number</option><option>0</option>
  <option>1</option></select>
<select name="seniors"><option>Any number</option><option>0</option>
  <option>1</option></select>
</td></tr>
</table>
<input type="submit" value="Find flights">
</form>
</body></html>
"""


def qaa_variant_ground_truth() -> list[Condition]:
    """Semantic model of ``QAA_VARIANT_HTML`` (six conditions)."""
    return [
        Condition("From", ("contains",), Domain("text"), ("orig",)),
        Condition("To", ("contains",), Domain("text"), ("dest",)),
        Condition("Departure date", ("=",), Domain("datetime"),
                  ("dep_m", "dep_d")),
        Condition("Adults", ("=",),
                  Domain("enum", ("Any number", "1", "2", "3")), ("adults",)),
        Condition("Children", ("=",),
                  Domain("enum", ("Any number", "0", "1")), ("children",)),
        Condition("Seniors", ("=",),
                  Domain("enum", ("Any number", "0", "1")), ("seniors",)),
    ]
