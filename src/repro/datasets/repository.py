"""Dataset assembly: the four evaluation datasets of paper Section 6.

* **Basic** -- 150 sources, 50 in each of Books, Automobiles, Airfares;
  the dataset the grammar is (notionally) derived from.
* **NewSource** -- 10 extra sources per Basic domain (30 total), generated
  with the *simple* profile: the paper observes these randomly collected
  forms were simpler than the survey's deliberately complex picks, and
  scored best.
* **NewDomain** -- 7 sources in each of six unseen domains (42 total).
* **Random** -- 30 sources sampled across all domains with the most
  heterogeneous profile (standing in for invisible-web.net sampling).

All datasets are deterministic: the same seeds produce the same pages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.domains import BASIC_DOMAINS, DOMAINS, NEW_DOMAINS
from repro.datasets.generator import (
    RANDOM_PROFILE,
    SIMPLE_PROFILE,
    GeneratedSource,
    GeneratorProfile,
    SourceGenerator,
)


@dataclass
class Dataset:
    """A named collection of generated sources."""

    name: str
    sources: list[GeneratedSource] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)

    def domains(self) -> list[str]:
        """Distinct domains present, in first-appearance order."""
        seen: dict[str, None] = {}
        for source in self.sources:
            seen.setdefault(source.domain, None)
        return list(seen)


def build_dataset(
    name: str,
    domain_counts: dict[str, int],
    base_seed: int,
    profile: GeneratorProfile | None = None,
) -> Dataset:
    """Build a dataset with *domain_counts* sources per domain."""
    sources: list[GeneratedSource] = []
    seed = base_seed
    for domain_name, count in domain_counts.items():
        generator = SourceGenerator(DOMAINS[domain_name], profile)
        for index in range(count):
            sources.append(
                generator.generate(
                    seed, name=f"{domain_name.lower()}-{index:03d}"
                )
            )
            seed += 1
    return Dataset(name=name, sources=sources)


def build_basic(sources_per_domain: int = 50) -> Dataset:
    """The Basic dataset: 3 domains x 50 sources."""
    return build_dataset(
        "Basic",
        {domain: sources_per_domain for domain in BASIC_DOMAINS},
        base_seed=1_000,
    )


def build_new_source(sources_per_domain: int = 10) -> Dataset:
    """The NewSource dataset: 10 extra (simpler) sources per Basic domain."""
    return build_dataset(
        "NewSource",
        {domain: sources_per_domain for domain in BASIC_DOMAINS},
        base_seed=2_000,
        profile=SIMPLE_PROFILE,
    )


def build_new_domain(sources_per_domain: int = 7) -> Dataset:
    """The NewDomain dataset: 7 sources in each of six unseen domains."""
    return build_dataset(
        "NewDomain",
        {domain: sources_per_domain for domain in NEW_DOMAINS},
        base_seed=3_000,
    )


def build_random(count: int = 30, seed: int = 4_000) -> Dataset:
    """The Random dataset: *count* sources sampled across all domains."""
    rng = random.Random(seed)
    domain_names = sorted(DOMAINS)
    sources: list[GeneratedSource] = []
    for index in range(count):
        domain_name = rng.choice(domain_names)
        generator = SourceGenerator(DOMAINS[domain_name], RANDOM_PROFILE)
        sources.append(
            generator.generate(seed + 1 + index, name=f"random-{index:03d}")
        )
    return Dataset(name="Random", sources=sources)


def standard_datasets(scale: float = 1.0) -> dict[str, Dataset]:
    """All four datasets at the paper's sizes (or scaled for quick runs).

    Args:
        scale: Multiplier on per-domain source counts (e.g. ``0.2`` builds a
            five-times-smaller suite for fast tests).
    """
    per_basic = max(1, round(50 * scale))
    per_new_source = max(1, round(10 * scale))
    per_new_domain = max(1, round(7 * scale))
    random_count = max(1, round(30 * scale))
    return {
        "Basic": build_basic(per_basic),
        "NewSource": build_new_source(per_new_source),
        "NewDomain": build_new_domain(per_new_domain),
        "Random": build_random(random_count),
    }
