"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``extract FILE``  -- extract a query form's semantic model from an HTML
  file (``-`` reads stdin); ``--json`` emits the serialized model,
  ``--trace`` adds per-stage pipeline spans and statistics, ``--form N``
  picks the N-th form (out-of-range indices are an error, not a guess),
  ``--resilient`` runs under the degradation ladder (always produces a
  model, reporting downgrades as warnings).
* ``evaluate``      -- run the Figure 15 evaluation over the four
  synthetic datasets (``--scale`` shrinks them for a quick look;
  ``--jobs N`` fans extraction over N worker processes (``auto`` = usable
  cores); ``--metrics out.json`` dumps aggregated pipeline counters and
  per-stage span histograms; ``--timeout``/``--retries`` set the batch
  engine's fault-tolerance knobs; ``--journal PATH`` checkpoints per-form
  outcomes and ``--resume`` replays them after a crash; ``--resilient``
  runs the degradation ladder; ``--trace`` prints the stage timing
  summary).
* ``bench``         -- time the parse stage over the standard synthetic
  corpus (``--forms N``, ``--kernel auto|vector|scalar``, ``--repeats N``
  keeps the best of N rounds; ``--profile`` or ``REPRO_BENCH_PROFILE=1``
  additionally writes a cProfile top-20 cumulative table to
  ``BENCH_profile.txt``/``--profile-out``).
* ``grammar``       -- print the derived global grammar.
* ``lint``          -- statically analyze the built-in grammars
  (``--grammar standard|example|navmenu|all``, default ``all``) and print
  every diagnostic; ``--json`` emits machine-readable reports (schema 2).
  Exits 1 when any error-severity diagnostic is found (the CI gate), 0
  otherwise.  ``--coverage`` adds the tokenizer-relative coverage matrix
  (which attribute-pattern shapes the grammar can derive);
  ``--candidate FILE.json`` runs the admission gate on a machine-proposed
  production against ``--grammar`` (exit 0 admitted, 1 rejected, 2 for an
  unusable payload); ``--explain CODE`` prints one catalogue entry.

Both ``extract`` and ``evaluate`` take the caching trio: ``--cache``
(in-memory extraction cache), ``--cache-dir DIR`` (disk-backed cache that
persists across invocations and is shared by pool workers), and
``--no-cache`` (force caching off, overriding the other two).

Bad inputs fail with a one-line structured error (``error: code=<reason>
file=<path>: <detail>``) and a distinct exit code -- 2 for an unreadable
file (or other I/O trouble), 3 for an empty input, 4 for input that is
not HTML -- never with a traceback.

Global flags: ``--log-level LEVEL`` enables structured logging to stderr,
``--log-json`` switches it to JSON lines.
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation.harness import EvaluationHarness
from repro.extractor import FormExtractor, FormNotFoundError
from repro.grammar.standard import build_standard_grammar
from repro.observability.logs import configure_logging
from repro.observability.metrics import MetricsRegistry
from repro.semantics.serialize import model_to_json


#: Exit codes for rejected inputs (0 = success; argparse usage errors
#: also exit 2, matching the unreadable-input class).
EXIT_UNREADABLE = 2
EXIT_EMPTY_INPUT = 3
EXIT_NOT_HTML = 4


def _fail(code: int, reason: str, path: str, detail: str) -> int:
    """One structured error line to stderr; returns the exit code."""
    print(f"error: code={reason} file={path}: {detail}", file=sys.stderr)
    return code


def _read_html_input(path: str) -> tuple[str | None, int]:
    """Read and validate one HTML input (``-`` = stdin).

    Returns ``(html, 0)`` on success, or ``(None, exit_code)`` after
    printing a one-line structured error: unreadable files exit 2, empty
    inputs 3, inputs with no markup at all 4.
    """
    if path == "-":
        html = sys.stdin.read()
    else:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                html = fh.read()
        except OSError as error:
            return None, _fail(
                EXIT_UNREADABLE, "unreadable", path, str(error)
            )
    if not html.strip():
        return None, _fail(
            EXIT_EMPTY_INPUT, "empty-input", path, "input is empty"
        )
    if "<" not in html:
        return None, _fail(
            EXIT_NOT_HTML, "not-html", path,
            "input contains no markup (expected HTML)",
        )
    return html, 0


def _resolve_cache(args: argparse.Namespace):
    """The ``--cache/--cache-dir/--no-cache`` trio -> (cache, cache_dir).

    ``--no-cache`` wins; ``--cache-dir`` implies caching on.
    """
    if args.no_cache:
        return None, None
    if args.cache_dir:
        return True, args.cache_dir
    if args.cache:
        return True, None
    return None, None


def _cmd_extract(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.cache import ExtractionCache

    html, code = _read_html_input(args.file)
    if html is None:
        return code
    use_cache, cache_dir = _resolve_cache(args)
    cache = None
    if cache_dir is not None:
        cache = ExtractionCache(path=Path(cache_dir) / "extraction-cache.jsonl")
    elif use_cache:
        cache = ExtractionCache()
    extractor = FormExtractor(cache=cache, resilience=args.resilient or None)
    try:
        detail = extractor.extract_detailed(html, form_index=args.form)
    except FormNotFoundError as error:
        return _fail(EXIT_UNREADABLE, "form-not-found", args.file, str(error))
    for warning in detail.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        print(model_to_json(detail.model))
    else:
        output = detail.model.describe()
        print(output if output else "(no conditions extracted)")
    if args.render:
        from repro.debug import render_parse_summary, render_tokens

        print("\n# rendered token layout:", file=sys.stderr)
        print(render_tokens(detail.tokens), file=sys.stderr)
        print("\n# parse forest:", file=sys.stderr)
        print(
            render_parse_summary(detail.parse.trees, detail.tokens),
            file=sys.stderr,
        )
    if args.trace:
        stats = detail.parse.stats
        print(
            f"\n# tokens={stats.tokens} trees={len(detail.parse.trees)} "
            f"instances={stats.instances_created} "
            f"pruned={stats.instances_pruned} "
            f"time={stats.elapsed_seconds * 1000:.1f}ms",
            file=sys.stderr,
        )
        for span in detail.trace.spans:
            counters = " ".join(
                f"{name}={value}" for name, value in sorted(span.counters.items())
            )
            print(
                f"# span {span.name}: {span.seconds * 1000:.2f}ms"
                + (f" {counters}" if counters else ""),
                file=sys.stderr,
            )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.datasets.repository import standard_datasets

    if args.resume and not args.journal:
        return _fail(
            EXIT_UNREADABLE, "usage", "-", "--resume requires --journal"
        )
    registry = MetricsRegistry()
    datasets = standard_datasets(scale=args.scale)
    use_cache, cache_dir = _resolve_cache(args)
    harness = EvaluationHarness(
        jobs=args.jobs,
        metrics=registry,
        timeout=args.timeout,
        retries=args.retries,
        cache=use_cache,
        cache_dir=cache_dir,
        journal=args.journal,
        resume=args.resume,
        resilience=args.resilient or None,
    )
    print("dataset       n     Pa      Ra    accuracy")
    for name, dataset in datasets.items():
        result = harness.evaluate(dataset)
        overall = result.overall
        print(
            f"{name:12s} {len(dataset):3d}  {overall.precision:.3f}   "
            f"{overall.recall:.3f}   {result.accuracy:.3f}"
        )
    if args.trace:
        snapshot = registry.to_dict()
        print("\n# per-stage span durations (seconds):", file=sys.stderr)
        for name, histogram in snapshot["histograms"].items():
            if not name.startswith("span.") or not name.endswith(".seconds"):
                continue
            print(
                f"# {name}: count={histogram['count']} "
                f"total={histogram['total']:.3f} mean={histogram['mean']:.5f} "
                f"max={histogram['max']:.5f}",
                file=sys.stderr,
            )
    if args.metrics:
        try:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(registry.to_json())
                fh.write("\n")
        except OSError as error:
            return _fail(
                EXIT_UNREADABLE, "unwritable", args.metrics, str(error)
            )
        print(f"# metrics written to {args.metrics}", file=sys.stderr)
    return 0


#: The grammars ``repro lint`` knows how to build, by CLI name.
def _lint_targets() -> dict:
    from repro.apps.navmenu import build_menu_grammar
    from repro.grammar.example_g import build_example_grammar

    return {
        "standard": build_standard_grammar,
        "example": build_example_grammar,
        "navmenu": build_menu_grammar,
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import analyze_grammar, explain

    if args.explain is not None:
        entry = explain(args.explain)
        if entry is None:
            return _fail(
                EXIT_UNREADABLE, "unknown-code", "-",
                f"no diagnostic code {args.explain!r} in the catalogue",
            )
        print(entry.describe())
        return 0

    if args.candidate is not None:
        return _lint_candidate(args)

    vocabulary = None
    if args.coverage:
        from repro.grammar.vocabulary import tokenizer_vocabulary

        vocabulary = tokenizer_vocabulary()

    targets = _lint_targets()
    names = list(targets) if args.grammar == "all" else [args.grammar]
    reports = []
    matrices = []
    for name in names:
        grammar = targets[name]()
        reports.append(
            analyze_grammar(grammar, name=name, vocabulary=vocabulary)
        )
        if vocabulary is not None:
            from repro.analysis import coverage_matrix

            matrices.append(coverage_matrix(grammar, vocabulary))
    if args.json:
        payload = [report.to_dict() for report in reports]
        if matrices:
            for entry_dict, matrix in zip(payload, matrices):
                entry_dict["coverage"] = matrix
        print(json.dumps(payload, indent=2))
    else:
        for index, report in enumerate(reports):
            print(report.describe())
            if matrices:
                from repro.analysis import render_coverage_matrix

                print(render_coverage_matrix(matrices[index]))
    return 1 if any(report.has_errors for report in reports) else 0


def _cmd_lint_candidate_load(path: str) -> "tuple[object | None, int]":
    """Read and parse one candidate JSON payload (``-`` = stdin)."""
    from repro.analysis import CandidateError, CandidateProduction

    try:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
    except OSError as error:
        return None, _fail(EXIT_UNREADABLE, "unreadable", path, str(error))
    try:
        return CandidateProduction.from_json(text), 0
    except CandidateError as error:
        return None, _fail(EXIT_UNREADABLE, "bad-candidate", path, str(error))


def _lint_candidate(args: argparse.Namespace) -> int:
    """``repro lint --candidate FILE``: run the admission gate.

    Exits 0 when the candidate is admitted (with or without warnings),
    1 when it is rejected, 2 when the payload itself is unusable.
    """
    from repro.analysis import admit_production, as_view

    candidate, code = _cmd_lint_candidate_load(args.candidate)
    if candidate is None:
        return code
    # The gate needs one concrete grammar; "all" means the default one.
    name = "standard" if args.grammar == "all" else args.grammar
    grammar = _lint_targets()[name]()
    report = admit_production(as_view(grammar), candidate)  # type: ignore[arg-type]
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.describe())
    return 0 if report.admitted else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench import (
        PROFILE_ENV,
        generate_token_sets,
        profile_parse,
        run_parse_bench,
        run_scale_sweep,
    )

    token_sets = generate_token_sets(args.forms)
    if args.scale:
        sweep = run_scale_sweep(token_sets, repeats=args.repeats)
        print(sweep.describe())
        return 0
    result = run_parse_bench(
        token_sets, kernel=args.kernel, repeats=args.repeats
    )
    print(result.describe())
    profile_requested = args.profile or os.environ.get(
        PROFILE_ENV, ""
    ) not in ("", "0")
    if profile_requested:
        report = profile_parse(token_sets, kernel=args.kernel)
        try:
            with open(args.profile_out, "w", encoding="utf-8") as fh:
                fh.write(report)
        except OSError as error:
            return _fail(
                EXIT_UNREADABLE, "unwritable", args.profile_out, str(error)
            )
        print(f"# profile written to {args.profile_out}", file=sys.stderr)
    return 0


def _cmd_grammar(_args: argparse.Namespace) -> int:
    grammar = build_standard_grammar()
    print(grammar.describe())
    stats = grammar.stats()
    print(
        f"\n# {stats['productions']} productions, "
        f"{stats['nonterminals']} nonterminals, "
        f"{stats['terminals']} terminals, "
        f"{stats['preferences']} preferences"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import ServerConfig, run_server

    use_cache, cache_dir = _resolve_cache(args)
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            max_queue=args.queue,
            default_deadline_seconds=args.deadline,
            max_deadline_seconds=max(args.max_deadline, args.deadline),
            # serve caches by default (the warm-hit path is the point of the
            # service); only an explicit --no-cache turns it off.
            cache=not args.no_cache,
            cache_dir=cache_dir if use_cache else None,
            cache_generation=args.cache_generation,
            drain_seconds=args.drain,
            client_max_inflight=args.client_slots,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
            max_connections=args.max_connections,
            idle_timeout_seconds=args.idle_timeout,
            header_timeout_seconds=args.header_timeout,
            body_timeout_seconds=args.body_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_seconds=args.breaker_reset,
            validate_grammar=not args.no_grammar_check,
        )
    except ValueError as error:
        return _fail(EXIT_UNREADABLE, "usage", "-", str(error))
    run_server(config)
    return 0


def _job_count(value: str) -> int | str:
    if value == "auto":
        return value
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def _add_cache_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--cache", action="store_true",
                         help="enable the in-memory extraction cache")
    command.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="directory for a disk-backed extraction cache "
                              "(persists across runs, shared by workers; "
                              "implies --cache)")
    command.add_argument("--no-cache", action="store_true",
                         help="disable extraction caching (overrides "
                              "--cache/--cache-dir)")


def _positive_seconds(value: str) -> float:
    seconds = float(value)
    if seconds <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {seconds}")
    return seconds


def _retry_count(value: str) -> int:
    retries = int(value)
    if retries < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {retries}")
    return retries


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Best-effort parsing of Web query interfaces "
        "(SIGMOD 2004 reproduction)",
    )
    parser.add_argument(
        "--log-level", default=None,
        help="enable structured logging to stderr at this level "
             "(DEBUG, INFO, WARNING, ...)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured logs as JSON lines (implies --log-level INFO)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    extract = subparsers.add_parser(
        "extract", help="extract a form's semantic model from HTML"
    )
    extract.add_argument("file", help="HTML file path, or - for stdin")
    extract.add_argument("--form", type=int, default=0,
                         help="which form on the page (default 0)")
    extract.add_argument("--json", action="store_true",
                         help="emit the serialized model as JSON")
    extract.add_argument("--trace", action="store_true",
                         help="print per-stage pipeline spans and "
                              "statistics to stderr")
    extract.add_argument("--render", action="store_true",
                         help="print an ASCII sketch of the rendered "
                              "tokens and the parse forest to stderr")
    extract.add_argument("--resilient", action="store_true",
                         help="extract under the degradation ladder: "
                              "always produce a model, reporting "
                              "downgrades as warnings")
    _add_cache_flags(extract)
    extract.set_defaults(func=_cmd_extract)

    evaluate = subparsers.add_parser(
        "evaluate", help="run the Figure 15 evaluation"
    )
    evaluate.add_argument("--scale", type=float, default=0.2,
                          help="dataset scale (1.0 = paper sizes)")
    evaluate.add_argument("--jobs", type=_job_count, default=1,
                          help="worker processes for extraction "
                               "(default 1 = serial; 'auto' = usable cores)")
    evaluate.add_argument("--metrics", metavar="PATH", default=None,
                          help="write aggregated pipeline metrics "
                               "(counters + span histograms) as JSON")
    evaluate.add_argument("--trace", action="store_true",
                          help="print the per-stage timing summary "
                               "to stderr")
    evaluate.add_argument("--timeout", type=_positive_seconds, default=None,
                          help="per-form extraction budget in seconds")
    evaluate.add_argument("--retries", type=_retry_count, default=0,
                          help="extra attempts for failed forms "
                               "(default 0)")
    evaluate.add_argument("--journal", metavar="PATH", default=None,
                          help="checkpoint per-form outcomes to this "
                               "JSONL journal")
    evaluate.add_argument("--resume", action="store_true",
                          help="replay completed forms from --journal "
                               "instead of re-extracting them")
    evaluate.add_argument("--resilient", action="store_true",
                          help="extract under the degradation ladder: "
                               "pathological forms degrade instead of "
                               "erroring")
    _add_cache_flags(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    bench = subparsers.add_parser(
        "bench", help="benchmark the parse stage on the synthetic corpus"
    )
    bench.add_argument("--forms", type=int, default=120,
                       help="corpus size (default 120, the paper's batch)")
    bench.add_argument("--kernel", default="auto",
                       choices=["auto", "vector", "scalar"],
                       help="spatial kernel to benchmark (default auto)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="rounds to run; the best wall time is "
                            "reported (default 3)")
    bench.add_argument("--scale", action="store_true",
                       help="run the pool-size scaling sweep instead: "
                            "small/x4/x16 token soups through the "
                            "kernel x compilation matrix")
    bench.add_argument("--profile", action="store_true",
                       help="also run the corpus under cProfile and write "
                            "the top-20 cumulative table "
                            "(REPRO_BENCH_PROFILE=1 does the same)")
    bench.add_argument("--profile-out", metavar="PATH",
                       default="BENCH_profile.txt",
                       help="where to write the profile table "
                            "(default BENCH_profile.txt)")
    bench.set_defaults(func=_cmd_bench)

    serve = subparsers.add_parser(
        "serve", help="run the extraction HTTP service on the warmed pool"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 asks for an ephemeral port "
                            "(default 8080)")
    serve.add_argument("--jobs", type=_job_count, default="auto",
                       help="worker processes (default 'auto' = usable "
                            "cores; 1 = no pool, in-process worker thread)")
    serve.add_argument("--queue", type=int, default=64,
                       help="max requests admitted but unfinished before "
                            "shedding with 429 (default 64)")
    serve.add_argument("--deadline", type=_positive_seconds, default=10.0,
                       help="default per-request deadline in seconds; "
                            "breaches degrade the model, not the request "
                            "(default 10)")
    serve.add_argument("--max-deadline", type=_positive_seconds, default=30.0,
                       help="ceiling on client-requested deadlines "
                            "(default 30)")
    serve.add_argument("--drain", type=_positive_seconds, default=10.0,
                       help="graceful-shutdown allowance for in-flight "
                            "requests (default 10)")
    serve.add_argument("--client-slots", type=int, default=None,
                       metavar="N",
                       help="per-client cap on concurrent admitted requests "
                            "(fairness; default: no cap)")
    serve.add_argument("--client-rate", type=_positive_seconds, default=None,
                       metavar="R",
                       help="per-client sustained admissions per second "
                            "(token bucket; default: unlimited)")
    serve.add_argument("--client-burst", type=_positive_seconds, default=10.0,
                       metavar="B",
                       help="token-bucket burst capacity per client "
                            "(default 10; only with --client-rate)")
    serve.add_argument("--max-connections", type=int, default=512,
                       help="open-socket ceiling; connections past it get a "
                            "fast 503 (default 512)")
    serve.add_argument("--idle-timeout", type=_positive_seconds, default=75.0,
                       help="close keep-alive connections idle this long "
                            "(default 75)")
    serve.add_argument("--header-timeout", type=_positive_seconds,
                       default=10.0,
                       help="budget for reading a request head; slow peers "
                            "get 408 (default 10)")
    serve.add_argument("--body-timeout", type=_positive_seconds, default=20.0,
                       help="budget for reading a request body (default 20)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="pool failures in the window that open the "
                            "circuit breaker (default 5)")
    serve.add_argument("--breaker-reset", type=_positive_seconds, default=5.0,
                       help="breaker cooldown before a half-open probe "
                            "(default 5)")
    serve.add_argument("--no-grammar-check", action="store_true",
                       help="skip the startup grammar lint (by default a "
                            "grammar with error-severity diagnostics "
                            "kills the server before the port binds)")
    serve.add_argument("--cache-generation", default=None, metavar="TAG",
                       help="explicit cache generation tag (default: the "
                            "grammar fingerprint; changing either "
                            "invalidates old cache entries logically)")
    _add_cache_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    grammar = subparsers.add_parser(
        "grammar", help="print the derived global grammar"
    )
    grammar.set_defaults(func=_cmd_grammar)

    lint = subparsers.add_parser(
        "lint", help="statically analyze the built-in grammars"
    )
    lint.add_argument(
        "--grammar", default="all",
        choices=["standard", "example", "navmenu", "all"],
        help="which grammar to lint (default: all)",
    )
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON reports "
                           "(schema 2)")
    lint.add_argument("--coverage", action="store_true",
                      help="additionally check and render the "
                           "tokenizer-relative coverage matrix "
                           "(attribute-pattern shapes vs derivability)")
    lint.add_argument("--candidate", metavar="FILE.json", default=None,
                      help="run the admission gate on a machine-proposed "
                           "production (JSON payload; '-' reads stdin) "
                           "against --grammar (default standard); exits "
                           "0 admitted / 1 rejected")
    lint.add_argument("--explain", metavar="CODE", default=None,
                      help="print the catalogue entry for one diagnostic "
                           "code (e.g. G020) and exit")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.log_json or args.log_level is not None:
        configure_logging(
            json_output=args.log_json,
            level=(args.log_level or "INFO").upper(),
        )
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
