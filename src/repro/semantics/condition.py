"""Conditions, domains, and semantic models.

The output of the form extractor (and the ground truth of the synthetic
datasets) is a :class:`SemanticModel`: a set of :class:`Condition` values,
each the paper's ``[attribute; operators; domain]`` three-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Domain:
    """The set of values a condition accepts.

    ``kind`` is one of:

    * ``"text"``  -- free-form text (a textbox/textarea);
    * ``"enum"``  -- a finite list of values (select options, radio groups,
      checkbox groups), carried in ``values``;
    * ``"range"`` -- a pair of endpoints (two inputs or two selects), whose
      allowed endpoint values (if enumerated) are carried in ``values``;
    * ``"datetime"`` -- a composite date or time (month/day/year selects).
    """

    kind: str
    values: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("text", "enum", "range", "datetime"):
            raise ValueError(f"unknown domain kind: {self.kind!r}")

    def __str__(self) -> str:
        if self.kind == "enum":
            preview = ", ".join(self.values[:4])
            if len(self.values) > 4:
                preview += ", ..."
            return "{" + preview + "}"
        return self.kind


@dataclass(frozen=True)
class Condition:
    """One query condition ``[attribute; operators; domain]``.

    Attributes:
        attribute: The queried attribute label, as presented on the form
            (e.g. ``"Author"``).
        operators: The operator/modifier choices the form offers.  A plain
            keyword box exposes the single implicit ``"contains"`` operator.
        domain: Allowed input values.
        fields: HTML control names involved, in visual order -- the handle a
            downstream form-filling client needs to actually pose a query.
        operator_bindings: ``(operator label, field, submit value)`` triples:
            how to *select* each operator when posing a query (e.g. check
            the radio named ``author_mode`` with value ``ex`` for the
            "exact name" operator).  Empty when the sole operator is
            implicit.
        value_bindings: ``(value label, field, submit value)`` triples for
            enumerated domains: how to submit each allowed value.
        field_roles: ``(field, role)`` pairs for composite conditions:
            ``lo``/``hi`` endpoints of a range, ``month``/``day``/``year``
            parts of a date.

    The binding attributes make the extracted model *actionable* -- a
    mediator can translate a user query into an HTTP submission -- while
    the evaluation matcher deliberately ignores them (they are reachable
    only through correct parsing anyway).
    """

    attribute: str
    operators: tuple[str, ...] = ("contains",)
    domain: Domain = Domain("text")
    fields: tuple[str, ...] = ()
    operator_bindings: tuple[tuple[str, str, str], ...] = ()
    value_bindings: tuple[tuple[str, str, str], ...] = ()
    field_roles: tuple[tuple[str, str], ...] = ()

    def __str__(self) -> str:
        ops = ", ".join(self.operators)
        return f"[{self.attribute}; {{{ops}}}; {self.domain}]"

    # -- binding lookups ----------------------------------------------------

    def operator_binding(self, operator: str) -> tuple[str, str] | None:
        """The ``(field, value)`` submission that selects *operator*."""
        for label, field, value in self.operator_bindings:
            if label == operator:
                return (field, value)
        return None

    def value_binding(self, label: str) -> tuple[str, str] | None:
        """The ``(field, value)`` submission for enumerated value *label*."""
        for value_label, field, value in self.value_bindings:
            if value_label == label:
                return (field, value)
        return None

    def field_for_role(self, role: str) -> str | None:
        """The field playing *role* (``lo``, ``hi``, ``month``, ...)."""
        for field, field_role in self.field_roles:
            if field_role == role:
                return field
        return None


@dataclass
class SemanticModel:
    """The extracted (or ground-truth) capability description of one form.

    Besides the conditions themselves, the model carries the extraction
    error report of the merger (paper Section 3.4): tokens claimed by more
    than one condition (*conflicts*) and tokens covered by no parse tree
    (*missing elements*).
    """

    conditions: list[Condition] = field(default_factory=list)
    conflicts: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[Condition]:
        return iter(self.conditions)

    def __len__(self) -> int:
        return len(self.conditions)

    def attributes(self) -> list[str]:
        """Attribute labels of all conditions, in order."""
        return [condition.attribute for condition in self.conditions]

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [str(condition) for condition in self.conditions]
        if self.conflicts:
            lines.append(f"! conflicts: {', '.join(self.conflicts)}")
        if self.missing:
            lines.append(f"! missing: {', '.join(self.missing)}")
        return "\n".join(lines)
