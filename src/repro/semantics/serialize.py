"""JSON (de)serialization of semantic models.

Source descriptions are the artifact mediators store and ship (the paper's
Section 1: mediation "generally relies on such source descriptions").
These functions give :class:`Condition` and :class:`SemanticModel` a
stable, versioned JSON representation with a lossless round-trip.
"""

from __future__ import annotations

import json
from typing import Any

from repro.semantics.condition import Condition, Domain, SemanticModel

#: Format version stamped into every document.
FORMAT_VERSION = 1


def condition_to_dict(condition: Condition) -> dict[str, Any]:
    """Plain-data representation of one condition."""
    data: dict[str, Any] = {
        "attribute": condition.attribute,
        "operators": list(condition.operators),
        "domain": {
            "kind": condition.domain.kind,
            "values": list(condition.domain.values),
        },
        "fields": list(condition.fields),
    }
    if condition.operator_bindings:
        data["operator_bindings"] = [
            list(binding) for binding in condition.operator_bindings
        ]
    if condition.value_bindings:
        data["value_bindings"] = [
            list(binding) for binding in condition.value_bindings
        ]
    if condition.field_roles:
        data["field_roles"] = [list(pair) for pair in condition.field_roles]
    return data


def condition_from_dict(data: dict[str, Any]) -> Condition:
    """Rebuild a condition from :func:`condition_to_dict` output."""
    domain_data = data.get("domain", {})
    return Condition(
        attribute=str(data.get("attribute", "")),
        operators=tuple(data.get("operators", ("contains",))),
        domain=Domain(
            kind=str(domain_data.get("kind", "text")),
            values=tuple(domain_data.get("values", ())),
        ),
        fields=tuple(data.get("fields", ())),
        operator_bindings=tuple(
            tuple(binding) for binding in data.get("operator_bindings", ())
        ),
        value_bindings=tuple(
            tuple(binding) for binding in data.get("value_bindings", ())
        ),
        field_roles=tuple(
            tuple(pair) for pair in data.get("field_roles", ())
        ),
    )


def model_to_dict(model: SemanticModel) -> dict[str, Any]:
    """Plain-data representation of a semantic model."""
    return {
        "format": FORMAT_VERSION,
        "conditions": [
            condition_to_dict(condition) for condition in model.conditions
        ],
        "conflicts": list(model.conflicts),
        "missing": list(model.missing),
    }


def model_from_dict(data: dict[str, Any]) -> SemanticModel:
    """Rebuild a semantic model from :func:`model_to_dict` output."""
    version = data.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r}")
    return SemanticModel(
        conditions=[
            condition_from_dict(entry) for entry in data.get("conditions", ())
        ],
        conflicts=list(data.get("conflicts", ())),
        missing=list(data.get("missing", ())),
    )


def model_to_json(model: SemanticModel, indent: int | None = 2) -> str:
    """Serialize *model* to a JSON string."""
    return json.dumps(model_to_dict(model), indent=indent, ensure_ascii=False)


def model_from_json(text: str) -> SemanticModel:
    """Parse a model serialized by :func:`model_to_json`."""
    return model_from_dict(json.loads(text))
