"""Condition matching for evaluation.

The paper measures precision and recall by comparing the extracted condition
set against a manually built semantic model.  Matching must tolerate
presentation noise (``"Author:"`` vs ``"author"``) while still catching real
extraction mistakes (wrong grouping, wrong domain, stolen operators), so the
matcher normalizes labels and compares the three tuple positions
structurally.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.semantics.condition import Condition

_PUNCT_RE = re.compile(r"[^0-9a-z$ ]+")
_WS_RE = re.compile(r"\s+")


def normalize_attribute(label: str) -> str:
    """Normalize an attribute label for comparison.

    Lower-cases, strips punctuation (trailing ``:``, parenthesised hints),
    and collapses whitespace: ``"  Author: "`` → ``"author"``.
    """
    text = label.lower()
    text = re.sub(r"\([^)]*\)", " ", text)
    text = _PUNCT_RE.sub(" ", text)
    return _WS_RE.sub(" ", text).strip()


def _normalize_values(values: tuple[str, ...]) -> frozenset[str]:
    return frozenset(normalize_attribute(value) for value in values if value.strip())


@dataclass(frozen=True)
class ConditionMatcher:
    """Decides whether an extracted condition matches a ground-truth one.

    Attributes:
        require_operators: Compare the operator sets (normalized).
        require_domain_kind: Compare ``domain.kind``.
        require_domain_values: Compare enumerated domain values as sets.
    """

    require_operators: bool = True
    require_domain_kind: bool = True
    require_domain_values: bool = True

    def matches(self, extracted: Condition, truth: Condition) -> bool:
        """True when *extracted* correctly reproduces *truth*."""
        if normalize_attribute(extracted.attribute) != normalize_attribute(
            truth.attribute
        ):
            return False
        if self.require_domain_kind and extracted.domain.kind != truth.domain.kind:
            return False
        if self.require_domain_values and _normalize_values(
            extracted.domain.values
        ) != _normalize_values(truth.domain.values):
            return False
        if self.require_operators and _normalize_values(
            extracted.operators
        ) != _normalize_values(truth.operators):
            return False
        return True

    def match_sets(
        self, extracted: list[Condition], truth: list[Condition]
    ) -> list[tuple[Condition, Condition]]:
        """Greedy one-to-one matching between the two condition lists.

        Each ground-truth condition matches at most one extracted condition
        and vice versa, so duplicated extractions cost precision rather than
        being double-counted.
        """
        pairs: list[tuple[Condition, Condition]] = []
        remaining = list(truth)
        for candidate in extracted:
            for index, target in enumerate(remaining):
                if self.matches(candidate, target):
                    pairs.append((candidate, target))
                    del remaining[index]
                    break
        return pairs


#: Matcher used by the headline experiments.
DEFAULT_MATCHER = ConditionMatcher()
