"""Semantic model of a query interface.

A query interface's semantics is the set of query *conditions* it supports;
each condition is the three-tuple ``[attribute; operators; domain]`` of
paper Section 1 (e.g. ``[author; {"first name...", "start...", "exact
name"}; text]``).  This package defines the condition model and the
matching logic the evaluation harness uses to compare extracted conditions
against ground truth.
"""

from repro.semantics.condition import Condition, Domain, SemanticModel
from repro.semantics.matching import ConditionMatcher, normalize_attribute

__all__ = [
    "Condition",
    "ConditionMatcher",
    "Domain",
    "SemanticModel",
    "normalize_attribute",
]
