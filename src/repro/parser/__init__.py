"""The best-effort parser (paper Section 5).

Working with a *derived* grammar that is inherently ambiguous and
incomplete, the parser cannot reject any input.  Instead it:

* schedules symbol instantiation with the **2P schedule graph** so that
  preference winners are generated before losers (*just-in-time pruning*,
  Section 5.2), transforming or relaxing r-edges when the graph is cyclic;
* instantiates symbols with a **fix-point** evaluation, enforcing
  preferences at the end of each symbol's instantiation and *rolling back*
  the ancestors of invalidated instances;
* finally keeps the **maximum partial trees** under token-coverage
  subsumption (Section 5.3).

:class:`ExhaustiveParser` disables the preference machinery, reproducing the
"brute-force" baseline of Section 4.2.1 used in the ablation benchmarks.
"""

from repro.parser.core import is_compiled
from repro.parser.parser import (
    BestEffortParser,
    ExhaustiveParser,
    ParseResult,
    ParserConfig,
    ParseStats,
    active_core,
    load_interpreted_core,
    use_core,
)
from repro.parser.maximization import maximal_roots
from repro.parser.schedule import (
    REdgeDecision,
    Schedule,
    ScheduleError,
    ScheduleGraph,
    build_schedule,
    build_schedule_graph,
)
from repro.parser.spatial_index import BandIndex

__all__ = [
    "BandIndex",
    "BestEffortParser",
    "ExhaustiveParser",
    "ParseResult",
    "ParserConfig",
    "ParseStats",
    "REdgeDecision",
    "Schedule",
    "ScheduleError",
    "ScheduleGraph",
    "active_core",
    "build_schedule",
    "build_schedule_graph",
    "is_compiled",
    "load_interpreted_core",
    "maximal_roots",
    "use_core",
]
