"""The 2P schedule graph (paper Section 5.2, Figures 12-13).

Just-in-time pruning needs instances generated in an order where every
preference's winner-type instances exist before the loser-type's, so that a
false instance is pruned the moment it is generated, before it breeds more
ambiguity.  The schedule graph encodes two requirements as "must run
before" edges over the grammar's symbols:

* **d-edges** (from productions): a head symbol runs after all of its
  component symbols (children-parent order).  These are mandatory; cyclic
  d-edges (other than self-recursion, which the per-symbol fix-point
  handles) make the grammar unschedulable.
* **r-edges** (from preferences): a winner symbol runs before the loser
  symbol.  These are an optimization; when an r-edge would close a cycle,
  it is *transformed* -- the winner is instead ordered before every parent
  of the loser, which still prevents false instances from breeding -- and
  if even the transformed edges close cycles, the r-edge is *relaxed*
  (dropped) and rollback compensates for the late pruning.

The graph construction itself lives in :func:`build_schedule_graph`, a
total function (it never raises) shared between the runtime scheduler
(:func:`build_schedule`) and the static analyzer
(:mod:`repro.analysis`), so the analyzer's preview of cycles,
transformations, and relaxations cannot drift from what the parser will
actually do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol

from repro.grammar.preference import Preference
from repro.grammar.production import Production

#: How an r-edge was accommodated by the greedy scheduler.
ACTION_DIRECT = "direct"
ACTION_TRANSFORMED = "transformed"
ACTION_RELAXED = "relaxed"
ACTION_SELF = "self"

#: Cap on enumerated elementary cycles (diagnostics stay readable even for
#: adversarial grammars; the cap is far above anything a real grammar hits).
MAX_REPORTED_CYCLES = 16


class SchedulableGrammar(Protocol):
    """The slice of a grammar the scheduler needs.

    Satisfied by :class:`~repro.grammar.grammar.TwoPGrammar` and by the
    analyzer's unvalidated :class:`~repro.analysis.view.GrammarView`.
    """

    @property
    def productions(self) -> tuple[Production, ...]: ...

    @property
    def preferences(self) -> tuple[Preference, ...]: ...

    def component_heads(self, symbol: str) -> set[str]: ...


class ScheduleError(ValueError):
    """Raised when the mandatory d-edges are cyclic.

    Attributes:
        cycles: Every elementary d-edge cycle found (up to
            :data:`MAX_REPORTED_CYCLES`), each a node path whose first and
            last element coincide.
    """

    def __init__(self, message: str, cycles: tuple[tuple[str, ...], ...] = ()):
        super().__init__(message)
        self.cycles = cycles


@dataclass(frozen=True)
class REdgeDecision:
    """What the greedy scheduler decided for one preference's r-edge.

    Attributes:
        preference: The preference whose r-edge was processed.
        action: One of ``"direct"`` (winner -> loser edge added),
            ``"transformed"`` (winner ordered before the loser's parents
            instead), ``"relaxed"`` (dropped; rollback compensates), or
            ``"self"`` (winner == loser; self-cycles never affect
            scheduling).
        targets: The edge targets actually added (the loser for
            ``direct``, the loser's parent heads for ``transformed``,
            empty otherwise).
        reason: Human-readable explanation for ``transformed``/``relaxed``
            decisions.
    """

    preference: Preference
    action: str
    targets: tuple[str, ...] = ()
    reason: str = ""


@dataclass
class ScheduleGraph:
    """The full schedule-graph construction record.

    Attributes:
        nodes: Production heads in declaration order.
        edges: Final "runs before" adjacency (d-edges plus the r-edges the
            greedy pass admitted).  When :attr:`cycles` is non-empty the
            adjacency holds the (cyclic) d-edges only and no r-edge was
            processed.
        cycles: Elementary d-edge cycles (empty for schedulable grammars).
        decisions: One :class:`REdgeDecision` per preference, in
            declaration order (empty when the d-edges are cyclic).
        provenance: For every edge ``(source, target)``, the production
            and preference names that put it there (diagnostics and error
            messages).
    """

    nodes: tuple[str, ...]
    edges: dict[str, set[str]] = field(default_factory=dict)
    cycles: tuple[tuple[str, ...], ...] = ()
    decisions: tuple[REdgeDecision, ...] = ()
    provenance: dict[tuple[str, str], tuple[str, ...]] = field(
        default_factory=dict
    )

    @property
    def transformed(self) -> list[Preference]:
        """Preferences whose r-edge the greedy pass transformed."""
        return [
            decision.preference
            for decision in self.decisions
            if decision.action == ACTION_TRANSFORMED
        ]

    @property
    def relaxed(self) -> list[Preference]:
        """Preferences whose r-edge the greedy pass dropped."""
        return [
            decision.preference
            for decision in self.decisions
            if decision.action == ACTION_RELAXED
        ]

    def describe_cycle(self, cycle: tuple[str, ...]) -> str:
        """Render one cycle with per-edge provenance."""
        parts: list[str] = []
        for source, target in zip(cycle, cycle[1:]):
            names = ", ".join(self.provenance.get((source, target), ()))
            arrow = f"{source} -> {target}"
            parts.append(f"{arrow} (via {names})" if names else arrow)
        return "; ".join(parts)


@dataclass
class Schedule:
    """Result of scheduling a grammar.

    Attributes:
        order: Nonterminals in instantiation order.
        transformed: Preferences whose r-edge was replaced by indirect
            r-edges to the loser's parents.
        relaxed: Preferences whose ordering could not be honoured at all;
            their pruning relies on rollback.
        edges: The final "runs before" adjacency used for the topological
            sort (useful for tests and visualization).
    """

    order: list[str]
    transformed: list[Preference] = field(default_factory=list)
    relaxed: list[Preference] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)

    def position(self, symbol: str) -> int:
        """Index of *symbol* in the instantiation order."""
        return self.order.index(symbol)


def _has_path(edges: Mapping[str, set[str]], source: str, target: str) -> bool:
    """True when *target* is reachable from *source*."""
    if source == target:
        return True
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for successor in edges.get(node, ()):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False


def _would_cycle(edges: Mapping[str, set[str]], source: str, target: str) -> bool:
    """True when adding ``source -> target`` would create a cycle."""
    return _has_path(edges, target, source)


def _elementary_cycles(
    nodes: tuple[str, ...],
    edges: Mapping[str, set[str]],
    limit: int = MAX_REPORTED_CYCLES,
) -> tuple[tuple[str, ...], ...]:
    """Enumerate elementary cycles, capped at *limit*.

    Each cycle is reported exactly once, rooted at its
    lowest-declaration-index node, as a node path ``(a, b, ..., a)``.
    """
    index = {node: position for position, node in enumerate(nodes)}

    def successors(node: str) -> list[str]:
        return sorted(edges.get(node, ()), key=lambda s: index.get(s, len(index)))

    cycles: list[tuple[str, ...]] = []
    for start in nodes:
        if len(cycles) >= limit:
            break
        path = [start]
        on_path = {start}
        pending = [iter(successors(start))]
        while pending and len(cycles) < limit:
            try:
                nxt = next(pending[-1])
            except StopIteration:
                pending.pop()
                on_path.discard(path.pop())
                continue
            if index.get(nxt, -1) < index[start]:
                continue  # rooted at an earlier node; already reported
            if nxt == start:
                cycles.append(tuple(path) + (start,))
                continue
            if nxt in on_path:
                continue
            path.append(nxt)
            on_path.add(nxt)
            pending.append(iter(successors(nxt)))
    return tuple(cycles)


def build_schedule_graph(grammar: SchedulableGrammar) -> ScheduleGraph:
    """Build the schedule graph without raising.

    Collects every d-edge (with production provenance), enumerates d-edge
    cycles, and -- when the d-edges are acyclic -- replays the greedy
    r-edge pass, recording a :class:`REdgeDecision` per preference.  Both
    :func:`build_schedule` and the static analyzer consume this single
    construction, so runtime behaviour and static preview agree by
    definition.
    """
    nodes: list[str] = []
    seen_nodes: set[str] = set()
    for production in grammar.productions:
        if production.head not in seen_nodes:
            seen_nodes.add(production.head)
            nodes.append(production.head)

    edges: dict[str, set[str]] = {node: set() for node in nodes}
    provenance: dict[tuple[str, str], tuple[str, ...]] = {}

    # d-edges: component runs before head (self-recursion handled by the
    # per-symbol fix-point, so self-edges are omitted).
    for production in grammar.productions:
        head = production.head
        for component in production.components:
            if component in seen_nodes and component != head:
                edges[component].add(head)
                key = (component, head)
                if production.name not in provenance.get(key, ()):
                    provenance[key] = provenance.get(key, ()) + (
                        production.name,
                    )

    cycles = _elementary_cycles(tuple(nodes), edges)
    if cycles:
        return ScheduleGraph(
            nodes=tuple(nodes),
            edges=edges,
            cycles=cycles,
            provenance=provenance,
        )

    # r-edges, added greedily in declaration order (paper Section 5.2).
    decisions: list[REdgeDecision] = []
    for preference in grammar.preferences:
        winner = preference.winner_symbol
        loser = preference.loser_symbol
        if winner == loser:
            # Self-cycles do not affect scheduling.
            decisions.append(REdgeDecision(preference, ACTION_SELF))
            continue
        if winner not in seen_nodes or loser not in seen_nodes:
            missing = [s for s in (winner, loser) if s not in seen_nodes]
            decisions.append(
                REdgeDecision(
                    preference,
                    ACTION_RELAXED,
                    reason="no production instantiates "
                    + " or ".join(repr(s) for s in missing),
                )
            )
            continue
        if not _would_cycle(edges, winner, loser):
            edges[winner].add(loser)
            key = (winner, loser)
            if preference.name not in provenance.get(key, ()):
                provenance[key] = provenance.get(key, ()) + (
                    f"preference {preference.name}",
                )
            decisions.append(
                REdgeDecision(preference, ACTION_DIRECT, targets=(loser,))
            )
            continue
        # Transformation: order the winner before every parent of the loser
        # instead; the loser's false instances then still cannot breed.
        parent_heads = sorted(
            head
            for head in grammar.component_heads(loser)
            if head != winner and head != loser and head in seen_nodes
        )
        if parent_heads and all(
            not _would_cycle(edges, winner, parent) for parent in parent_heads
        ):
            for parent in parent_heads:
                edges[winner].add(parent)
                key = (winner, parent)
                tag = f"preference {preference.name} (transformed)"
                if tag not in provenance.get(key, ()):
                    provenance[key] = provenance.get(key, ()) + (tag,)
            decisions.append(
                REdgeDecision(
                    preference,
                    ACTION_TRANSFORMED,
                    targets=tuple(parent_heads),
                    reason=f"direct r-edge {winner} -> {loser} closes a "
                    "cycle; winner ordered before the loser's parents "
                    "instead",
                )
            )
        else:
            if not parent_heads:
                reason = (
                    f"direct r-edge {winner} -> {loser} closes a cycle and "
                    f"{loser} has no other parent productions to transform "
                    "through"
                )
            else:
                reason = (
                    f"direct r-edge {winner} -> {loser} closes a cycle and "
                    "the transformed edges "
                    + ", ".join(f"{winner} -> {p}" for p in parent_heads)
                    + " would close cycles too"
                )
            decisions.append(
                REdgeDecision(preference, ACTION_RELAXED, reason=reason)
            )

    return ScheduleGraph(
        nodes=tuple(nodes),
        edges=edges,
        cycles=(),
        decisions=tuple(decisions),
        provenance=provenance,
    )


def build_schedule(grammar: SchedulableGrammar) -> Schedule:
    """Build the 2P schedule graph and a topological instantiation order.

    Raises:
        ScheduleError: the mandatory d-edges are cyclic.  The message
            enumerates **every** elementary cycle (up to
            :data:`MAX_REPORTED_CYCLES`) with the productions that
            contribute each edge, and the error's :attr:`ScheduleError.cycles`
            carries them structurally.
    """
    graph = build_schedule_graph(grammar)
    if graph.cycles:
        rendered = " | ".join(
            graph.describe_cycle(cycle) for cycle in graph.cycles
        )
        count = len(graph.cycles)
        suffix = "+" if count >= MAX_REPORTED_CYCLES else ""
        raise ScheduleError(
            f"d-edges are cyclic: {count}{suffix} cycle(s): {rendered}",
            cycles=graph.cycles,
        )
    order = _topological_order(list(graph.nodes), graph.edges, graph)
    return Schedule(
        order=order,
        transformed=graph.transformed,
        relaxed=graph.relaxed,
        edges=graph.edges,
    )


def _topological_order(
    nodes: list[str],
    edges: Mapping[str, set[str]],
    graph: ScheduleGraph | None = None,
) -> list[str]:
    """Kahn's algorithm, stable with respect to declaration order."""
    indegree: dict[str, int] = {node: 0 for node in nodes}
    for targets in edges.values():
        for target in targets:
            indegree[target] += 1
    ready = [node for node in nodes if indegree[node] == 0]
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for target in sorted(edges.get(node, ()), key=nodes.index):
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    if len(order) != len(nodes):  # pragma: no cover - guarded by d-edge check
        leftover = tuple(node for node in nodes if node not in order)
        cycles = _elementary_cycles(leftover, dict(edges))
        detail = (
            " | ".join(graph.describe_cycle(cycle) for cycle in cycles)
            if graph is not None and cycles
            else ", ".join(leftover)
        )
        raise ScheduleError(
            f"schedule graph is cyclic after relaxation: {detail}",
            cycles=cycles,
        )
    return order


def edge_list(edges: Mapping[str, Iterable[str]]) -> list[tuple[str, str]]:
    """Flatten an adjacency into sorted ``(source, target)`` pairs."""
    return sorted(
        (source, target)
        for source, targets in edges.items()
        for target in targets
    )
