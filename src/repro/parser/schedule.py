"""The 2P schedule graph (paper Section 5.2, Figures 12-13).

Just-in-time pruning needs instances generated in an order where every
preference's winner-type instances exist before the loser-type's, so that a
false instance is pruned the moment it is generated, before it breeds more
ambiguity.  The schedule graph encodes two requirements as "must run
before" edges over the grammar's symbols:

* **d-edges** (from productions): a head symbol runs after all of its
  component symbols (children-parent order).  These are mandatory; cyclic
  d-edges (other than self-recursion, which the per-symbol fix-point
  handles) make the grammar unschedulable.
* **r-edges** (from preferences): a winner symbol runs before the loser
  symbol.  These are an optimization; when an r-edge would close a cycle,
  it is *transformed* -- the winner is instead ordered before every parent
  of the loser, which still prevents false instances from breeding -- and
  if even the transformed edges close cycles, the r-edge is *relaxed*
  (dropped) and rollback compensates for the late pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.grammar import TwoPGrammar
from repro.grammar.preference import Preference


class ScheduleError(ValueError):
    """Raised when the mandatory d-edges are cyclic."""


@dataclass
class Schedule:
    """Result of scheduling a grammar.

    Attributes:
        order: Nonterminals in instantiation order.
        transformed: Preferences whose r-edge was replaced by indirect
            r-edges to the loser's parents.
        relaxed: Preferences whose ordering could not be honoured at all;
            their pruning relies on rollback.
        edges: The final "runs before" adjacency used for the topological
            sort (useful for tests and visualization).
    """

    order: list[str]
    transformed: list[Preference] = field(default_factory=list)
    relaxed: list[Preference] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)

    def position(self, symbol: str) -> int:
        """Index of *symbol* in the instantiation order."""
        return self.order.index(symbol)


def _has_path(edges: dict[str, set[str]], source: str, target: str) -> bool:
    """True when *target* is reachable from *source*."""
    if source == target:
        return True
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for successor in edges.get(node, ()):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False


def _would_cycle(edges: dict[str, set[str]], source: str, target: str) -> bool:
    """True when adding ``source -> target`` would create a cycle."""
    return _has_path(edges, target, source)


def build_schedule(grammar: TwoPGrammar) -> Schedule:
    """Build the 2P schedule graph and a topological instantiation order."""
    nodes: list[str] = []
    seen_nodes: set[str] = set()
    for production in grammar.productions:
        if production.head not in seen_nodes:
            seen_nodes.add(production.head)
            nodes.append(production.head)

    edges: dict[str, set[str]] = {node: set() for node in nodes}

    # d-edges: component runs before head (self-recursion handled by the
    # per-symbol fix-point, so self-edges are omitted).
    for production in grammar.productions:
        head = production.head
        for component in production.components:
            if component in seen_nodes and component != head:
                if _would_cycle(edges, component, head):
                    raise ScheduleError(
                        f"d-edges are cyclic: adding {component} -> {head} "
                        f"(production {production.name}) closes a cycle"
                    )
                edges[component].add(head)

    transformed: list[Preference] = []
    relaxed: list[Preference] = []

    # r-edges, added greedily in declaration order (paper Section 5.2).
    for preference in grammar.preferences:
        winner = preference.winner_symbol
        loser = preference.loser_symbol
        if winner == loser:
            continue  # self-cycles do not affect scheduling
        if winner not in seen_nodes or loser not in seen_nodes:
            relaxed.append(preference)
            continue
        if not _would_cycle(edges, winner, loser):
            edges[winner].add(loser)
            continue
        # Transformation: order the winner before every parent of the loser
        # instead; the loser's false instances then still cannot breed.
        parent_heads = {
            head
            for head in grammar.component_heads(loser)
            if head != winner and head != loser and head in seen_nodes
        }
        if parent_heads and all(
            not _would_cycle(edges, winner, parent) for parent in parent_heads
        ):
            for parent in parent_heads:
                edges[winner].add(parent)
            transformed.append(preference)
        else:
            relaxed.append(preference)

    order = _topological_order(nodes, edges)
    return Schedule(order=order, transformed=transformed, relaxed=relaxed, edges=edges)


def _topological_order(nodes: list[str], edges: dict[str, set[str]]) -> list[str]:
    """Kahn's algorithm, stable with respect to declaration order."""
    indegree: dict[str, int] = {node: 0 for node in nodes}
    for source, targets in edges.items():
        for target in targets:
            indegree[target] += 1
    ready = [node for node in nodes if indegree[node] == 0]
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for target in sorted(edges.get(node, ()), key=nodes.index):
            indegree[target] -= 1
            if indegree[target] == 0:
                ready.append(target)
    if len(order) != len(nodes):  # pragma: no cover - guarded by d-edge check
        raise ScheduleError("schedule graph is cyclic after relaxation")
    return order
