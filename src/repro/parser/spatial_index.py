"""Spatial banding index for candidate-pool pre-filtering.

Every spatial relation of the grammar implies *adjacency* (paper Section
4.1), so a production annotated with declarative bounds (see
:mod:`repro.grammar.production`) only ever combines instances that sit
within a bounded envelope of each other.  Instead of testing every pair in
the cartesian product, the parser buckets each symbol's instances into
horizontal *bands* (intervals of y) and fetches only the instances whose
bands intersect the query envelope -- an indexed nested-loop join over the
form's geometry.

The index is conservative by construction: a query returns exactly the
pool members satisfying the requested axis specs against the query box, so
a production constraint is never starved of a combination it would accept.
"""

from __future__ import annotations

from repro.grammar.instance import Instance
from repro.layout.box import BBox

#: Pools smaller than this are cheaper to scan than to index.
MIN_INDEXED_POOL = 8


def h_allows(spec, anchor: BBox, candidate: BBox) -> bool:
    """Does *candidate* satisfy the horizontal axis *spec* against *anchor*?

    *anchor* is the earlier component (position ``i``), *candidate* the
    later one (position ``j``); see ``AxisSpec`` for the spec forms.
    """
    if spec is None:
        return True
    if type(spec) is tuple:
        displacement = candidate.left - anchor.right
        lo, hi = spec
        if lo is not None and displacement < lo:
            return False
        return hi is None or displacement <= hi
    return anchor.horizontal_gap(candidate) <= spec


def v_allows(spec, anchor: BBox, candidate: BBox) -> bool:
    """Vertical-axis counterpart of :func:`h_allows`."""
    if spec is None:
        return True
    if type(spec) is tuple:
        displacement = candidate.top - anchor.bottom
        lo, hi = spec
        if lo is not None and displacement < lo:
            return False
        return hi is None or displacement <= hi
    return anchor.vertical_gap(candidate) <= spec


class BandIndex:
    """Y-band bucketed index over one symbol's instance pool.

    The pool is frozen at construction (the parser indexes only pools that
    cannot grow during the current fix-point).  Queries return candidates
    in ``uid`` order, matching plain pool iteration, so enumeration order
    -- and therefore parse determinism -- is unaffected by indexing.

    Each instance is stored in every band its y-span touches, so its *top*
    band is always among them; both the span-intersection query (symmetric
    specs) and the top-interval query (signed specs) therefore find every
    qualifying instance by scanning a contiguous band range.
    """

    __slots__ = ("band_height", "bands", "instances", "min_top", "max_bottom")

    def __init__(self, instances: list[Instance], band_height: float = 48.0):
        self.band_height = band_height
        self.instances = instances
        self.bands: dict[int, list[Instance]] = {}
        min_top = float("inf")
        max_bottom = float("-inf")
        for instance in instances:
            box = instance.bbox
            min_top = min(min_top, box.top)
            max_bottom = max(max_bottom, box.bottom)
            first = int(box.top // band_height)
            last = int(box.bottom // band_height)
            for band in range(first, last + 1):
                self.bands.setdefault(band, []).append(instance)
        self.min_top = min_top
        self.max_bottom = max_bottom

    def __len__(self) -> int:
        return len(self.instances)

    def near(self, box: BBox, h_spec, v_spec) -> list[Instance]:
        """Pool members satisfying both axis specs against *box*.

        Results are in ``uid`` order.  With ``v_spec`` ``None`` this
        degenerates to a filtered scan of the full pool (callers should
        prefer a vertically-constrained spec as the banding key).
        """
        if v_spec is None or not self.instances:
            candidates: list[Instance] = self.instances
        else:
            if type(v_spec) is tuple:
                # Signed: candidate.top must land in [bottom+lo, bottom+hi].
                lo, hi = v_spec
                top = self.min_top if lo is None else box.bottom + lo
                bottom = self.max_bottom if hi is None else box.bottom + hi
            else:
                # Symmetric: candidate span within v_spec of the query span.
                top = box.top - v_spec
                bottom = box.bottom + v_spec
            if top > self.max_bottom or bottom < self.min_top:
                return []
            first = int(top // self.band_height)
            last = int(bottom // self.band_height)
            if last - first + 1 >= len(self.bands):
                candidates = self.instances
            else:
                seen: set[int] = set()
                collected: list[Instance] = []
                for band in range(first, last + 1):
                    for instance in self.bands.get(band, ()):
                        if instance.uid not in seen:
                            seen.add(instance.uid)
                            collected.append(instance)
                collected.sort(key=lambda instance: instance.uid)
                candidates = collected
        return [
            instance
            for instance in candidates
            if h_allows(h_spec, box, instance.bbox)
            and v_allows(v_spec, box, instance.bbox)
        ]
