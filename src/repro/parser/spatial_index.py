"""Spatial indexing and the columnar geometry kernel.

Every spatial relation of the grammar implies *adjacency* (paper Section
4.1), so a production annotated with declarative bounds (see
:mod:`repro.grammar.production`) only ever combines instances that sit
within a bounded envelope of each other.  This module supplies two
interchangeable ways to exploit that:

* :class:`BandIndex` -- the scalar path: one symbol's instances kept in
  top-coordinate order (binary-searched with :mod:`bisect`, the stdlib
  ``searchsorted``), so a vertically-bounded query scans only the
  contiguous window of plausible rows before the exact per-pair interval
  checks run.
* :class:`GeometryTable` -- the vector path: the pool's bounding boxes
  held as parallel numpy coordinate columns (``left``/``right``/``top``/
  ``bottom``, one row per instance, row ids stable by construction), so a
  production's whole interval conjunction evaluates as a handful of
  vectorized comparisons producing one boolean mask over the entire pool
  instead of N Python predicate calls.

Both are conservative by construction and return exactly the pool members
satisfying the requested axis specs against the query box in ``uid``
(pool) order, so a production constraint is never starved of a
combination it would accept and enumeration order is identical whichever
path -- or neither -- runs.

numpy is an **optional** dependency (the ``repro[fast]`` extra): kernel
selection (:func:`resolve_kernel`) degrades ``"auto"`` to the scalar path
when it is absent, and :class:`GeometryTable` refuses construction rather
than half-working.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any, Sequence

from repro.grammar.instance import Instance
from repro.grammar.production import AxisSpec
from repro.layout.box import BBox

if TYPE_CHECKING:  # pragma: no cover - typing only
    TargetCheck = tuple[int, AxisSpec, AxisSpec]

#: Pools smaller than this are cheaper to scan than to index.
MIN_INDEXED_POOL = 8

#: Recognised kernel requests (``ParserConfig.kernel``).
KERNEL_MODES = ("auto", "vector", "scalar")

_NUMPY: Any = None
_NUMPY_PROBED = False


def _load_numpy() -> Any:
    """The numpy module, or ``None`` when not installed (probed once)."""
    global _NUMPY, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        _NUMPY_PROBED = True
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def numpy_available() -> bool:
    """True when the vectorized kernel can run in this interpreter."""
    return _load_numpy() is not None


def resolve_kernel(kernel: str) -> str:
    """Resolve a kernel request to the concrete kernel that will run.

    ``"auto"`` picks ``"vector"`` when numpy is importable and
    ``"scalar"`` otherwise; ``"vector"`` demands numpy (raising
    ``RuntimeError`` with the install hint when absent); ``"scalar"``
    always resolves to itself.
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "scalar":
        return "scalar"
    if numpy_available():
        return "vector"
    if kernel == "vector":
        raise RuntimeError(
            "kernel='vector' requires numpy, which is not installed; "
            "install the optional extra (pip install 'repro[fast]') or "
            "use kernel='auto' to fall back to the scalar path"
        )
    return "scalar"


# -- scalar axis predicates ---------------------------------------------------


def h_allows(spec: AxisSpec, anchor: BBox, candidate: BBox) -> bool:
    """Does *candidate* satisfy the horizontal axis *spec* against *anchor*?

    *anchor* is the earlier component (position ``i``), *candidate* the
    later one (position ``j``); see ``AxisSpec`` for the spec forms.
    """
    if spec is None:
        return True
    if type(spec) is tuple:
        displacement = candidate.left - anchor.right
        lo, hi = spec
        if lo is not None and displacement < lo:
            return False
        return hi is None or displacement <= hi
    return anchor.horizontal_gap(candidate) <= spec


def v_allows(spec: AxisSpec, anchor: BBox, candidate: BBox) -> bool:
    """Vertical-axis counterpart of :func:`h_allows`."""
    if spec is None:
        return True
    if type(spec) is tuple:
        displacement = candidate.top - anchor.bottom
        lo, hi = spec
        if lo is not None and displacement < lo:
            return False
        return hi is None or displacement <= hi
    return anchor.vertical_gap(candidate) <= spec


# -- the scalar band index ----------------------------------------------------


class BandIndex:
    """Sorted-column index over one symbol's frozen instance pool.

    The pool is frozen at construction (the parser indexes only pools that
    cannot grow during the current fix-point).  Rows are kept in
    ``bbox.top`` order with the tops in a parallel sorted list, so a
    vertical envelope query binary-searches (`bisect`, the stdlib
    ``searchsorted``) down to the contiguous window of rows whose spans
    can intersect it, then runs the exact axis predicates on that window
    only.  Queries return candidates in ``uid`` order, matching plain pool
    iteration, so enumeration order -- and therefore parse determinism --
    is unaffected by indexing.
    """

    __slots__ = (
        "instances",
        "_by_top",
        "_tops",
        "_max_height",
        "_min_top",
        "_max_bottom",
    )

    def __init__(self, instances: list[Instance]) -> None:
        self.instances = instances
        by_top = sorted(instances, key=lambda inst: (inst.bbox.top, inst.uid))
        self._by_top = by_top
        self._tops = [inst.bbox.top for inst in by_top]
        max_height = 0.0
        min_top = float("inf")
        max_bottom = float("-inf")
        for inst in instances:
            box = inst.bbox
            height = box.bottom - box.top
            if height > max_height:
                max_height = height
            if box.top < min_top:
                min_top = box.top
            if box.bottom > max_bottom:
                max_bottom = box.bottom
        self._max_height = max_height
        self._min_top = min_top
        self._max_bottom = max_bottom

    def __len__(self) -> int:
        return len(self.instances)

    def near(
        self, box: BBox, h_spec: AxisSpec, v_spec: AxisSpec
    ) -> list[Instance]:
        """Pool members satisfying both axis specs against *box*.

        Results are in ``uid`` order.  With ``v_spec`` ``None`` this
        degenerates to a filtered scan of the full pool (callers should
        prefer a vertically-constrained spec as the windowing key).
        """
        if v_spec is None or not self.instances:
            candidates: Sequence[Instance] = self.instances
            presorted = True
        else:
            signed = type(v_spec) is tuple
            if signed:
                # Signed: candidate.top must land in [bottom+lo, bottom+hi].
                lo, hi = v_spec  # type: ignore[misc]
                top = self._min_top if lo is None else box.bottom + lo
                bottom = self._max_bottom if hi is None else box.bottom + hi
            else:
                # Symmetric: candidate span within v_spec of the query span.
                top = box.top - v_spec  # type: ignore[operator]
                bottom = box.bottom + v_spec  # type: ignore[operator]
            if top > self._max_bottom or bottom < self._min_top:
                return []
            # Window of rows that can qualify: tops at most the envelope
            # bottom; for span-intersection queries the row's *bottom*
            # must also reach the envelope top, so widen the lower edge by
            # the tallest row in the pool.
            lower = top if signed else top - self._max_height
            first = bisect_left(self._tops, lower)
            last = bisect_right(self._tops, bottom, lo=first)
            if last - first >= len(self.instances):
                candidates = self.instances
                presorted = True
            else:
                candidates = self._by_top[first:last]
                presorted = False
        selected = [
            instance
            for instance in candidates
            if h_allows(h_spec, box, instance.bbox)
            and v_allows(v_spec, box, instance.bbox)
        ]
        if not presorted:
            selected.sort(key=lambda instance: instance.uid)
        return selected


# -- the vectorized geometry table --------------------------------------------


class GeometryTable:
    """Columnar numpy geometry for one symbol's frozen instance pool.

    One row per instance, in pool (``uid``) order; four float64 columns
    ``left``/``right``/``top``/``bottom``.  A production's spatial checks
    against a fixed candidate pool evaluate as vectorized interval
    comparisons producing one boolean mask per axis spec; the conjunction
    is materialized back to instances via the stable row ids, preserving
    pool order exactly.
    """

    __slots__ = ("instances", "left", "right", "top", "bottom")

    def __init__(self, instances: list[Instance]) -> None:
        numpy = _load_numpy()
        if numpy is None:  # pragma: no cover - guarded by resolve_kernel
            raise RuntimeError(
                "GeometryTable requires numpy (pip install 'repro[fast]')"
            )
        self.instances = instances
        count = len(instances)
        left = numpy.empty(count, dtype=numpy.float64)
        right = numpy.empty(count, dtype=numpy.float64)
        top = numpy.empty(count, dtype=numpy.float64)
        bottom = numpy.empty(count, dtype=numpy.float64)
        for row, instance in enumerate(instances):
            box = instance.bbox
            left[row] = box.left
            right[row] = box.right
            top[row] = box.top
            bottom[row] = box.bottom
        self.left = left
        self.right = right
        self.top = top
        self.bottom = bottom

    def __len__(self) -> int:
        return len(self.instances)

    # Each mask method mirrors the scalar predicate exactly (same IEEE
    # comparisons in the same orientation), so a row passes the mask iff
    # the scalar predicate accepts the corresponding instance.  The anchor
    # coordinates may be Python floats (one anchor -> a length-C mask) or
    # ``(A, 1)`` column vectors (a whole anchor pool -> an ``A x C`` mask
    # matrix); numpy broadcasting handles both identically.

    def _h_mask(
        self, spec: AxisSpec, a_left: Any, a_right: Any, numpy: Any
    ) -> Any:
        if type(spec) is tuple:
            displacement = self.left - a_right
            lo, hi = spec
            if lo is None:
                if hi is None:  # degenerate (None, None): unconstrained
                    return numpy.ones(numpy.shape(displacement), dtype=bool)
                return displacement <= hi
            mask = displacement >= lo
            if hi is not None:
                mask &= displacement <= hi
            return mask
        gap = numpy.maximum(self.left - a_right, a_left - self.right)
        numpy.maximum(gap, 0.0, out=gap)
        return gap <= spec

    def _v_mask(
        self, spec: AxisSpec, a_top: Any, a_bottom: Any, numpy: Any
    ) -> Any:
        if type(spec) is tuple:
            displacement = self.top - a_bottom
            lo, hi = spec
            if lo is None:
                if hi is None:  # degenerate (None, None): unconstrained
                    return numpy.ones(numpy.shape(displacement), dtype=bool)
                return displacement <= hi
            mask = displacement >= lo
            if hi is not None:
                mask &= displacement <= hi
            return mask
        gap = numpy.maximum(self.top - a_bottom, a_top - self.bottom)
        numpy.maximum(gap, 0.0, out=gap)
        return gap <= spec

    def select(
        self,
        checks: "tuple[TargetCheck, ...]",
        combo: "Sequence[Instance | None]",
    ) -> list[Instance]:
        """Pool members passing every ``(anchor, h_spec, v_spec)`` check.

        *combo* supplies the already-bound anchor instances by position.
        Equivalent to filtering the pool through :func:`h_allows` /
        :func:`v_allows` for every check, in one vectorized pass; results
        keep pool (``uid``) order.
        """
        numpy = _load_numpy()
        mask: Any = None
        for anchor_position, h_spec, v_spec in checks:
            anchor_instance = combo[anchor_position]
            assert anchor_instance is not None
            anchor = anchor_instance.bbox
            if h_spec is not None:
                h_mask = self._h_mask(h_spec, anchor.left, anchor.right, numpy)
                mask = h_mask if mask is None else mask & h_mask
            if v_spec is not None:
                v_mask = self._v_mask(v_spec, anchor.top, anchor.bottom, numpy)
                mask = v_mask if mask is None else mask & v_mask
        if mask is None:
            return self.instances
        instances = self.instances
        return [instances[row] for row in numpy.flatnonzero(mask)]

    def select_rows(
        self,
        checks: "tuple[TargetCheck, ...]",
        anchors: "Sequence[Instance]",
    ) -> list[list[Instance]]:
        """Batched :meth:`select`: one selection list per anchor.

        All *checks* must reference the same anchor position, bound to the
        instances of *anchors* in turn (the binary-production case, where
        every check anchors on component 0).  The whole ``A x C`` mask
        matrix is computed in one broadcast pass, amortizing the fixed
        per-call numpy cost over the entire anchor pool -- the batching
        that makes vectorization viable on the small per-form pools this
        parser sees.  ``result[row]`` equals ``select(checks, <anchors[row]>)``,
        element for element.
        """
        numpy = _load_numpy()
        count = len(anchors)
        a_left = numpy.empty((count, 1), dtype=numpy.float64)
        a_right = numpy.empty((count, 1), dtype=numpy.float64)
        a_top = numpy.empty((count, 1), dtype=numpy.float64)
        a_bottom = numpy.empty((count, 1), dtype=numpy.float64)
        for row, anchor in enumerate(anchors):
            box = anchor.bbox
            a_left[row, 0] = box.left
            a_right[row, 0] = box.right
            a_top[row, 0] = box.top
            a_bottom[row, 0] = box.bottom
        mask: Any = None
        for _, h_spec, v_spec in checks:
            if h_spec is not None:
                h_mask = self._h_mask(h_spec, a_left, a_right, numpy)
                mask = h_mask if mask is None else mask & h_mask
            if v_spec is not None:
                v_mask = self._v_mask(v_spec, a_top, a_bottom, numpy)
                mask = v_mask if mask is None else mask & v_mask
        if mask is None:
            return [self.instances] * count
        result: list[list[Instance]] = [[] for _ in range(count)]
        instances = self.instances
        rows, cols = numpy.nonzero(mask)
        # ``nonzero`` walks the matrix row-major, so columns come out
        # ascending within each row -- pool (uid) order, as required.
        for row, col in zip(rows.tolist(), cols.tolist()):
            result[row].append(instances[col])
        return result
