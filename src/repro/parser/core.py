"""The fix-point inner loop of the best-effort parser.

This module is the parser's hot core, extracted from
:mod:`repro.parser.parser` so it can be compiled ahead-of-time with mypyc
(the ``repro[compiled]`` extra / ``REPRO_COMPILE=1`` build hook in
``setup.py``).  The interpreted module is the always-available fallback --
exactly like the numpy-optional spatial kernel -- and both builds are
byte-identical in behaviour: trees, models, warnings, and every counter
match, which the 6-way equivalence net
(naive/scalar/vector x interpreted/compiled) pins.

Everything here operates on *interned* instances: each parse owns an
:class:`~repro.grammar.instance.InternTable` assigning dense ids
(``Instance.iid``) in registration order, and the bookkeeping that used to
key on the global ``uid`` serial and object sets now runs on id-keyed
arrays and bitmasks:

* the per-token winner index holds parallel ``(iids, instances)`` list
  pairs, so watermark skipping is a C-speed ``bisect`` over a plain int
  list;
* ancestry tests use :meth:`Instance.descendant_iid_mask` -- one
  arbitrary-precision int per subtree, built with ``|=`` instead of a
  hash insert per node, tested with a shift-and-mask instead of a set
  lookup;
* preference watermarks store the highest interned id seen at the last
  enforcement pass (iid order equals registration order equals uid
  order, so every ordering-dependent decision is unchanged).

Hot counters accumulate in :class:`CoreCounters` (a slotted native class
under mypyc) and are folded into ``ParseStats`` once per parse by the
orchestrating :class:`~repro.parser.parser.BestEffortParser`, which also
resolves kernels, schedules symbols, and runs maximization -- the
orchestration layer stays interpreted and swappable (see
``repro.parser.parser.use_core``).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Iterator

from repro.grammar.instance import Instance, InternTable
from repro.grammar.preference import Preference
from repro.grammar.production import Production
from repro.parser.spatial_index import (
    MIN_INDEXED_POOL,
    BandIndex,
    GeometryTable,
    _load_numpy,
    h_allows,
    v_allows,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grammar.production import AxisSpec

    TargetCheck = tuple[int, "AxisSpec", "AxisSpec"]
    GuardTick = Callable[[str], bool]

#: Cell cap for materializing the full loser x winner candidacy matrix in
#: masked enforcement.  The uint64 intermediates cost 8 bytes per cell, so
#: this bounds the transient allocation to ~16 MiB; larger (degenerate)
#: pools fall back to computing one row per alive loser instead.
_MASKED_MATRIX_CELLS = 1 << 21


def is_compiled() -> bool:
    """True when this module runs as a mypyc-compiled extension.

    The stamp behind ``ParseStats.compiled`` and the ``parse.compiled``
    trace tag -- benches and bug reports are never ambiguous about which
    binary ran.  A mypyc build replaces the module with a C extension
    whose ``__file__`` no longer points at the ``.py`` source.
    """
    return not __file__.endswith(".py")


class CoreCounters:
    """Hot-path counters for one parse.

    The integer twin of the public ``ParseStats``: the inner loop bumps
    these (native attribute stores under mypyc), and the orchestrator
    folds them into ``ParseStats`` once per parse.  Field semantics match
    ``ParseStats`` exactly.
    """

    __slots__ = (
        "instances_created",
        "instances_pruned",
        "rollback_kills",
        "preference_applications",
        "fixpoint_rounds",
        "combos_examined",
        "combos_prefiltered",
        "spatial_memo_hits",
        "symbol_truncations",
        "truncated",
        "deadline_exceeded",
    )

    def __init__(self) -> None:
        self.instances_created = 0
        self.instances_pruned = 0
        self.rollback_kills = 0
        self.preference_applications = 0
        self.fixpoint_rounds = 0
        self.combos_examined = 0
        self.combos_prefiltered = 0
        self.spatial_memo_hits = 0
        self.symbol_truncations = 0
        self.truncated = False
        self.deadline_exceeded = False


class SymbolBudget:
    """Combination allowance for one symbol's fix-point."""

    __slots__ = ("combos_left",)

    def __init__(self, combos_left: int):
        self.combos_left = combos_left


class SpatialMemo:
    """Memoized spatial evaluations for one symbol's fix-point.

    Tables are keyed on interned identities (instance ``iid`` ints plus
    the ``id`` of the production-owned check tuple, which is alive for the
    grammar's lifetime):

    * ``pairs`` -- ``(id(check), anchor_iid, candidate_iid) -> bool``
      verdicts of individual axis-envelope predicates;
    * ``bands`` -- ``(id(check), anchor_iid) -> list`` results of a
      :class:`BandIndex` query for a given anchor (the indexed pool is
      frozen for the whole fix-point, so the query result is stable);
    * ``selections`` -- ``(id(checks), *anchor_iids) -> list`` full
      :meth:`GeometryTable.select` results for one position's check tuple
      against one anchor binding (vector kernel only).

    Scoped to one symbol's fix-point: component pools are frozen for its
    duration, and discarding the memo afterwards keeps ``id()``-based keys
    safe from address reuse across symbols.
    """

    __slots__ = ("pairs", "bands", "selections")

    def __init__(self) -> None:
        self.pairs: dict[tuple[int, int, int], bool] = {}
        self.bands: dict[tuple[int, int], list[Instance]] = {}
        self.selections: dict[tuple[int, ...], list[Instance]] = {}


#: A winner-index bucket: parallel ``(iids, instances)`` lists in
#: registration order, so the watermark prefix is skipped with one
#: ``bisect_left`` over the plain int list.
Bucket = tuple[list[int], list[Instance]]


class ParseCore:
    """Per-parse mutable bookkeeping shared by the construction phases.

    Owns the parse's :class:`~repro.grammar.instance.InternTable`; every
    instance entering the parse goes through :meth:`register`, which
    interns it and maintains the symbol pools plus (for symbols that can
    win some preference) the per-token winner index.
    """

    __slots__ = (
        "table",
        "store",
        "winner_symbols",
        "winner_index",
        "masked_enforcement",
        "preference_watermark",
        "dirty_symbols",
        "instances_left",
        "combos_left",
        "compacted_at_kills",
    )

    def __init__(
        self,
        instances_left: int,
        combos_left: int,
        winner_symbols: frozenset[str] = frozenset(),
    ):
        self.table = InternTable()
        self.store: dict[str, list[Instance]] = {}
        #: Symbols that can win some preference: only their instances are
        #: token-indexed, so ``find_winner`` scans winner candidates only
        #: and ``register`` skips the reverse index for everything else.
        self.winner_symbols = winner_symbols
        self.winner_index: dict[str, dict[int, Bucket]] = {}
        #: When True every preference is enforced through vectorized
        #: coverage-mask comparisons and no token index is maintained
        #: (vector kernel with machine-word-sized masks only).
        self.masked_enforcement = False
        #: Per-preference enforcement watermark: the highest interned id
        #: registered when the preference was last enforced.  Winner/loser
        #: pairs that both predate the watermark were already tested then
        #: (preference predicates are pure functions of the immutable
        #: instance data, so a no-win verdict is permanent) and are
        #: skipped on later passes.
        self.preference_watermark: dict[int, int] = {}
        #: Symbols whose store pool currently contains dead instances --
        #: pool snapshots must filter those; clean pools can be aliased.
        self.dirty_symbols: set[str] = set()
        self.instances_left = instances_left
        self.combos_left = combos_left
        self.compacted_at_kills = 0

    @property
    def all_instances(self) -> list[Instance]:
        """Every instance registered this parse, in intern (iid) order."""
        return self.table.instances

    def register(self, instance: Instance) -> None:
        iid = self.table.add(instance)
        symbol = instance.symbol
        pool = self.store.get(symbol)
        if pool is None:
            self.store[symbol] = [instance]
        else:
            pool.append(instance)
        if symbol in self.winner_symbols:
            index = self.winner_index.get(symbol)
            if index is None:
                index = self.winner_index[symbol] = {}
            mask = instance.coverage_mask
            while mask:
                low = mask & -mask
                mask ^= low
                token_id = low.bit_length() - 1
                bucket = index.get(token_id)
                if bucket is None:
                    index[token_id] = ([iid], [instance])
                else:
                    bucket[0].append(iid)
                    bucket[1].append(instance)

    def compact(self) -> None:
        """Drop dead instances from the lookup lists.

        The intern table keeps everything (maximization and the result
        object need the dead for accounting); only the ``store`` pools and
        the winner token index -- the structures preference enforcement
        and pool snapshots iterate -- are compacted.  Relative order is
        preserved, so enumeration order and winner selection are
        unaffected.
        """
        for instances in self.store.values():
            if any(not instance.alive for instance in instances):
                instances[:] = [i for i in instances if i.alive]
        for index in self.winner_index.values():
            for token_id in list(index):
                iids, instances = index[token_id]
                if any(not instance.alive for instance in instances):
                    survivors = [i for i in instances if i.alive]
                    index[token_id] = (
                        [inst.iid for inst in survivors],
                        survivors,
                    )
        self.dirty_symbols.clear()


def maybe_compact(core: ParseCore, counters: CoreCounters) -> None:
    """Compact the lookup lists once enough instances have died.

    Amortized: a sweep costs O(live + dead) and only runs after the dead
    amount to a quarter of everything registered, so :func:`find_winner`
    and pool snapshots never scan long runs of tombstones.
    """
    kills = counters.instances_pruned + counters.rollback_kills
    dead_since = kills - core.compacted_at_kills
    if dead_since * 4 >= max(64, len(core.table)):
        core.compact()
        core.compacted_at_kills = kills


# -- phase 1: fix-point instantiation -----------------------------------------------


def instantiate_symbol(
    symbol: str,
    productions: list[Production],
    core: ParseCore,
    cap: SymbolBudget,
    counters: CoreCounters,
    tick: "GuardTick | None",
    vector: bool,
    memoize: bool,
) -> int:
    """Run one symbol's semi-naive fix-point; return #created.

    Frontier-based evaluation in the Datalog semi-naive tradition: round
    *k* only enumerates combinations containing at least one instance
    created in round *k - 1* (the frontier), so no combination is ever
    examined twice and no dedup set is needed.
    """
    store = core.store
    dirty = core.dirty_symbols
    # Pools of non-head components are frozen for the whole fix-point:
    # no other symbol is instantiated and no preference is enforced
    # until this symbol completes, so snapshot (and index) them once.
    # A store pool with no tombstones is aliased outright -- it cannot
    # mutate until this fix-point ends (only the head symbol's pool
    # grows, and compaction runs between symbols, never during one).
    fixed_pools: dict[str, list[Instance]] = {}
    for production in productions:
        for component in production.components:
            if component != symbol and component not in fixed_pools:
                pool = store.get(component)
                if pool is None:
                    fixed_pools[component] = []
                elif component in dirty:
                    fixed_pools[component] = [
                        inst for inst in pool if inst.alive
                    ]
                else:
                    fixed_pools[component] = pool
    indexes: dict[str, BandIndex] = {}
    tables: dict[str, GeometryTable] = {}
    memo = SpatialMemo() if memoize else None
    recursive = [p for p in productions if symbol in p.components]
    # The head pool grows during the fix-point, so it is always a copy.
    head_store = store.get(symbol, [])
    head_pool: list[Instance] = (
        [inst for inst in head_store if inst.alive]
        if symbol in dirty
        else list(head_store)
    )
    created_total = 0
    delta_len = 0
    first_round = True
    stop = False
    while True:
        counters.fixpoint_rounds += 1
        new_instances: list[Instance] = []
        old_len = len(head_pool) - delta_len
        for production in productions if first_round else recursive:
            plans = _round_plans(
                production, symbol, fixed_pools, head_pool, old_len,
                first_round,
            )
            for pools in plans:
                remaining = (
                    core.instances_left - created_total - len(new_instances)
                )
                if remaining <= 0:
                    counters.truncated = True
                    stop = True
                    break
                new_instances.extend(
                    _apply_seminaive(
                        production, pools, fixed_pools, indexes, tables,
                        memo, core, cap, counters, remaining, tick, vector,
                    )
                )
                if (
                    cap.combos_left <= 0
                    or core.combos_left <= 0
                    or counters.deadline_exceeded
                ):
                    counters.truncated = True
                    stop = True
                    break
            if stop:
                break
        for instance in new_instances:
            core.register(instance)
            head_pool.append(instance)
        created_total += len(new_instances)
        delta_len = len(new_instances)
        first_round = False
        if stop or not new_instances:
            return created_total


def _round_plans(
    production: Production,
    symbol: str,
    fixed_pools: dict[str, list[Instance]],
    head_pool: list[Instance],
    old_len: int,
    first_round: bool,
) -> list[list[list[Instance]]]:
    """Pool assignments enumerating this round's new combinations.

    First round: one plan over the full pools.  Later rounds: the
    frontier (instances created last round, the tail of *head_pool*)
    must appear in at least one head-component position; the standard
    semi-naive partition assigns, for each head position *d*, the
    frontier to *d*, only pre-frontier instances to head positions
    before *d*, and the full pool to head positions after *d* --
    exactly the combinations not enumerated in any earlier round, each
    exactly once.
    """
    components = production.components
    if first_round:
        return [
            [
                head_pool if component == symbol else fixed_pools[component]
                for component in components
            ]
        ]
    growing = [
        index for index, component in enumerate(components)
        if component == symbol
    ]
    old = head_pool[:old_len]
    delta = head_pool[old_len:]
    plans: list[list[list[Instance]]] = []
    for d in growing:
        pools: list[list[Instance]] = []
        for index, component in enumerate(components):
            if component != symbol:
                pools.append(fixed_pools[component])
            elif index < d:
                pools.append(old)
            elif index == d:
                pools.append(delta)
            else:
                pools.append(head_pool)
        plans.append(pools)
    return plans


def _apply_seminaive(
    production: Production,
    pools: list[list[Instance]],
    fixed_pools: dict[str, list[Instance]],
    indexes: dict[str, BandIndex],
    tables: dict[str, GeometryTable],
    memo: SpatialMemo | None,
    core: ParseCore,
    cap: SymbolBudget,
    counters: CoreCounters,
    budget: int,
    tick: "GuardTick | None",
    vector: bool,
) -> list[Instance]:
    """Apply one production over one pool plan, creating at most
    *budget* new instances."""
    for pool in pools:
        if not pool:
            return []
    created: list[Instance] = []
    try_apply = production.try_apply
    append = created.append
    # Budget counters are mirrored into locals for the duration of the
    # enumeration (one attribute store per *combination* adds up) and
    # written back in ``finally`` so a raise-mode guard's exception
    # still leaves the shared accounting exact.
    budget_left = budget
    cap_left = cap.combos_left
    core_left = core.combos_left
    examined = 0
    try:
        for combo in _combos(
            production, pools, fixed_pools, indexes, tables, memo,
            counters, vector,
        ):
            if budget_left <= 0 or cap_left <= 0 or core_left <= 0:
                counters.truncated = True
                break
            if tick is not None and tick("parse"):
                counters.truncated = True
                counters.deadline_exceeded = True
                break
            cap_left -= 1
            core_left -= 1
            examined += 1
            instance = try_apply(combo)
            if instance is not None:
                budget_left -= 1
                append(instance)
    finally:
        cap.combos_left = cap_left
        core.combos_left = core_left
        counters.combos_examined += examined
        counters.instances_created += len(created)
    return created


def _combos(
    production: Production,
    pools: list[list[Instance]],
    fixed_pools: dict[str, list[Instance]],
    indexes: dict[str, BandIndex],
    tables: dict[str, GeometryTable],
    memo: SpatialMemo | None,
    counters: CoreCounters,
    vector: bool,
) -> Iterator[tuple[Instance, ...]]:
    """Enumerate candidate combinations, pre-filtered by the
    production's declarative spatial bounds.

    Candidates at every position are visited in pool (intern) order,
    whether produced by a plain filtered scan, a :class:`BandIndex`
    query, or a vectorized :meth:`GeometryTable.select`, so the
    combination order matches the naive cartesian product with
    bound-violating combinations removed.  With *memo* set, predicate
    verdicts, band queries, and vector selections already evaluated this
    fix-point are reused instead of recomputed
    (``CoreCounters.spatial_memo_hits``); the selected candidates are
    identical either way.
    """
    components = production.components
    bounds_by_target = production.bounds_by_target
    n = len(pools)
    if n == 1:
        for instance in pools[0]:
            yield (instance,)
        return
    if not production.bounds:
        yield from itertools.product(*pools)
        return
    combo: list[Instance] = [None] * n  # type: ignore[list-item]
    # Memoization only pays off for productions with >= 3 components:
    # a pair verdict (or a band query for the same anchor) can only
    # recur when a *third* position varies between two visits; with
    # two components each anchor is visited exactly once per plan, so
    # both tables would be pure dict overhead (measured as a ~10%
    # slowdown on the standard grammar, where 2-component productions
    # dominate and contribute zero memo hits).
    pair_memo = memo if n >= 3 else None

    def candidates(position: int) -> list[Instance]:
        pool = pools[position]
        checks = bounds_by_target[position]
        if not checks:
            return pool
        # Indexed path: the pool is the frozen full pool of a fixed
        # component, large enough that indexing beats a linear scan.
        component = components[position]
        fixed = fixed_pools.get(component)
        indexable = (
            fixed is not None
            and pool is fixed
            and len(pool) >= MIN_INDEXED_POOL
        )
        if vector and indexable:
            # Columnar path: evaluate the whole check conjunction over
            # the pool as vectorized interval masks.
            table = tables.get(component)
            if table is None:
                table = tables[component] = GeometryTable(pool)
            if pair_memo is not None:
                selection_key = (id(checks),) + tuple(
                    combo[check[0]].iid for check in checks
                )
                selected = pair_memo.selections.get(selection_key)
                if selected is None:
                    selected = table.select(checks, combo)
                    pair_memo.selections[selection_key] = selected
                else:
                    counters.spatial_memo_hits += 1
            else:
                selected = table.select(checks, combo)
            counters.combos_prefiltered += len(pool) - len(selected)
            return selected
        primary = None
        if indexable:
            for check in checks:
                if check[2] is not None:  # needs a vertical bound
                    primary = check
                    break
        if primary is not None:
            index = indexes.get(component)
            if index is None:
                assert fixed is not None  # implied by ``indexable``
                index = BandIndex(fixed)
                indexes[component] = index
            anchor, h_spec, v_spec = primary
            anchor_inst = combo[anchor]
            if pair_memo is not None:
                band_key = (id(primary), anchor_inst.iid)
                banded = pair_memo.bands.get(band_key)
                if banded is None:
                    banded = index.near(anchor_inst.bbox, h_spec, v_spec)
                    pair_memo.bands[band_key] = banded
                else:
                    counters.spatial_memo_hits += 1
            else:
                banded = index.near(anchor_inst.bbox, h_spec, v_spec)
            if len(checks) > 1:
                # Build a fresh list: ``banded`` may be a memoized
                # object shared with later queries.
                selected = [
                    cand for cand in banded
                    if passes(
                        cand, checks, combo, primary, pair_memo, counters
                    )
                ]
            else:
                selected = banded
            counters.combos_prefiltered += len(pool) - len(selected)
            return selected
        selected = [
            cand for cand in pool
            if passes(cand, checks, combo, None, pair_memo, counters)
        ]
        counters.combos_prefiltered += len(pool) - len(selected)
        return selected

    def expand(position: int) -> Iterator[tuple[Instance, ...]]:
        if position == n:
            yield tuple(combo)
            return
        for candidate in candidates(position):
            combo[position] = candidate
            yield from expand(position + 1)

    if n == 2:
        # Binary productions dominate practical 2P grammars, so unroll
        # the recursive expansion into two plain loops.  Position 0
        # never carries checks (bounds require ``i < j``), and every
        # check at position 1 anchors on position 0 -- which is what
        # lets the vector kernel answer the whole plan with one
        # batched ``select_rows`` matrix instead of one ``select``
        # call per anchor.
        pool0, pool1 = pools
        checks1 = bounds_by_target[1]
        component1 = components[1]
        fixed1 = fixed_pools.get(component1)
        if (
            vector
            and checks1
            and fixed1 is not None
            and pool1 is fixed1
            and len(pool1) >= MIN_INDEXED_POOL
        ):
            table = tables.get(component1)
            if table is None:
                table = tables[component1] = GeometryTable(pool1)
            selections = table.select_rows(checks1, pool0)
            base = len(pool1)
            # Per-anchor accounting stays lazy (counted when the
            # enumeration reaches the anchor), matching the scalar
            # path under early budget breaks.
            for row, anchor in enumerate(pool0):
                selected = selections[row]
                counters.combos_prefiltered += base - len(selected)
                for candidate in selected:
                    yield (anchor, candidate)
            return
        for anchor in pool0:
            combo[0] = anchor
            for candidate in candidates(1):
                yield (anchor, candidate)
        return

    yield from expand(0)


def passes(
    candidate: Instance,
    checks: "tuple[TargetCheck, ...]",
    combo: list[Instance],
    skip: "TargetCheck | None",
    memo: SpatialMemo | None,
    counters: CoreCounters,
) -> bool:
    """Does *candidate* satisfy every axis-envelope check of *checks*?"""
    box = candidate.bbox
    for check in checks:
        if check is skip:
            continue
        anchor, h_spec, v_spec = check
        anchor_inst = combo[anchor]
        if memo is not None:
            # Checks are tuples owned by the (frozen) production and
            # instances are interned by iid, so identity keys are
            # stable for the whole fix-point this memo spans.
            pair_key = (id(check), anchor_inst.iid, candidate.iid)
            verdict = memo.pairs.get(pair_key)
            if verdict is not None:
                counters.spatial_memo_hits += 1
                if verdict:
                    continue
                return False
            other = anchor_inst.bbox
            verdict = h_allows(h_spec, other, box) and v_allows(
                v_spec, other, box
            )
            memo.pairs[pair_key] = verdict
            if not verdict:
                return False
            continue
        other = anchor_inst.bbox
        if not h_allows(h_spec, other, box):
            return False
        if not v_allows(v_spec, other, box):
            return False
    return True


# -- just-in-time pruning -------------------------------------------------------------


def enforce(
    core: ParseCore,
    pref_index: int,
    preference: Preference,
    subsume: bool,
    counters: CoreCounters,
) -> None:
    """Enforce one preference: invalidate losers, roll back ancestors.

    Winner candidates come from the incrementally-maintained
    per-winner-symbol token index (buckets in registration order), so
    each loser scans only same-token *winner-symbol* instances instead
    of every instance sharing a token.

    Enforcement is additionally *incremental* across passes: a
    winner/loser pair where both instances predate this preference's
    watermark was already tested the last time the preference ran, and
    a no-win verdict is permanent (predicates are pure, ancestry and
    coverage are immutable, and dead instances never resurrect) -- so
    old losers are only retested against winners registered since.
    """
    watermark = core.preference_watermark.get(pref_index, -1)
    core.preference_watermark[pref_index] = len(core.table) - 1
    loser_pool = core.store.get(preference.loser_symbol)
    if not loser_pool:
        return
    winner_pool = core.store.get(preference.winner_symbol)
    if not winner_pool:
        return
    if (
        0 <= watermark
        and loser_pool[-1].iid <= watermark
        and winner_pool[-1].iid <= watermark
    ):
        # Neither pool has grown since the last pass (pools are
        # iid-ordered, so the tail iid bounds everything): every
        # surviving pair was already tested then, and no-win verdicts
        # are permanent.
        return
    losers = [inst for inst in loser_pool if inst.alive]
    if not losers:
        return
    if core.masked_enforcement:
        _enforce_masked(
            preference, losers, winner_pool, watermark, counters, subsume,
            core.dirty_symbols,
        )
        return
    winners_by_token = core.winner_index.get(preference.winner_symbol)
    if not winners_by_token:
        return
    for loser in losers:
        if not loser.alive:
            continue  # may have died from an earlier rollback this pass
        min_iid = watermark + 1 if loser.iid <= watermark else 0
        if subsume:
            winner = find_subsuming_winner(
                preference, loser, winners_by_token, min_iid
            )
        else:
            winner = find_winner(
                preference, loser, winners_by_token, min_iid
            )
        if winner is not None:
            counters.preference_applications += 1
            rollback(loser, counters, core.dirty_symbols)


def _enforce_masked(
    preference: Preference,
    losers: list[Instance],
    winner_pool: list[Instance],
    watermark: int,
    counters: CoreCounters,
    subsume: bool,
    dirty: set[str],
) -> None:
    """Vectorized preference enforcement over coverage bitmasks.

    With the vector kernel no per-token winner index exists at all;
    instead the loser x winner candidacy relation is evaluated as one
    numpy boolean matrix over the ``uint64`` coverage masks -- strict
    superset for ``subsumes`` preferences (the condition itself),
    plain intersection for everything else (the shared-token join the
    token index used to provide).  A kill only depends on *whether*
    some candidate beats the loser, not on which one is found first,
    so scanning candidates in intern order instead of bucket order
    leaves the kill sequence -- and every counter -- identical to the
    scalar path's.

    Rows are only decoded for losers still alive when the scan
    reaches them: each kill rolls back whole derivation chains, so
    most rows die before their turn and their (potentially dense)
    ancestor-chain hits are never materialized.  The full loser x
    winner matrix is only materialized while it stays small;
    degenerate forms (hundreds of thousands of instances in one
    pool) instead compute each alive loser's hit row on demand,
    keeping peak memory at O(winners) regardless of pool size.
    """
    numpy = _load_numpy()
    winner_masks = numpy.fromiter(
        (candidate.coverage_mask for candidate in winner_pool),
        dtype=numpy.uint64,
        count=len(winner_pool),
    )
    hits = None
    if len(winner_pool) * len(losers) <= _MASKED_MATRIX_CELLS:
        loser_masks = numpy.fromiter(
            (loser.coverage_mask for loser in losers),
            dtype=numpy.uint64,
            count=len(losers),
        ).reshape(-1, 1)
        if subsume:
            hits = (winner_masks & loser_masks) == loser_masks
            hits &= winner_masks != loser_masks
        else:
            hits = (winner_masks & loser_masks) != 0
    uint64 = numpy.uint64
    condition = preference.condition
    criteria = preference.criteria
    for row, loser in enumerate(losers):
        if not loser.alive:  # may have died from an earlier rollback
            continue
        min_iid = watermark + 1 if loser.iid <= watermark else 0
        loser_iid = loser.iid
        loser_descendants = 0  # descendant-iid mask, decoded lazily
        if hits is not None:
            row_hits = hits[row]
        else:
            mask = uint64(loser.coverage_mask)
            if subsume:
                row_hits = (winner_masks & mask) == mask
                row_hits &= winner_masks != mask
            else:
                row_hits = (winner_masks & mask) != 0
        for col in row_hits.nonzero()[0].tolist():
            candidate = winner_pool[col]
            if candidate.iid < min_iid or not candidate.alive:
                continue
            if loser_descendants == 0:
                loser_descendants = loser.descendant_iid_mask()
            if (loser_descendants >> candidate.iid) & 1:
                continue  # the loser derives from the candidate
            candidate_descendants = candidate._descendant_iid_mask
            if candidate_descendants is None:
                candidate_descendants = candidate.descendant_iid_mask()
            if (candidate_descendants >> loser_iid) & 1:
                continue  # the candidate derives from the loser
            if not subsume and not condition(candidate, loser):
                continue
            if criteria(candidate, loser):
                counters.preference_applications += 1
                rollback(loser, counters, dirty)
                break


def find_winner(
    preference: Preference,
    loser: Instance,
    winners_by_token: dict[int, Bucket],
    min_iid: int = 0,
) -> Instance | None:
    """A live winner-type instance that beats *loser*, if any.

    *winners_by_token* holds only winner-symbol instances (indexed by
    covered token, in registration order), so sharing a bucket already
    implies sharing a token with *loser*.  Candidates with
    ``iid < min_iid`` are skipped -- the caller guarantees those pairs
    were tested (and lost) on an earlier enforcement pass.
    """
    seen: set[int] = set()
    loser_descendants = 0  # descendant-iid mask, decoded lazily
    loser_iid = loser.iid
    condition = preference.condition
    criteria = preference.criteria
    for token_id in loser.coverage:
        bucket = winners_by_token.get(token_id)
        if bucket is None:
            continue
        iids, instances = bucket
        if not iids:
            continue
        start = 0
        if min_iid > 0:
            # Buckets are iid-sorted; jump over the already-tested
            # prefix instead of filtering it one element at a time.
            start = bisect_left(iids, min_iid)
        for position in range(start, len(instances)):
            candidate = instances[position]
            candidate_iid = iids[position]
            if candidate.alive and candidate_iid not in seen:
                seen.add(candidate_iid)
                # Inlined Preference.applies(): symbols are fixed by
                # the index and the shared token by the bucket join,
                # leaving the no-composition (ancestry) test -- with
                # the loser's descendant mask hoisted out of the pair
                # loop -- and the rule's own predicates.
                if loser_descendants == 0:
                    loser_descendants = loser.descendant_iid_mask()
                if (loser_descendants >> candidate_iid) & 1:
                    continue  # the loser derives from the candidate
                candidate_descendants = candidate._descendant_iid_mask
                if candidate_descendants is None:
                    candidate_descendants = candidate.descendant_iid_mask()
                if (candidate_descendants >> loser_iid) & 1:
                    continue  # the candidate derives from the loser
                if condition(candidate, loser) and criteria(
                    candidate, loser
                ):
                    return candidate
    return None


def find_subsuming_winner(
    preference: Preference,
    loser: Instance,
    winners_by_token: dict[int, Bucket],
    min_iid: int = 0,
) -> Instance | None:
    """:func:`find_winner` specialized for ``condition is subsumes``.

    A subsuming winner covers *every* token the loser covers, so it
    appears in every one of the loser's buckets -- scanning just the
    smallest such bucket examines every possible winner exactly once
    (no dedup set needed), and an empty bucket proves no winner
    exists.  The subsumption condition itself runs as two int-mask
    operations instead of a frozenset comparison.  Which winner is
    *returned* may differ from the generic scan when several apply;
    enforcement only uses the winner's existence, so the kill set is
    identical.
    """
    bucket: Bucket | None = None
    for token_id in loser.coverage:
        candidates = winners_by_token.get(token_id)
        if candidates is None or not candidates[0]:
            return None
        if bucket is None or len(candidates[0]) < len(bucket[0]):
            bucket = candidates
    if bucket is None:
        return None
    iids, instances = bucket
    start = 0
    if min_iid > 0:
        # iid-sorted bucket: skip the watermark-cleared prefix outright.
        start = bisect_left(iids, min_iid)
    loser_mask = loser.coverage_mask
    loser_iid = loser.iid
    loser_descendants = 0  # descendant-iid mask, decoded lazily
    criteria = preference.criteria
    for position in range(start, len(instances)):
        candidate = instances[position]
        candidate_mask = candidate.coverage_mask
        if (
            candidate_mask & loser_mask == loser_mask
            and candidate_mask != loser_mask
            and candidate.alive
        ):
            if loser_descendants == 0:
                loser_descendants = loser.descendant_iid_mask()
            if (loser_descendants >> candidate.iid) & 1:
                continue
            candidate_descendants = candidate._descendant_iid_mask
            if candidate_descendants is None:
                candidate_descendants = candidate.descendant_iid_mask()
            if (candidate_descendants >> loser_iid) & 1:
                continue
            if criteria(candidate, loser):
                return candidate
    return None


def rollback(
    instance: Instance,
    counters: CoreCounters,
    dirty: set[str] | None = None,
) -> None:
    """Invalidate *instance* and every live ancestor built from it.

    *dirty* collects the symbols of killed instances so pool
    snapshots know which store lists now contain tombstones.
    """
    stack = [instance]
    first = True
    while stack:
        node = stack.pop()
        if not node.alive or node.is_terminal:
            continue
        node.alive = False
        if dirty is not None:
            dirty.add(node.symbol)
        if first:
            counters.instances_pruned += 1
            first = False
        else:
            counters.rollback_kills += 1
        stack.extend(parent for parent in node.parents if parent.alive)
