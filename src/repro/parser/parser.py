"""The best-effort parsing algorithm ``2PParser`` (paper Figure 11).

Phases:

1. **Parse construction with just-in-time pruning.**  Symbols are
   instantiated one by one in the 2P schedule order; each symbol runs a
   fix-point over its productions (handling self-recursive rules such as
   ``RBList -> RBList RBU``); at the end of each symbol's instantiation,
   every preference involving that symbol is enforced, and each invalidated
   instance is *rolled back* -- its live ancestors are invalidated too, so
   a false instance's descendants (in the derivation sense: the parents it
   helped build) never survive it.

2. **Partial-tree maximization** (``PRHandler``): keep the maximum partial
   trees under coverage subsumption.

Visual-language parsing is NP-complete in general (paper Section 5.1); a
configurable instance budget keeps pathological inputs from running away --
when the budget trips, construction stops and the trees built so far are
maximized, which is exactly the best-effort contract.

Fix-point evaluation strategies
-------------------------------

Two interchangeable evaluation modes produce identical parse forests:

* ``"seminaive"`` (default) -- *frontier-based* evaluation in the Datalog
  semi-naive tradition: round *k* of a symbol's fix-point only enumerates
  combinations containing at least one instance created in round *k - 1*
  (the frontier), so no combination is ever examined twice and no dedup
  set is needed.  Productions additionally declare conservative spatial
  ``bounds`` which, together with a per-symbol band index, pre-filter
  candidate pools down to geometrically plausible neighbours before
  :meth:`Production.try_apply` runs.
* ``"naive"`` -- the original loop: every round re-enumerates the full
  cartesian product of component pools and skips already-seen combinations
  through a ``seen_keys`` set.  Kept as the equivalence baseline (see
  ``tests/parser/test_seminaive_equivalence.py``) and for the ablation
  benchmarks.

For every grammar whose self-recursive productions use their head symbol
in at most one component position (all practical 2P grammars, including
the standard one), the two modes create instances in the *same order*, so
parse forests, statistics invariants, and merger output are identical.

The compiled core
-----------------

The hot inner loop -- instance interning, frontier-delta joins,
preference enforcement -- lives in :mod:`repro.parser.core`, a strict-mypy
module compilable ahead-of-time with mypyc (the ``repro[compiled]`` extra;
see ``setup.py``).  This module is the orchestration layer: it resolves
kernels, walks the schedule, folds the core's counters into
:class:`ParseStats`, and stamps :attr:`ParseStats.compiled` with which
build actually ran.  :func:`use_core` swaps the core implementation
process-wide (the equivalence suite runs compiled and interpreted cores
side by side in one process via :func:`load_interpreted_core`); a parser
binds its core at construction.
"""

from __future__ import annotations

import gc
import importlib.util
import itertools
import os
import sys
import time
import types
from dataclasses import dataclass, field, replace

from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import Preference, subsumes
from repro.grammar.production import Production
from repro.parser import core as _core_module
from repro.parser.core import CoreCounters, ParseCore, SymbolBudget
from repro.parser.maximization import covered_tokens, maximal_roots
from repro.parser.schedule import Schedule
from repro.parser.spatial_index import KERNEL_MODES, resolve_kernel
from repro.tokens.model import Token
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard

#: Recognised fix-point evaluation strategies.
EVALUATION_MODES = ("seminaive", "naive")

#: The core implementation new parsers bind (see :func:`use_core`).
_active_core: types.ModuleType = _core_module

#: Cache for :func:`load_interpreted_core`.
_interpreted_core: types.ModuleType | None = None


def active_core() -> types.ModuleType:
    """The :mod:`repro.parser.core` implementation new parsers bind."""
    return _active_core


def use_core(module: types.ModuleType | None) -> types.ModuleType:
    """Swap the core implementation bound by *subsequently constructed*
    parsers; return the previous one.

    ``None`` restores the default (the importable
    :mod:`repro.parser.core`, compiled when the wheel was built with
    mypyc).  Existing parsers keep the core they were constructed with --
    the equivalence suite relies on that to run compiled and interpreted
    parsers side by side in one process.
    """
    global _active_core
    previous = _active_core
    _active_core = module if module is not None else _core_module
    return previous


def load_interpreted_core() -> types.ModuleType:
    """The always-interpreted twin of :mod:`repro.parser.core`.

    On an interpreted install this is :mod:`repro.parser.core` itself.
    On a compiled install (mypyc leaves ``core.py`` next to the extension
    that shadows it) the source module is loaded under the distinct name
    ``repro.parser._interpreted_core``, so compiled and interpreted cores
    coexist in one process for differential testing.
    """
    global _interpreted_core
    if not _core_module.is_compiled():
        return _core_module
    if _interpreted_core is not None:
        return _interpreted_core
    source = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "core.py"
    )
    spec = importlib.util.spec_from_file_location(
        "repro.parser._interpreted_core", source
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules["repro.parser._interpreted_core"] = module
    spec.loader.exec_module(module)
    _interpreted_core = module
    return module


@dataclass
class ParserConfig:
    """Tunables for the parsing algorithm.

    Attributes:
        enable_preferences: When ``False``, the parser degenerates into the
            brute-force exhaustive algorithm of Section 4.2.1 (the ablation
            baseline) -- every interpretation is kept.
        max_instances: Hard budget on created instances; exceeding it stops
            construction (best-effort degradation, never an exception).
        max_combos_per_instance: Bound on candidate combinations *examined*
            per budgeted instance -- without it, a degenerate grammar can
            spend unbounded time rejecting combinations without ever
            reaching the instance budget.  The budget is accounted per
            ``parse()`` call: each symbol's fix-point may examine at most
            ``max_combos_per_instance`` combinations per instance still in
            the budget when the symbol starts, so one pathological
            production truncates *itself* instead of starving the symbols
            scheduled after it.
        evaluation: Fix-point strategy, ``"seminaive"`` (default) or
            ``"naive"`` (see module docstring).
        kernel: Spatial-kernel request: ``"auto"`` (default -- vectorized
            when numpy is importable, scalar otherwise), ``"vector"``
            (columnar numpy :class:`~repro.parser.spatial_index.GeometryTable`
            path; raises at parser construction when numpy is absent), or
            ``"scalar"`` (pure-Python
            :class:`~repro.parser.spatial_index.BandIndex` path).  Both
            kernels select identical candidates in identical order, so
            models, warnings, and all ``combos_*`` counters are
            byte-identical across kernels; only
            :attr:`ParseStats.spatial_memo_hits` may differ (the two paths
            memoize different units of work).  The kernel only affects
            semi-naive evaluation; naive mode always runs scalar.
        memoize_spatial: Memoize per-production spatial-constraint
            evaluations during a symbol's fix-point (semi-naive mode
            only).  The same ``(check, anchor, candidate)`` predicate and
            the same band-index query recur across fix-point rounds and
            pool plans; memo keys intern the instances by dense id so each
            predicate is evaluated at most once per fix-point.  Pure
            memoization: verdicts are deterministic, so candidate lists,
            combination order, and all ``combos_*`` counters are identical
            with it on or off -- hits are reported separately in
            :attr:`ParseStats.spatial_memo_hits`.
    """

    enable_preferences: bool = True
    max_instances: int = 200_000
    max_combos_per_instance: int = 60
    evaluation: str = "seminaive"
    memoize_spatial: bool = True
    kernel: str = "auto"
    #: Pause the cyclic garbage collector for the duration of each
    #: ``parse()`` call.  A parse churns tens of thousands of short-lived
    #: instances whose parent backrefs form reference cycles, so the
    #: generational collector fires dozens of times mid-parse scanning
    #: objects that are all still reachable; deferring collection to the
    #: end of the call is worth ~20% wall time and changes no result.
    #: Only toggled when the collector is enabled on entry, and always
    #: restored on exit (including on exceptions).
    pause_gc: bool = True

    def __post_init__(self) -> None:
        if self.evaluation not in EVALUATION_MODES:
            raise ValueError(
                f"unknown evaluation mode {self.evaluation!r}; "
                f"expected one of {EVALUATION_MODES}"
            )
        if self.kernel not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {KERNEL_MODES}"
            )

    @property
    def max_combos(self) -> int:
        """Whole-parse ceiling on examined combinations."""
        return self.max_instances * self.max_combos_per_instance


@dataclass
class ParseStats:
    """Counters describing one parse (used by the ablation experiments)."""

    tokens: int = 0
    #: Concrete spatial kernel this parse ran (``"vector"`` or
    #: ``"scalar"``); naive-mode parses always record ``"scalar"``.
    kernel: str = "scalar"
    #: True when the fix-point core ran as a mypyc-compiled extension
    #: (the ``repro[compiled]`` build), False on the interpreted
    #: fallback.  A stamp like :attr:`kernel`, not a counter: benches and
    #: bug reports are never ambiguous about which binary produced them.
    compiled: bool = False
    instances_created: int = 0
    instances_pruned: int = 0
    rollback_kills: int = 0
    preference_applications: int = 0
    fixpoint_rounds: int = 0
    combos_examined: int = 0
    #: Candidate components rejected by declarative spatial bounds before
    #: any combination containing them was examined (semi-naive mode only).
    combos_prefiltered: int = 0
    #: Spatial predicate/band-index evaluations answered from the
    #: per-symbol memo instead of being recomputed.  Reported separately
    #: from the ``combos_*`` counters on purpose: memoization skips
    #: *re-evaluation*, never enumeration, so the combo-reduction baseline
    #: stays comparable with memoization on or off.
    spatial_memo_hits: int = 0
    #: Symbols whose fix-point exhausted its per-symbol combination budget.
    symbol_truncations: int = 0
    truncated: bool = False
    #: True when a :class:`~repro.resilience.guard.ResourceGuard` deadline
    #: stopped construction early (a form of truncation: the partial trees
    #: built so far are still maximized and merged).
    deadline_exceeded: bool = False
    elapsed_seconds: float = 0.0
    #: Phase split of ``elapsed_seconds``: fix-point construction plus
    #: just-in-time pruning vs. partial-tree maximization.  Feeds the
    #: per-stage spans of :mod:`repro.observability`.
    construction_seconds: float = 0.0
    maximization_seconds: float = 0.0

    @property
    def instances_alive(self) -> int:
        return self.instances_created - self.instances_pruned - self.rollback_kills

    def counters(self) -> dict[str, int]:
        """The integer counters as a flat dict (trace spans, metrics)."""
        return {
            "tokens": self.tokens,
            "instances_created": self.instances_created,
            "instances_pruned": self.instances_pruned,
            "rollback_kills": self.rollback_kills,
            "preference_applications": self.preference_applications,
            "fixpoint_rounds": self.fixpoint_rounds,
            "combos_examined": self.combos_examined,
            "combos_prefiltered": self.combos_prefiltered,
            "spatial_memo_hits": self.spatial_memo_hits,
            "symbol_truncations": self.symbol_truncations,
            "truncated": int(self.truncated),
            "deadline_exceeded": int(self.deadline_exceeded),
        }

    def absorb(self, counters: CoreCounters) -> None:
        """Fold one parse's :class:`CoreCounters` into this record."""
        self.instances_created = counters.instances_created
        self.instances_pruned = counters.instances_pruned
        self.rollback_kills = counters.rollback_kills
        self.preference_applications = counters.preference_applications
        self.fixpoint_rounds = counters.fixpoint_rounds
        self.combos_examined = counters.combos_examined
        self.combos_prefiltered = counters.combos_prefiltered
        self.spatial_memo_hits = counters.spatial_memo_hits
        self.symbol_truncations = counters.symbol_truncations
        self.truncated = self.truncated or counters.truncated
        self.deadline_exceeded = (
            self.deadline_exceeded or counters.deadline_exceeded
        )


@dataclass
class ParseResult:
    """Output of one parse: maximal partial trees plus bookkeeping."""

    trees: list[Instance]
    tokens: list[Token]
    instances: list[Instance] = field(default_factory=list)
    stats: ParseStats = field(default_factory=ParseStats)

    @property
    def covered(self) -> frozenset[int]:
        """Token ids covered by the maximal trees."""
        return covered_tokens(self.trees)

    @property
    def uncovered_tokens(self) -> list[Token]:
        """Tokens no maximal tree interprets (the merger's "missing")."""
        covered = self.covered
        return [token for token in self.tokens if token.id not in covered]

    @property
    def is_complete(self) -> bool:
        """True when a single tree covers every token."""
        return len(self.trees) == 1 and len(self.covered) == len(self.tokens)

    def complete_parses(self, start_symbol: str = "QI") -> list[Instance]:
        """All start-symbol instances covering every token.

        In exhaustive mode each is one alternative complete interpretation
        (the paper counts 25 such parse trees for the Figure 5 fragment);
        in best-effort mode at most the surviving ones remain.
        """
        everything = frozenset(token.id for token in self.tokens)
        return [
            instance
            for instance in self.instances
            if instance.symbol == start_symbol and instance.coverage == everything
        ]

    def temporary_instances(self) -> list[Instance]:
        """Instances that ended up in no maximal tree (paper Section 4.2.1).

        These are the "temporary instances" whose proliferation the
        just-in-time pruning exists to control.
        """
        useful: set[int] = set()
        for tree in self.trees:
            for node in tree.descendants():
                useful.add(node.uid)
        return [
            instance
            for instance in self.instances
            if instance.uid not in useful and not instance.is_terminal
        ]


class BestEffortParser:
    """Parser for a 2P grammar over visual tokens.

    Args:
        grammar: The 2P grammar to parse with.
        config: Parser tunables (see :class:`ParserConfig`).
        validate_grammar: When ``True``, run the static analyzer
            (:func:`repro.analysis.analyze_grammar`) on *grammar* and
            raise :class:`~repro.analysis.GrammarDiagnosticsError` if any
            error-severity diagnostic is found -- fast-fail instead of
            silently parsing worse.  Off by default: the analyzer is
            imported lazily, so the default path carries zero overhead.
    """

    def __init__(
        self,
        grammar: TwoPGrammar,
        config: ParserConfig | None = None,
        validate_grammar: bool = False,
    ):
        from repro.grammar.cache import cached_schedule

        if validate_grammar:
            from repro.analysis import analyze_grammar

            analyze_grammar(grammar).raise_if_errors()
        self.grammar = grammar
        self.config = config or ParserConfig()
        #: The concrete kernel (``"vector"``/``"scalar"``) this parser
        #: runs -- resolved once at construction so a ``"vector"`` request
        #: without numpy fails here, not mid-parse.
        self.kernel: str = resolve_kernel(self.config.kernel)
        #: The fix-point core implementation this parser runs -- bound at
        #: construction (see :func:`use_core`), so a parser's behaviour is
        #: fixed even if the process-wide default is swapped later.
        self._core = active_core()
        self.schedule: Schedule = cached_schedule(grammar)
        self._winner_symbols = frozenset(
            preference.winner_symbol for preference in grammar.preferences
        )
        #: Stable per-grammar preference ordinals key the core's
        #: enforcement watermarks (a compiled module cannot rely on
        #: ``id()`` stability the way the old in-class code did).
        ordinals = {
            id(preference): ordinal
            for ordinal, preference in enumerate(grammar.preferences)
        }
        #: ``grammar.preferences_involving`` rebuilt per call scans every
        #: preference; the schedule's symbol set is fixed, so snapshot per
        #: symbol once: ``(ordinal, preference, subsume fast path?)``.
        #: Preferences whose condition is the well-known ``subsumes``
        #: predicate get the dedicated enforcement fast path (see
        #: :func:`repro.parser.core.find_subsuming_winner`).
        self._preferences_by_symbol: dict[
            str, tuple[tuple[int, Preference, bool], ...]
        ] = {
            symbol: tuple(
                (
                    ordinals[id(preference)],
                    preference,
                    preference.condition is subsumes,
                )
                for preference in grammar.preferences_involving(symbol)
            )
            for symbol in self.schedule.order
        }

    # -- public API -------------------------------------------------------------

    def parse(
        self, tokens: list[Token], guard: ResourceGuard | None = None
    ) -> ParseResult:
        """Parse *tokens* into maximum partial trees (never raises on input).

        A degrade-mode *guard* deadline behaves exactly like budget
        exhaustion: construction stops at a clean point, the trees built
        so far are maximized, and ``stats.deadline_exceeded`` is set
        alongside ``stats.truncated``.  (A raise-mode guard propagates
        ``BudgetExceeded`` instead -- an explicit caller opt-out of the
        never-raises contract.)
        """
        core = self._core
        started = time.perf_counter()
        stats = ParseStats(tokens=len(tokens), compiled=core.is_compiled())
        if self.config.evaluation == "seminaive":
            stats.kernel = self.kernel
        combos_budget = self.config.max_combos
        if guard is not None and guard.limits.max_combos is not None:
            combos_budget = min(combos_budget, guard.limits.max_combos)
        # Mask-based preference enforcement needs every coverage mask to
        # fit a numpy ``uint64``, i.e. all token ids below 64 -- true for
        # every realistic form, checked explicitly so hand-built token
        # streams with large ids fall back to the per-token winner index.
        # When it applies, the per-token winner index is never built at
        # all (``winner_symbols`` empty), which removes one index insert
        # per covered token per winner-symbol instance from the hot path.
        masked = self.kernel == "vector" and all(
            token.id < 64 for token in tokens
        )
        state = core.ParseCore(
            instances_left=self.config.max_instances,
            combos_left=combos_budget,
            winner_symbols=(
                frozenset() if masked else self._winner_symbols
            ),
        )
        state.masked_enforcement = masked
        counters = core.CoreCounters()
        gc_paused = self.config.pause_gc and gc.isenabled()
        if gc_paused:
            gc.disable()
        try:
            for token in tokens:
                state.register(Instance.for_token(token))

            for symbol in self.schedule.order:
                if guard is not None and guard.over_deadline("parse"):
                    counters.truncated = True
                    counters.deadline_exceeded = True
                    break
                created = self._instantiate(symbol, state, counters, guard)
                state.instances_left -= created
                exhausted = (
                    state.instances_left <= 0
                    or state.combos_left <= 0
                    or counters.deadline_exceeded
                )
                if exhausted:
                    counters.truncated = True
                if self.config.enable_preferences:
                    for ordinal, preference, subsume in (
                        self._preferences_by_symbol.get(symbol, ())
                    ):
                        core.enforce(
                            state, ordinal, preference, subsume, counters
                        )
                    core.maybe_compact(state, counters)
                if exhausted:
                    break

            construction_done = time.perf_counter()
            stats.construction_seconds = construction_done - started
            trees = maximal_roots(state.all_instances)
            stats.maximization_seconds = time.perf_counter() - construction_done
        finally:
            if gc_paused:
                gc.enable()
        stats.absorb(counters)
        stats.elapsed_seconds = time.perf_counter() - started
        return ParseResult(
            trees=trees,
            tokens=tokens,
            instances=state.all_instances,
            stats=stats,
        )

    # -- phase 1: fix-point instantiation ------------------------------------------

    def _instantiate(
        self,
        symbol: str,
        state: ParseCore,
        counters: CoreCounters,
        guard: ResourceGuard | None = None,
    ) -> int:
        """Run ``instantiate(A)`` (paper Figure 11); return #created."""
        productions = self.grammar.productions_for(symbol)
        if not productions:
            return 0
        core = self._core
        # Per-symbol combination allowance: proportional to the instance
        # budget remaining for this parse, so a pathological production
        # cannot burn the combination budget owed to later symbols.
        cap: SymbolBudget = core.SymbolBudget(
            self.config.max_combos_per_instance * max(1, state.instances_left)
        )
        if self.config.evaluation == "naive":
            created = self._instantiate_naive(
                symbol, productions, state, cap, counters, guard
            )
        else:
            created = core.instantiate_symbol(
                symbol,
                productions,
                state,
                cap,
                counters,
                guard.tick if guard is not None else None,
                self.kernel == "vector",
                self.config.memoize_spatial,
            )
        if cap.combos_left <= 0:
            counters.symbol_truncations += 1
        return created

    # -- naive baseline (the original loop, kept for equivalence) -------------------

    def _instantiate_naive(
        self,
        symbol: str,
        productions: list[Production],
        state: ParseCore,
        cap: SymbolBudget,
        counters: CoreCounters,
        guard: ResourceGuard | None = None,
    ) -> int:
        """The original fix-point: full cartesian re-enumeration each round
        with a ``seen_keys`` dedup set and no spatial pre-filtering."""
        seen_keys: set[tuple[str, tuple[int, ...]]] = set()
        created_total = 0
        stop = False
        while True:
            counters.fixpoint_rounds += 1
            new_instances: list[Instance] = []
            for production in productions:
                remaining = (
                    state.instances_left - created_total - len(new_instances)
                )
                if remaining <= 0:
                    counters.truncated = True
                    stop = True
                    break
                new_instances.extend(
                    self._apply_naive(
                        production, state, seen_keys, cap, counters,
                        remaining, guard,
                    )
                )
                if (
                    cap.combos_left <= 0
                    or state.combos_left <= 0
                    or counters.deadline_exceeded
                ):
                    counters.truncated = True
                    stop = True
                    break
            for instance in new_instances:
                state.register(instance)
            created_total += len(new_instances)
            if stop or not new_instances:
                return created_total

    def _apply_naive(
        self,
        production: Production,
        state: ParseCore,
        seen_keys: set[tuple[str, tuple[int, ...]]],
        cap: SymbolBudget,
        counters: CoreCounters,
        budget: int,
        guard: ResourceGuard | None = None,
    ) -> list[Instance]:
        """Apply one production against the current live instances,
        creating at most *budget* new instances."""
        pools: list[list[Instance]] = []
        for component in production.components:
            pool = [
                inst for inst in state.store.get(component, []) if inst.alive
            ]
            if not pool:
                return []
            pools.append(pool)
        created: list[Instance] = []
        for combo in itertools.product(*pools):
            if (
                len(created) >= budget
                or cap.combos_left <= 0
                or state.combos_left <= 0
            ):
                counters.truncated = True
                break
            if guard is not None and guard.tick("parse"):
                counters.truncated = True
                counters.deadline_exceeded = True
                break
            key = (production.name, tuple(inst.uid for inst in combo))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            cap.combos_left -= 1
            state.combos_left -= 1
            counters.combos_examined += 1
            instance = production.try_apply(combo)
            if instance is not None:
                counters.instances_created += 1
                created.append(instance)
        return created


class ExhaustiveParser(BestEffortParser):
    """The brute-force baseline of Section 4.2.1.

    Identical fix-point construction, but no preferences are ever enforced:
    every interpretation survives to the end, where only partial-tree
    maximization runs.  Used by the ablation benchmarks to reproduce the
    "773 instances / 25 parse trees" blow-up the paper reports for the
    amazon.com fragment.
    """

    def __init__(
        self,
        grammar: TwoPGrammar,
        config: ParserConfig | None = None,
        validate_grammar: bool = False,
    ):
        base = config or ParserConfig()
        super().__init__(
            grammar,
            replace(base, enable_preferences=False),
            validate_grammar=validate_grammar,
        )
