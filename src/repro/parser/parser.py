"""The best-effort parsing algorithm ``2PParser`` (paper Figure 11).

Phases:

1. **Parse construction with just-in-time pruning.**  Symbols are
   instantiated one by one in the 2P schedule order; each symbol runs a
   fix-point over its productions (handling self-recursive rules such as
   ``RBList -> RBList RBU``); at the end of each symbol's instantiation,
   every preference involving that symbol is enforced, and each invalidated
   instance is *rolled back* -- its live ancestors are invalidated too, so
   a false instance's descendants (in the derivation sense: the parents it
   helped build) never survive it.

2. **Partial-tree maximization** (``PRHandler``): keep the maximum partial
   trees under coverage subsumption.

Visual-language parsing is NP-complete in general (paper Section 5.1); a
configurable instance budget keeps pathological inputs from running away --
when the budget trips, construction stops and the trees built so far are
maximized, which is exactly the best-effort contract.

Fix-point evaluation strategies
-------------------------------

Two interchangeable evaluation modes produce identical parse forests:

* ``"seminaive"`` (default) -- *frontier-based* evaluation in the Datalog
  semi-naive tradition: round *k* of a symbol's fix-point only enumerates
  combinations containing at least one instance created in round *k - 1*
  (the frontier), so no combination is ever examined twice and no dedup
  set is needed.  Productions additionally declare conservative spatial
  ``bounds`` which, together with a per-symbol :class:`BandIndex`, pre-
  filter candidate pools down to geometrically plausible neighbours before
  :meth:`Production.try_apply` runs.
* ``"naive"`` -- the original loop: every round re-enumerates the full
  cartesian product of component pools and skips already-seen combinations
  through a ``seen_keys`` set.  Kept as the equivalence baseline (see
  ``tests/parser/test_seminaive_equivalence.py``) and for the ablation
  benchmarks.

For every grammar whose self-recursive productions use their head symbol
in at most one component position (all practical 2P grammars, including
the standard one), the two modes create instances in the *same order*, so
parse forests, statistics invariants, and merger output are identical.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace

from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import Preference
from repro.grammar.production import Production
from repro.parser.maximization import covered_tokens, maximal_roots
from repro.parser.schedule import Schedule
from repro.parser.spatial_index import (
    MIN_INDEXED_POOL,
    BandIndex,
    h_allows,
    v_allows,
)
from repro.tokens.model import Token
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard

#: Recognised fix-point evaluation strategies.
EVALUATION_MODES = ("seminaive", "naive")


@dataclass
class ParserConfig:
    """Tunables for the parsing algorithm.

    Attributes:
        enable_preferences: When ``False``, the parser degenerates into the
            brute-force exhaustive algorithm of Section 4.2.1 (the ablation
            baseline) -- every interpretation is kept.
        max_instances: Hard budget on created instances; exceeding it stops
            construction (best-effort degradation, never an exception).
        max_combos_per_instance: Bound on candidate combinations *examined*
            per budgeted instance -- without it, a degenerate grammar can
            spend unbounded time rejecting combinations without ever
            reaching the instance budget.  The budget is accounted per
            ``parse()`` call: each symbol's fix-point may examine at most
            ``max_combos_per_instance`` combinations per instance still in
            the budget when the symbol starts, so one pathological
            production truncates *itself* instead of starving the symbols
            scheduled after it.
        evaluation: Fix-point strategy, ``"seminaive"`` (default) or
            ``"naive"`` (see module docstring).
        memoize_spatial: Memoize per-production spatial-constraint
            evaluations during a symbol's fix-point (semi-naive mode
            only).  The same ``(check, anchor, candidate)`` predicate and
            the same band-index query recur across fix-point rounds and
            pool plans; memo keys intern the instances by ``uid`` so each
            predicate is evaluated at most once per fix-point.  Pure
            memoization: verdicts are deterministic, so candidate lists,
            combination order, and all ``combos_*`` counters are identical
            with it on or off -- hits are reported separately in
            :attr:`ParseStats.spatial_memo_hits`.
    """

    enable_preferences: bool = True
    max_instances: int = 200_000
    max_combos_per_instance: int = 60
    evaluation: str = "seminaive"
    memoize_spatial: bool = True

    def __post_init__(self) -> None:
        if self.evaluation not in EVALUATION_MODES:
            raise ValueError(
                f"unknown evaluation mode {self.evaluation!r}; "
                f"expected one of {EVALUATION_MODES}"
            )

    @property
    def max_combos(self) -> int:
        """Whole-parse ceiling on examined combinations."""
        return self.max_instances * self.max_combos_per_instance


@dataclass
class ParseStats:
    """Counters describing one parse (used by the ablation experiments)."""

    tokens: int = 0
    instances_created: int = 0
    instances_pruned: int = 0
    rollback_kills: int = 0
    preference_applications: int = 0
    fixpoint_rounds: int = 0
    combos_examined: int = 0
    #: Candidate components rejected by declarative spatial bounds before
    #: any combination containing them was examined (semi-naive mode only).
    combos_prefiltered: int = 0
    #: Spatial predicate/band-index evaluations answered from the
    #: per-symbol memo instead of being recomputed.  Reported separately
    #: from the ``combos_*`` counters on purpose: memoization skips
    #: *re-evaluation*, never enumeration, so the combo-reduction baseline
    #: stays comparable with memoization on or off.
    spatial_memo_hits: int = 0
    #: Symbols whose fix-point exhausted its per-symbol combination budget.
    symbol_truncations: int = 0
    truncated: bool = False
    #: True when a :class:`~repro.resilience.guard.ResourceGuard` deadline
    #: stopped construction early (a form of truncation: the partial trees
    #: built so far are still maximized and merged).
    deadline_exceeded: bool = False
    elapsed_seconds: float = 0.0
    #: Phase split of ``elapsed_seconds``: fix-point construction plus
    #: just-in-time pruning vs. partial-tree maximization.  Feeds the
    #: per-stage spans of :mod:`repro.observability`.
    construction_seconds: float = 0.0
    maximization_seconds: float = 0.0

    @property
    def instances_alive(self) -> int:
        return self.instances_created - self.instances_pruned - self.rollback_kills

    def counters(self) -> dict[str, int]:
        """The integer counters as a flat dict (trace spans, metrics)."""
        return {
            "tokens": self.tokens,
            "instances_created": self.instances_created,
            "instances_pruned": self.instances_pruned,
            "rollback_kills": self.rollback_kills,
            "preference_applications": self.preference_applications,
            "fixpoint_rounds": self.fixpoint_rounds,
            "combos_examined": self.combos_examined,
            "combos_prefiltered": self.combos_prefiltered,
            "spatial_memo_hits": self.spatial_memo_hits,
            "symbol_truncations": self.symbol_truncations,
            "truncated": int(self.truncated),
            "deadline_exceeded": int(self.deadline_exceeded),
        }


@dataclass
class ParseResult:
    """Output of one parse: maximal partial trees plus bookkeeping."""

    trees: list[Instance]
    tokens: list[Token]
    instances: list[Instance] = field(default_factory=list)
    stats: ParseStats = field(default_factory=ParseStats)

    @property
    def covered(self) -> frozenset[int]:
        """Token ids covered by the maximal trees."""
        return covered_tokens(self.trees)

    @property
    def uncovered_tokens(self) -> list[Token]:
        """Tokens no maximal tree interprets (the merger's "missing")."""
        covered = self.covered
        return [token for token in self.tokens if token.id not in covered]

    @property
    def is_complete(self) -> bool:
        """True when a single tree covers every token."""
        return len(self.trees) == 1 and len(self.covered) == len(self.tokens)

    def complete_parses(self, start_symbol: str = "QI") -> list[Instance]:
        """All start-symbol instances covering every token.

        In exhaustive mode each is one alternative complete interpretation
        (the paper counts 25 such parse trees for the Figure 5 fragment);
        in best-effort mode at most the surviving ones remain.
        """
        everything = frozenset(token.id for token in self.tokens)
        return [
            instance
            for instance in self.instances
            if instance.symbol == start_symbol and instance.coverage == everything
        ]

    def temporary_instances(self) -> list[Instance]:
        """Instances that ended up in no maximal tree (paper Section 4.2.1).

        These are the "temporary instances" whose proliferation the
        just-in-time pruning exists to control.
        """
        useful: set[int] = set()
        for tree in self.trees:
            for node in tree.descendants():
                useful.add(node.uid)
        return [
            instance
            for instance in self.instances
            if instance.uid not in useful and not instance.is_terminal
        ]


class _ParseState:
    """Per-parse mutable bookkeeping shared by the construction phases."""

    __slots__ = (
        "store",
        "by_token",
        "all_instances",
        "instances_left",
        "combos_left",
        "compacted_at_kills",
    )

    def __init__(self, instances_left: int, combos_left: int):
        self.store: dict[str, list[Instance]] = {}
        self.by_token: dict[int, list[Instance]] = {}
        self.all_instances: list[Instance] = []
        self.instances_left = instances_left
        self.combos_left = combos_left
        self.compacted_at_kills = 0

    def register(self, instance: Instance) -> None:
        self.store.setdefault(instance.symbol, []).append(instance)
        self.all_instances.append(instance)
        for token_id in instance.coverage:
            self.by_token.setdefault(token_id, []).append(instance)

    def compact(self) -> None:
        """Drop dead instances from the lookup lists.

        ``all_instances`` keeps everything (maximization and the result
        object need the dead for accounting); only the ``store`` pools and
        the ``by_token`` reverse index -- the structures ``_find_winner``
        and pool snapshots iterate -- are compacted.  Relative order is
        preserved, so enumeration order and winner selection are
        unaffected.
        """
        for instances in self.store.values():
            if any(not instance.alive for instance in instances):
                instances[:] = [i for i in instances if i.alive]
        for instances in self.by_token.values():
            if any(not instance.alive for instance in instances):
                instances[:] = [i for i in instances if i.alive]


class _SymbolBudget:
    """Combination allowance for one symbol's fix-point."""

    __slots__ = ("combos_left",)

    def __init__(self, combos_left: int):
        self.combos_left = combos_left


class _SpatialMemo:
    """Memoized spatial evaluations for one symbol's fix-point.

    Two tables, both keyed on interned identities (instance ``uid`` ints
    plus the ``id`` of the production-owned check tuple, which is alive for
    the grammar's lifetime):

    * ``pairs`` -- ``(id(check), anchor_uid, candidate_uid) -> bool``
      verdicts of individual axis-envelope predicates;
    * ``bands`` -- ``(id(check), anchor_uid) -> list`` results of a
      :class:`BandIndex` query for a given anchor (the indexed pool is
      frozen for the whole fix-point, so the query result is stable).

    Scoped to one symbol's fix-point: component pools are frozen for its
    duration, and discarding the memo afterwards keeps ``id()``-based keys
    safe from address reuse across symbols.
    """

    __slots__ = ("pairs", "bands")

    def __init__(self) -> None:
        self.pairs: dict[tuple[int, int, int], bool] = {}
        self.bands: dict[tuple[int, int], list[Instance]] = {}


class BestEffortParser:
    """Parser for a 2P grammar over visual tokens.

    Args:
        grammar: The 2P grammar to parse with.
        config: Parser tunables (see :class:`ParserConfig`).
        validate_grammar: When ``True``, run the static analyzer
            (:func:`repro.analysis.analyze_grammar`) on *grammar* and
            raise :class:`~repro.analysis.GrammarDiagnosticsError` if any
            error-severity diagnostic is found -- fast-fail instead of
            silently parsing worse.  Off by default: the analyzer is
            imported lazily, so the default path carries zero overhead.
    """

    def __init__(
        self,
        grammar: TwoPGrammar,
        config: ParserConfig | None = None,
        validate_grammar: bool = False,
    ):
        from repro.grammar.cache import cached_schedule

        if validate_grammar:
            from repro.analysis import analyze_grammar

            analyze_grammar(grammar).raise_if_errors()
        self.grammar = grammar
        self.config = config or ParserConfig()
        self.schedule: Schedule = cached_schedule(grammar)

    # -- public API -------------------------------------------------------------

    def parse(
        self, tokens: list[Token], guard: ResourceGuard | None = None
    ) -> ParseResult:
        """Parse *tokens* into maximum partial trees (never raises on input).

        A degrade-mode *guard* deadline behaves exactly like budget
        exhaustion: construction stops at a clean point, the trees built
        so far are maximized, and ``stats.deadline_exceeded`` is set
        alongside ``stats.truncated``.  (A raise-mode guard propagates
        ``BudgetExceeded`` instead -- an explicit caller opt-out of the
        never-raises contract.)
        """
        started = time.perf_counter()
        stats = ParseStats(tokens=len(tokens))
        combos_budget = self.config.max_combos
        if guard is not None and guard.limits.max_combos is not None:
            combos_budget = min(combos_budget, guard.limits.max_combos)
        state = _ParseState(
            instances_left=self.config.max_instances,
            combos_left=combos_budget,
        )
        for token in tokens:
            state.register(Instance.for_token(token))

        for symbol in self.schedule.order:
            if guard is not None and guard.over_deadline("parse"):
                stats.truncated = True
                stats.deadline_exceeded = True
                break
            created = self._instantiate(symbol, state, stats, guard)
            state.instances_left -= created
            exhausted = (
                state.instances_left <= 0
                or state.combos_left <= 0
                or stats.deadline_exceeded
            )
            if exhausted:
                stats.truncated = True
            if self.config.enable_preferences:
                for preference in self.grammar.preferences_involving(symbol):
                    self._enforce(preference, state, stats)
                self._maybe_compact(state, stats)
            if exhausted:
                break

        construction_done = time.perf_counter()
        stats.construction_seconds = construction_done - started
        trees = maximal_roots(state.all_instances)
        stats.maximization_seconds = time.perf_counter() - construction_done
        stats.elapsed_seconds = time.perf_counter() - started
        return ParseResult(
            trees=trees,
            tokens=tokens,
            instances=state.all_instances,
            stats=stats,
        )

    # -- phase 1: fix-point instantiation ------------------------------------------

    def _instantiate(
        self,
        symbol: str,
        state: _ParseState,
        stats: ParseStats,
        guard: ResourceGuard | None = None,
    ) -> int:
        """Run ``instantiate(A)`` (paper Figure 11); return #created."""
        productions = self.grammar.productions_for(symbol)
        if not productions:
            return 0
        # Per-symbol combination allowance: proportional to the instance
        # budget remaining for this parse, so a pathological production
        # cannot burn the combination budget owed to later symbols.
        cap = _SymbolBudget(
            self.config.max_combos_per_instance * max(1, state.instances_left)
        )
        if self.config.evaluation == "naive":
            created = self._instantiate_naive(
                symbol, productions, state, cap, stats, guard
            )
        else:
            created = self._instantiate_seminaive(
                symbol, productions, state, cap, stats, guard
            )
        if cap.combos_left <= 0:
            stats.symbol_truncations += 1
        return created

    def _instantiate_seminaive(
        self,
        symbol: str,
        productions: list[Production],
        state: _ParseState,
        cap: _SymbolBudget,
        stats: ParseStats,
        guard: ResourceGuard | None = None,
    ) -> int:
        """Frontier-based fix-point: round *k* only enumerates combinations
        containing at least one instance created in round *k - 1*."""
        store = state.store
        # Pools of non-head components are frozen for the whole fix-point:
        # no other symbol is instantiated and no preference is enforced
        # until this symbol completes, so snapshot (and index) them once.
        fixed_pools: dict[str, list[Instance]] = {}
        for production in productions:
            for component in production.components:
                if component != symbol and component not in fixed_pools:
                    fixed_pools[component] = [
                        inst for inst in store.get(component, []) if inst.alive
                    ]
        indexes: dict[str, BandIndex] = {}
        memo = _SpatialMemo() if self.config.memoize_spatial else None
        recursive = [p for p in productions if symbol in p.components]
        head_pool: list[Instance] = [
            inst for inst in store.get(symbol, []) if inst.alive
        ]
        created_total = 0
        delta_len = 0
        first_round = True
        stop = False
        while True:
            stats.fixpoint_rounds += 1
            new_instances: list[Instance] = []
            old_len = len(head_pool) - delta_len
            for production in productions if first_round else recursive:
                plans = self._round_plans(
                    production, symbol, fixed_pools, head_pool, old_len,
                    first_round,
                )
                for pools in plans:
                    remaining = (
                        state.instances_left - created_total - len(new_instances)
                    )
                    if remaining <= 0:
                        stats.truncated = True
                        stop = True
                        break
                    new_instances.extend(
                        self._apply_seminaive(
                            production, pools, fixed_pools, indexes, memo,
                            state, cap, stats, remaining, guard,
                        )
                    )
                    if (
                        cap.combos_left <= 0
                        or state.combos_left <= 0
                        or stats.deadline_exceeded
                    ):
                        stats.truncated = True
                        stop = True
                        break
                if stop:
                    break
            for instance in new_instances:
                state.register(instance)
                head_pool.append(instance)
            created_total += len(new_instances)
            delta_len = len(new_instances)
            first_round = False
            if stop or not new_instances:
                return created_total

    @staticmethod
    def _round_plans(
        production: Production,
        symbol: str,
        fixed_pools: dict[str, list[Instance]],
        head_pool: list[Instance],
        old_len: int,
        first_round: bool,
    ) -> list[list[list[Instance]]]:
        """Pool assignments enumerating this round's new combinations.

        First round: one plan over the full pools.  Later rounds: the
        frontier (instances created last round, the tail of *head_pool*)
        must appear in at least one head-component position; the standard
        semi-naive partition assigns, for each head position *d*, the
        frontier to *d*, only pre-frontier instances to head positions
        before *d*, and the full pool to head positions after *d* --
        exactly the combinations not enumerated in any earlier round, each
        exactly once.
        """
        components = production.components
        if first_round:
            return [
                [
                    head_pool if component == symbol else fixed_pools[component]
                    for component in components
                ]
            ]
        growing = [
            index for index, component in enumerate(components)
            if component == symbol
        ]
        old = head_pool[:old_len]
        delta = head_pool[old_len:]
        plans: list[list[list[Instance]]] = []
        for d in growing:
            pools: list[list[Instance]] = []
            for index, component in enumerate(components):
                if component != symbol:
                    pools.append(fixed_pools[component])
                elif index < d:
                    pools.append(old)
                elif index == d:
                    pools.append(delta)
                else:
                    pools.append(head_pool)
            plans.append(pools)
        return plans

    def _apply_seminaive(
        self,
        production: Production,
        pools: list[list[Instance]],
        fixed_pools: dict[str, list[Instance]],
        indexes: dict[str, BandIndex],
        memo: _SpatialMemo | None,
        state: _ParseState,
        cap: _SymbolBudget,
        stats: ParseStats,
        budget: int,
        guard: ResourceGuard | None = None,
    ) -> list[Instance]:
        """Apply one production over one pool plan, creating at most
        *budget* new instances."""
        for pool in pools:
            if not pool:
                return []
        created: list[Instance] = []
        for combo in self._combos(
            production, pools, fixed_pools, indexes, memo, stats
        ):
            if (
                len(created) >= budget
                or cap.combos_left <= 0
                or state.combos_left <= 0
            ):
                stats.truncated = True
                break
            if guard is not None and guard.tick("parse"):
                stats.truncated = True
                stats.deadline_exceeded = True
                break
            cap.combos_left -= 1
            state.combos_left -= 1
            stats.combos_examined += 1
            instance = production.try_apply(combo)
            if instance is not None:
                stats.instances_created += 1
                created.append(instance)
        return created

    def _combos(
        self,
        production: Production,
        pools: list[list[Instance]],
        fixed_pools: dict[str, list[Instance]],
        indexes: dict[str, BandIndex],
        memo: _SpatialMemo | None,
        stats: ParseStats,
    ):
        """Enumerate candidate combinations, pre-filtered by the
        production's declarative spatial bounds.

        Candidates at every position are visited in ``uid`` order (the
        pool order), whether produced by a plain filtered scan or by a
        :class:`BandIndex` query, so the combination order matches the
        naive cartesian product with bound-violating combinations
        removed.  With *memo* set, predicate verdicts and band queries
        already evaluated this fix-point are reused instead of recomputed
        (``ParseStats.spatial_memo_hits``); the selected candidates are
        identical either way.
        """
        components = production.components
        bounds_by_target = production.bounds_by_target
        n = len(pools)
        if n == 1:
            for instance in pools[0]:
                yield (instance,)
            return
        if not production.bounds:
            yield from itertools.product(*pools)
            return
        combo: list[Instance] = [None] * n  # type: ignore[list-item]
        # Memoization only pays off for productions with >= 3 components:
        # a pair verdict (or a band query for the same anchor) can only
        # recur when a *third* position varies between two visits; with
        # two components each anchor is visited exactly once per plan, so
        # both tables would be pure dict overhead (measured as a ~10%
        # slowdown on the standard grammar, where 2-component productions
        # dominate and contribute zero memo hits).
        pair_memo = memo if n >= 3 else None

        def candidates(position: int) -> list[Instance]:
            pool = pools[position]
            checks = bounds_by_target[position]
            if not checks:
                return pool
            # Indexed path: the pool is the frozen full pool of a fixed
            # component, large enough that banding beats a linear scan.
            component = components[position]
            fixed = fixed_pools.get(component)
            primary = None
            if (
                fixed is not None
                and pool is fixed
                and len(pool) >= MIN_INDEXED_POOL
            ):
                for check in checks:
                    if check[2] is not None:  # needs a vertical bound
                        primary = check
                        break
            if primary is not None:
                index = indexes.get(component)
                if index is None:
                    index = BandIndex(fixed)
                    indexes[component] = index
                anchor, h_spec, v_spec = primary
                anchor_inst = combo[anchor]
                if pair_memo is not None:
                    band_key = (id(primary), anchor_inst.uid)
                    banded = pair_memo.bands.get(band_key)
                    if banded is None:
                        banded = index.near(anchor_inst.bbox, h_spec, v_spec)
                        pair_memo.bands[band_key] = banded
                    else:
                        stats.spatial_memo_hits += 1
                else:
                    banded = index.near(anchor_inst.bbox, h_spec, v_spec)
                if len(checks) > 1:
                    # Build a fresh list: ``banded`` may be a memoized
                    # object shared with later queries.
                    selected = [
                        cand for cand in banded
                        if self._passes(
                            cand, checks, combo, skip=primary,
                            memo=pair_memo, stats=stats,
                        )
                    ]
                else:
                    selected = banded
                stats.combos_prefiltered += len(pool) - len(selected)
                return selected
            selected = [
                cand for cand in pool
                if self._passes(
                    cand, checks, combo, memo=pair_memo, stats=stats
                )
            ]
            stats.combos_prefiltered += len(pool) - len(selected)
            return selected

        def expand(position: int):
            if position == n:
                yield tuple(combo)
                return
            for candidate in candidates(position):
                combo[position] = candidate
                yield from expand(position + 1)

        yield from expand(0)

    @staticmethod
    def _passes(
        candidate: Instance,
        checks: tuple[tuple, ...],
        combo: list[Instance],
        skip: tuple | None = None,
        memo: _SpatialMemo | None = None,
        stats: ParseStats | None = None,
    ) -> bool:
        box = candidate.bbox
        for check in checks:
            if check is skip:
                continue
            anchor, h_spec, v_spec = check
            anchor_inst = combo[anchor]
            if memo is not None:
                # Checks are tuples owned by the (frozen) production and
                # instances are interned by uid, so identity keys are
                # stable for the whole fix-point this memo spans.
                pair_key = (id(check), anchor_inst.uid, candidate.uid)
                verdict = memo.pairs.get(pair_key)
                if verdict is not None:
                    if stats is not None:
                        stats.spatial_memo_hits += 1
                    if verdict:
                        continue
                    return False
                other = anchor_inst.bbox
                verdict = h_allows(h_spec, other, box) and v_allows(
                    v_spec, other, box
                )
                memo.pairs[pair_key] = verdict
                if not verdict:
                    return False
                continue
            other = anchor_inst.bbox
            if not h_allows(h_spec, other, box):
                return False
            if not v_allows(v_spec, other, box):
                return False
        return True

    # -- naive baseline (the original loop, kept for equivalence) -------------------

    def _instantiate_naive(
        self,
        symbol: str,
        productions: list[Production],
        state: _ParseState,
        cap: _SymbolBudget,
        stats: ParseStats,
        guard: ResourceGuard | None = None,
    ) -> int:
        """The original fix-point: full cartesian re-enumeration each round
        with a ``seen_keys`` dedup set and no spatial pre-filtering."""
        seen_keys: set[tuple[str, tuple[int, ...]]] = set()
        created_total = 0
        stop = False
        while True:
            stats.fixpoint_rounds += 1
            new_instances: list[Instance] = []
            for production in productions:
                remaining = (
                    state.instances_left - created_total - len(new_instances)
                )
                if remaining <= 0:
                    stats.truncated = True
                    stop = True
                    break
                new_instances.extend(
                    self._apply_naive(
                        production, state, seen_keys, cap, stats, remaining,
                        guard,
                    )
                )
                if (
                    cap.combos_left <= 0
                    or state.combos_left <= 0
                    or stats.deadline_exceeded
                ):
                    stats.truncated = True
                    stop = True
                    break
            for instance in new_instances:
                state.register(instance)
            created_total += len(new_instances)
            if stop or not new_instances:
                return created_total

    def _apply_naive(
        self,
        production: Production,
        state: _ParseState,
        seen_keys: set[tuple[str, tuple[int, ...]]],
        cap: _SymbolBudget,
        stats: ParseStats,
        budget: int,
        guard: ResourceGuard | None = None,
    ) -> list[Instance]:
        """Apply one production against the current live instances,
        creating at most *budget* new instances."""
        pools: list[list[Instance]] = []
        for component in production.components:
            pool = [
                inst for inst in state.store.get(component, []) if inst.alive
            ]
            if not pool:
                return []
            pools.append(pool)
        created: list[Instance] = []
        for combo in itertools.product(*pools):
            if (
                len(created) >= budget
                or cap.combos_left <= 0
                or state.combos_left <= 0
            ):
                stats.truncated = True
                break
            if guard is not None and guard.tick("parse"):
                stats.truncated = True
                stats.deadline_exceeded = True
                break
            key = (production.name, tuple(inst.uid for inst in combo))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            cap.combos_left -= 1
            state.combos_left -= 1
            stats.combos_examined += 1
            instance = production.try_apply(combo)
            if instance is not None:
                stats.instances_created += 1
                created.append(instance)
        return created

    # -- just-in-time pruning ---------------------------------------------------------

    def _enforce(
        self,
        preference: Preference,
        state: _ParseState,
        stats: ParseStats,
    ) -> None:
        """Enforce one preference: invalidate losers, roll back ancestors."""
        losers = [
            inst
            for inst in state.store.get(preference.loser_symbol, [])
            if inst.alive
        ]
        for loser in losers:
            if not loser.alive:
                continue  # may have died from an earlier rollback this pass
            winner = self._find_winner(preference, loser, state.by_token)
            if winner is not None:
                stats.preference_applications += 1
                self._rollback(loser, stats)

    def _maybe_compact(self, state: _ParseState, stats: ParseStats) -> None:
        """Compact the lookup lists once enough instances have died.

        Amortized: a sweep costs O(live + dead) and only runs after the
        dead amount to a quarter of everything registered, so
        ``_find_winner`` and pool snapshots never scan long runs of
        tombstones.
        """
        kills = stats.instances_pruned + stats.rollback_kills
        dead_since = kills - state.compacted_at_kills
        if dead_since * 4 >= max(64, len(state.all_instances)):
            state.compact()
            state.compacted_at_kills = kills

    @staticmethod
    def _find_winner(
        preference: Preference,
        loser: Instance,
        by_token: dict[int, list[Instance]],
    ) -> Instance | None:
        """A live winner-type instance that beats *loser*, if any."""
        seen: set[int] = set()
        for token_id in loser.coverage:
            for candidate in by_token.get(token_id, ()):  # shares a token
                if (
                    candidate.alive
                    and candidate.uid not in seen
                    and candidate.symbol == preference.winner_symbol
                ):
                    seen.add(candidate.uid)
                    if preference.applies(candidate, loser):
                        return candidate
        return None

    def _rollback(self, instance: Instance, stats: ParseStats) -> None:
        """Invalidate *instance* and every live ancestor built from it."""
        stack = [instance]
        first = True
        while stack:
            node = stack.pop()
            if not node.alive or node.is_terminal:
                continue
            node.alive = False
            if first:
                stats.instances_pruned += 1
                first = False
            else:
                stats.rollback_kills += 1
            stack.extend(parent for parent in node.parents if parent.alive)


class ExhaustiveParser(BestEffortParser):
    """The brute-force baseline of Section 4.2.1.

    Identical fix-point construction, but no preferences are ever enforced:
    every interpretation survives to the end, where only partial-tree
    maximization runs.  Used by the ablation benchmarks to reproduce the
    "773 instances / 25 parse trees" blow-up the paper reports for the
    amazon.com fragment.
    """

    def __init__(
        self,
        grammar: TwoPGrammar,
        config: ParserConfig | None = None,
        validate_grammar: bool = False,
    ):
        base = config or ParserConfig()
        super().__init__(
            grammar,
            replace(base, enable_preferences=False),
            validate_grammar=validate_grammar,
        )
