"""The best-effort parsing algorithm ``2PParser`` (paper Figure 11).

Phases:

1. **Parse construction with just-in-time pruning.**  Symbols are
   instantiated one by one in the 2P schedule order; each symbol runs a
   fix-point over its productions (handling self-recursive rules such as
   ``RBList -> RBList RBU``); at the end of each symbol's instantiation,
   every preference involving that symbol is enforced, and each invalidated
   instance is *rolled back* -- its live ancestors are invalidated too, so
   a false instance's descendants (in the derivation sense: the parents it
   helped build) never survive it.

2. **Partial-tree maximization** (``PRHandler``): keep the maximum partial
   trees under coverage subsumption.

Visual-language parsing is NP-complete in general (paper Section 5.1); a
configurable instance budget keeps pathological inputs from running away --
when the budget trips, construction stops and the trees built so far are
maximized, which is exactly the best-effort contract.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import Preference
from repro.grammar.production import Production
from repro.parser.maximization import covered_tokens, maximal_roots
from repro.parser.schedule import Schedule, build_schedule
from repro.tokens.model import Token


@dataclass
class ParserConfig:
    """Tunables for the parsing algorithm.

    Attributes:
        enable_preferences: When ``False``, the parser degenerates into the
            brute-force exhaustive algorithm of Section 4.2.1 (the ablation
            baseline) -- every interpretation is kept.
        max_instances: Hard budget on created instances; exceeding it stops
            construction (best-effort degradation, never an exception).
        max_combos_per_instance: Bound on candidate combinations *examined*
            per budgeted instance -- without it, a degenerate grammar can
            spend unbounded time rejecting combinations without ever
            reaching the instance budget.
    """

    enable_preferences: bool = True
    max_instances: int = 200_000
    max_combos_per_instance: int = 60

    @property
    def max_combos(self) -> int:
        return self.max_instances * self.max_combos_per_instance


@dataclass
class ParseStats:
    """Counters describing one parse (used by the ablation experiments)."""

    tokens: int = 0
    instances_created: int = 0
    instances_pruned: int = 0
    rollback_kills: int = 0
    preference_applications: int = 0
    fixpoint_rounds: int = 0
    combos_examined: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0

    @property
    def instances_alive(self) -> int:
        return self.instances_created - self.instances_pruned - self.rollback_kills


@dataclass
class ParseResult:
    """Output of one parse: maximal partial trees plus bookkeeping."""

    trees: list[Instance]
    tokens: list[Token]
    instances: list[Instance] = field(default_factory=list)
    stats: ParseStats = field(default_factory=ParseStats)

    @property
    def covered(self) -> frozenset[int]:
        """Token ids covered by the maximal trees."""
        return covered_tokens(self.trees)

    @property
    def uncovered_tokens(self) -> list[Token]:
        """Tokens no maximal tree interprets (the merger's "missing")."""
        covered = self.covered
        return [token for token in self.tokens if token.id not in covered]

    @property
    def is_complete(self) -> bool:
        """True when a single tree covers every token."""
        return len(self.trees) == 1 and len(self.covered) == len(self.tokens)

    def complete_parses(self, start_symbol: str = "QI") -> list[Instance]:
        """All start-symbol instances covering every token.

        In exhaustive mode each is one alternative complete interpretation
        (the paper counts 25 such parse trees for the Figure 5 fragment);
        in best-effort mode at most the surviving ones remain.
        """
        everything = frozenset(token.id for token in self.tokens)
        return [
            instance
            for instance in self.instances
            if instance.symbol == start_symbol and instance.coverage == everything
        ]

    def temporary_instances(self) -> list[Instance]:
        """Instances that ended up in no maximal tree (paper Section 4.2.1).

        These are the "temporary instances" whose proliferation the
        just-in-time pruning exists to control.
        """
        useful: set[int] = set()
        for tree in self.trees:
            for node in tree.descendants():
                useful.add(node.uid)
        return [
            instance
            for instance in self.instances
            if instance.uid not in useful and not instance.is_terminal
        ]


class BestEffortParser:
    """Parser for a 2P grammar over visual tokens."""

    def __init__(self, grammar: TwoPGrammar, config: ParserConfig | None = None):
        self.grammar = grammar
        self.config = config or ParserConfig()
        self.schedule: Schedule = build_schedule(grammar)

    # -- public API -------------------------------------------------------------

    def parse(self, tokens: list[Token]) -> ParseResult:
        """Parse *tokens* into maximum partial trees (never raises on input)."""
        started = time.perf_counter()
        stats = ParseStats(tokens=len(tokens))
        store: dict[str, list[Instance]] = {}
        by_token: dict[int, list[Instance]] = {}
        all_instances: list[Instance] = []

        def register(instance: Instance) -> None:
            store.setdefault(instance.symbol, []).append(instance)
            all_instances.append(instance)
            for token_id in instance.coverage:
                by_token.setdefault(token_id, []).append(instance)

        for token in tokens:
            register(Instance.for_token(token))

        budget_left = self.config.max_instances
        for symbol in self.schedule.order:
            created = self._instantiate(symbol, store, register, stats, budget_left)
            budget_left -= created
            if budget_left <= 0:
                stats.truncated = True
            if self.config.enable_preferences:
                for preference in self.grammar.preferences_involving(symbol):
                    self._enforce(preference, store, by_token, stats)
            if stats.truncated:
                break

        trees = maximal_roots(all_instances)
        stats.elapsed_seconds = time.perf_counter() - started
        return ParseResult(
            trees=trees, tokens=tokens, instances=all_instances, stats=stats
        )

    # -- phase 1: fix-point instantiation ------------------------------------------

    def _instantiate(
        self,
        symbol: str,
        store: dict[str, list[Instance]],
        register,
        stats: ParseStats,
        budget_left: int,
    ) -> int:
        """Run ``instantiate(A)`` (paper Figure 11); return #created."""
        productions = self.grammar.productions_for(symbol)
        if not productions:
            return 0
        seen_keys: set[tuple[str, tuple[int, ...]]] = set()
        created_total = 0
        while True:
            stats.fixpoint_rounds += 1
            new_instances: list[Instance] = []
            for production in productions:
                remaining = budget_left - created_total - len(new_instances)
                if remaining <= 0:
                    stats.truncated = True
                    break
                new_instances.extend(
                    self._apply(production, store, seen_keys, stats, remaining)
                )
            for instance in new_instances:
                register(instance)
            created_total += len(new_instances)
            if not new_instances or stats.truncated:
                return created_total

    def _apply(
        self,
        production: Production,
        store: dict[str, list[Instance]],
        seen_keys: set[tuple[str, tuple[int, ...]]],
        stats: ParseStats,
        budget: int,
    ) -> list[Instance]:
        """Apply one production against the current live instances,
        creating at most *budget* new instances."""
        pools: list[list[Instance]] = []
        for component in production.components:
            pool = [inst for inst in store.get(component, []) if inst.alive]
            if not pool:
                return []
            pools.append(pool)
        created: list[Instance] = []
        combo_budget = self.config.max_combos
        for combo in itertools.product(*pools):
            if len(created) >= budget or stats.combos_examined >= combo_budget:
                stats.truncated = True
                break
            key = (production.name, tuple(inst.uid for inst in combo))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            stats.combos_examined += 1
            instance = production.try_apply(combo)
            if instance is not None:
                stats.instances_created += 1
                created.append(instance)
        return created

    # -- just-in-time pruning ---------------------------------------------------------

    def _enforce(
        self,
        preference: Preference,
        store: dict[str, list[Instance]],
        by_token: dict[int, list[Instance]],
        stats: ParseStats,
    ) -> None:
        """Enforce one preference: invalidate losers, roll back ancestors."""
        losers = [
            inst for inst in store.get(preference.loser_symbol, []) if inst.alive
        ]
        for loser in losers:
            if not loser.alive:
                continue  # may have died from an earlier rollback this pass
            winner = self._find_winner(preference, loser, by_token)
            if winner is not None:
                stats.preference_applications += 1
                self._rollback(loser, stats)

    @staticmethod
    def _find_winner(
        preference: Preference,
        loser: Instance,
        by_token: dict[int, list[Instance]],
    ) -> Instance | None:
        """A live winner-type instance that beats *loser*, if any."""
        seen: set[int] = set()
        for token_id in loser.coverage:
            for candidate in by_token.get(token_id, ()):  # shares a token
                if (
                    candidate.alive
                    and candidate.uid not in seen
                    and candidate.symbol == preference.winner_symbol
                ):
                    seen.add(candidate.uid)
                    if preference.applies(candidate, loser):
                        return candidate
        return None

    def _rollback(self, instance: Instance, stats: ParseStats) -> None:
        """Invalidate *instance* and every live ancestor built from it."""
        stack = [instance]
        first = True
        while stack:
            node = stack.pop()
            if not node.alive or node.is_terminal:
                continue
            node.alive = False
            if first:
                stats.instances_pruned += 1
                first = False
            else:
                stats.rollback_kills += 1
            stack.extend(parent for parent in node.parents if parent.alive)


class ExhaustiveParser(BestEffortParser):
    """The brute-force baseline of Section 4.2.1.

    Identical fix-point construction, but no preferences are ever enforced:
    every interpretation survives to the end, where only partial-tree
    maximization runs.  Used by the ablation benchmarks to reproduce the
    "773 instances / 25 parse trees" blow-up the paper reports for the
    amazon.com fragment.
    """

    def __init__(self, grammar: TwoPGrammar, config: ParserConfig | None = None):
        base = config or ParserConfig()
        super().__init__(
            grammar,
            ParserConfig(enable_preferences=False, max_instances=base.max_instances),
        )
