"""The best-effort parsing algorithm ``2PParser`` (paper Figure 11).

Phases:

1. **Parse construction with just-in-time pruning.**  Symbols are
   instantiated one by one in the 2P schedule order; each symbol runs a
   fix-point over its productions (handling self-recursive rules such as
   ``RBList -> RBList RBU``); at the end of each symbol's instantiation,
   every preference involving that symbol is enforced, and each invalidated
   instance is *rolled back* -- its live ancestors are invalidated too, so
   a false instance's descendants (in the derivation sense: the parents it
   helped build) never survive it.

2. **Partial-tree maximization** (``PRHandler``): keep the maximum partial
   trees under coverage subsumption.

Visual-language parsing is NP-complete in general (paper Section 5.1); a
configurable instance budget keeps pathological inputs from running away --
when the budget trips, construction stops and the trees built so far are
maximized, which is exactly the best-effort contract.

Fix-point evaluation strategies
-------------------------------

Two interchangeable evaluation modes produce identical parse forests:

* ``"seminaive"`` (default) -- *frontier-based* evaluation in the Datalog
  semi-naive tradition: round *k* of a symbol's fix-point only enumerates
  combinations containing at least one instance created in round *k - 1*
  (the frontier), so no combination is ever examined twice and no dedup
  set is needed.  Productions additionally declare conservative spatial
  ``bounds`` which, together with a per-symbol :class:`BandIndex`, pre-
  filter candidate pools down to geometrically plausible neighbours before
  :meth:`Production.try_apply` runs.
* ``"naive"`` -- the original loop: every round re-enumerates the full
  cartesian product of component pools and skips already-seen combinations
  through a ``seen_keys`` set.  Kept as the equivalence baseline (see
  ``tests/parser/test_seminaive_equivalence.py``) and for the ablation
  benchmarks.

For every grammar whose self-recursive productions use their head symbol
in at most one component position (all practical 2P grammars, including
the standard one), the two modes create instances in the *same order*, so
parse forests, statistics invariants, and merger output are identical.
"""

from __future__ import annotations

import gc
import itertools
import time
from bisect import bisect_left
from operator import attrgetter
from dataclasses import dataclass, field, replace

from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import Preference, subsumes
from repro.grammar.production import Production
from repro.parser.maximization import covered_tokens, maximal_roots
from repro.parser.schedule import Schedule
from repro.parser.spatial_index import (
    KERNEL_MODES,
    MIN_INDEXED_POOL,
    BandIndex,
    GeometryTable,
    _load_numpy,
    h_allows,
    resolve_kernel,
    v_allows,
)
from repro.tokens.model import Token
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard

#: Recognised fix-point evaluation strategies.
EVALUATION_MODES = ("seminaive", "naive")

#: Winner-index buckets are append-only in ``uid`` order (and compaction
#: preserves it), so incremental enforcement can binary-search straight to
#: the first winner registered after a watermark.
_uid_key = attrgetter("uid")

#: Cell cap for materializing the full loser x winner candidacy matrix in
#: masked enforcement.  The uint64 intermediates cost 8 bytes per cell, so
#: this bounds the transient allocation to ~16 MiB; larger (degenerate)
#: pools fall back to computing one row per alive loser instead.
_MASKED_MATRIX_CELLS = 1 << 21


@dataclass
class ParserConfig:
    """Tunables for the parsing algorithm.

    Attributes:
        enable_preferences: When ``False``, the parser degenerates into the
            brute-force exhaustive algorithm of Section 4.2.1 (the ablation
            baseline) -- every interpretation is kept.
        max_instances: Hard budget on created instances; exceeding it stops
            construction (best-effort degradation, never an exception).
        max_combos_per_instance: Bound on candidate combinations *examined*
            per budgeted instance -- without it, a degenerate grammar can
            spend unbounded time rejecting combinations without ever
            reaching the instance budget.  The budget is accounted per
            ``parse()`` call: each symbol's fix-point may examine at most
            ``max_combos_per_instance`` combinations per instance still in
            the budget when the symbol starts, so one pathological
            production truncates *itself* instead of starving the symbols
            scheduled after it.
        evaluation: Fix-point strategy, ``"seminaive"`` (default) or
            ``"naive"`` (see module docstring).
        kernel: Spatial-kernel request: ``"auto"`` (default -- vectorized
            when numpy is importable, scalar otherwise), ``"vector"``
            (columnar numpy :class:`~repro.parser.spatial_index.GeometryTable`
            path; raises at parser construction when numpy is absent), or
            ``"scalar"`` (pure-Python :class:`BandIndex` path).  Both
            kernels select identical candidates in identical order, so
            models, warnings, and all ``combos_*`` counters are
            byte-identical across kernels; only
            :attr:`ParseStats.spatial_memo_hits` may differ (the two paths
            memoize different units of work).  The kernel only affects
            semi-naive evaluation; naive mode always runs scalar.
        memoize_spatial: Memoize per-production spatial-constraint
            evaluations during a symbol's fix-point (semi-naive mode
            only).  The same ``(check, anchor, candidate)`` predicate and
            the same band-index query recur across fix-point rounds and
            pool plans; memo keys intern the instances by ``uid`` so each
            predicate is evaluated at most once per fix-point.  Pure
            memoization: verdicts are deterministic, so candidate lists,
            combination order, and all ``combos_*`` counters are identical
            with it on or off -- hits are reported separately in
            :attr:`ParseStats.spatial_memo_hits`.
    """

    enable_preferences: bool = True
    max_instances: int = 200_000
    max_combos_per_instance: int = 60
    evaluation: str = "seminaive"
    memoize_spatial: bool = True
    kernel: str = "auto"
    #: Pause the cyclic garbage collector for the duration of each
    #: ``parse()`` call.  A parse churns tens of thousands of short-lived
    #: instances whose parent backrefs form reference cycles, so the
    #: generational collector fires dozens of times mid-parse scanning
    #: objects that are all still reachable; deferring collection to the
    #: end of the call is worth ~20% wall time and changes no result.
    #: Only toggled when the collector is enabled on entry, and always
    #: restored on exit (including on exceptions).
    pause_gc: bool = True

    def __post_init__(self) -> None:
        if self.evaluation not in EVALUATION_MODES:
            raise ValueError(
                f"unknown evaluation mode {self.evaluation!r}; "
                f"expected one of {EVALUATION_MODES}"
            )
        if self.kernel not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {KERNEL_MODES}"
            )

    @property
    def max_combos(self) -> int:
        """Whole-parse ceiling on examined combinations."""
        return self.max_instances * self.max_combos_per_instance


@dataclass
class ParseStats:
    """Counters describing one parse (used by the ablation experiments)."""

    tokens: int = 0
    #: Concrete spatial kernel this parse ran (``"vector"`` or
    #: ``"scalar"``); naive-mode parses always record ``"scalar"``.
    kernel: str = "scalar"
    instances_created: int = 0
    instances_pruned: int = 0
    rollback_kills: int = 0
    preference_applications: int = 0
    fixpoint_rounds: int = 0
    combos_examined: int = 0
    #: Candidate components rejected by declarative spatial bounds before
    #: any combination containing them was examined (semi-naive mode only).
    combos_prefiltered: int = 0
    #: Spatial predicate/band-index evaluations answered from the
    #: per-symbol memo instead of being recomputed.  Reported separately
    #: from the ``combos_*`` counters on purpose: memoization skips
    #: *re-evaluation*, never enumeration, so the combo-reduction baseline
    #: stays comparable with memoization on or off.
    spatial_memo_hits: int = 0
    #: Symbols whose fix-point exhausted its per-symbol combination budget.
    symbol_truncations: int = 0
    truncated: bool = False
    #: True when a :class:`~repro.resilience.guard.ResourceGuard` deadline
    #: stopped construction early (a form of truncation: the partial trees
    #: built so far are still maximized and merged).
    deadline_exceeded: bool = False
    elapsed_seconds: float = 0.0
    #: Phase split of ``elapsed_seconds``: fix-point construction plus
    #: just-in-time pruning vs. partial-tree maximization.  Feeds the
    #: per-stage spans of :mod:`repro.observability`.
    construction_seconds: float = 0.0
    maximization_seconds: float = 0.0

    @property
    def instances_alive(self) -> int:
        return self.instances_created - self.instances_pruned - self.rollback_kills

    def counters(self) -> dict[str, int]:
        """The integer counters as a flat dict (trace spans, metrics)."""
        return {
            "tokens": self.tokens,
            "instances_created": self.instances_created,
            "instances_pruned": self.instances_pruned,
            "rollback_kills": self.rollback_kills,
            "preference_applications": self.preference_applications,
            "fixpoint_rounds": self.fixpoint_rounds,
            "combos_examined": self.combos_examined,
            "combos_prefiltered": self.combos_prefiltered,
            "spatial_memo_hits": self.spatial_memo_hits,
            "symbol_truncations": self.symbol_truncations,
            "truncated": int(self.truncated),
            "deadline_exceeded": int(self.deadline_exceeded),
        }


@dataclass
class ParseResult:
    """Output of one parse: maximal partial trees plus bookkeeping."""

    trees: list[Instance]
    tokens: list[Token]
    instances: list[Instance] = field(default_factory=list)
    stats: ParseStats = field(default_factory=ParseStats)

    @property
    def covered(self) -> frozenset[int]:
        """Token ids covered by the maximal trees."""
        return covered_tokens(self.trees)

    @property
    def uncovered_tokens(self) -> list[Token]:
        """Tokens no maximal tree interprets (the merger's "missing")."""
        covered = self.covered
        return [token for token in self.tokens if token.id not in covered]

    @property
    def is_complete(self) -> bool:
        """True when a single tree covers every token."""
        return len(self.trees) == 1 and len(self.covered) == len(self.tokens)

    def complete_parses(self, start_symbol: str = "QI") -> list[Instance]:
        """All start-symbol instances covering every token.

        In exhaustive mode each is one alternative complete interpretation
        (the paper counts 25 such parse trees for the Figure 5 fragment);
        in best-effort mode at most the surviving ones remain.
        """
        everything = frozenset(token.id for token in self.tokens)
        return [
            instance
            for instance in self.instances
            if instance.symbol == start_symbol and instance.coverage == everything
        ]

    def temporary_instances(self) -> list[Instance]:
        """Instances that ended up in no maximal tree (paper Section 4.2.1).

        These are the "temporary instances" whose proliferation the
        just-in-time pruning exists to control.
        """
        useful: set[int] = set()
        for tree in self.trees:
            for node in tree.descendants():
                useful.add(node.uid)
        return [
            instance
            for instance in self.instances
            if instance.uid not in useful and not instance.is_terminal
        ]


class _ParseState:
    """Per-parse mutable bookkeeping shared by the construction phases."""

    __slots__ = (
        "store",
        "all_instances",
        "winner_symbols",
        "winner_index",
        "masked_enforcement",
        "preference_watermark",
        "dirty_symbols",
        "instances_left",
        "combos_left",
        "compacted_at_kills",
    )

    def __init__(
        self,
        instances_left: int,
        combos_left: int,
        winner_symbols: frozenset[str] = frozenset(),
    ):
        self.store: dict[str, list[Instance]] = {}
        self.all_instances: list[Instance] = []
        #: Symbols that can win some preference: only their instances are
        #: token-indexed, so ``_find_winner`` scans winner candidates only
        #: and ``register`` skips the reverse index for everything else.
        self.winner_symbols = winner_symbols
        self.winner_index: dict[str, dict[int, list[Instance]]] = {}
        #: When True every preference is enforced through vectorized
        #: coverage-mask comparisons and no token index is maintained
        #: (vector kernel with machine-word-sized masks only).
        self.masked_enforcement = False
        #: Per-preference enforcement watermark: the highest instance
        #: ``uid`` registered when the preference was last enforced.
        #: Winner/loser pairs that both predate the watermark were already
        #: tested then (preference predicates are pure functions of the
        #: immutable instance data, so a no-win verdict is permanent) and
        #: are skipped on later passes.
        self.preference_watermark: dict[int, int] = {}
        #: Symbols whose store pool currently contains dead instances --
        #: pool snapshots must filter those; clean pools can be aliased.
        self.dirty_symbols: set[str] = set()
        self.instances_left = instances_left
        self.combos_left = combos_left
        self.compacted_at_kills = 0

    def register(self, instance: Instance) -> None:
        symbol = instance.symbol
        pool = self.store.get(symbol)
        if pool is None:
            self.store[symbol] = [instance]
        else:
            pool.append(instance)
        self.all_instances.append(instance)
        if symbol in self.winner_symbols:
            index = self.winner_index.get(instance.symbol)
            if index is None:
                index = self.winner_index[instance.symbol] = {}
            mask = instance.coverage_mask
            while mask:
                low = mask & -mask
                mask ^= low
                token_id = low.bit_length() - 1
                bucket = index.get(token_id)
                if bucket is None:
                    index[token_id] = [instance]
                else:
                    bucket.append(instance)

    def compact(self) -> None:
        """Drop dead instances from the lookup lists.

        ``all_instances`` keeps everything (maximization and the result
        object need the dead for accounting); only the ``store`` pools and
        the winner token index -- the structures preference enforcement
        and pool snapshots iterate -- are compacted.  Relative order is
        preserved, so enumeration order and winner selection are
        unaffected.
        """
        for instances in self.store.values():
            if any(not instance.alive for instance in instances):
                instances[:] = [i for i in instances if i.alive]
        for index in self.winner_index.values():
            for instances in index.values():
                if any(not instance.alive for instance in instances):
                    instances[:] = [i for i in instances if i.alive]
        self.dirty_symbols.clear()


class _SymbolBudget:
    """Combination allowance for one symbol's fix-point."""

    __slots__ = ("combos_left",)

    def __init__(self, combos_left: int):
        self.combos_left = combos_left


class _SpatialMemo:
    """Memoized spatial evaluations for one symbol's fix-point.

    Two tables, both keyed on interned identities (instance ``uid`` ints
    plus the ``id`` of the production-owned check tuple, which is alive for
    the grammar's lifetime):

    * ``pairs`` -- ``(id(check), anchor_uid, candidate_uid) -> bool``
      verdicts of individual axis-envelope predicates;
    * ``bands`` -- ``(id(check), anchor_uid) -> list`` results of a
      :class:`BandIndex` query for a given anchor (the indexed pool is
      frozen for the whole fix-point, so the query result is stable).

    Scoped to one symbol's fix-point: component pools are frozen for its
    duration, and discarding the memo afterwards keeps ``id()``-based keys
    safe from address reuse across symbols.
    """

    __slots__ = ("pairs", "bands", "selections")

    def __init__(self) -> None:
        self.pairs: dict[tuple[int, int, int], bool] = {}
        self.bands: dict[tuple[int, int], list[Instance]] = {}
        #: ``(id(checks), *anchor_uids) -> list`` -- full
        #: :meth:`GeometryTable.select` results for one position's check
        #: tuple against one anchor binding (vector kernel only).
        self.selections: dict[tuple[int, ...], list[Instance]] = {}


class BestEffortParser:
    """Parser for a 2P grammar over visual tokens.

    Args:
        grammar: The 2P grammar to parse with.
        config: Parser tunables (see :class:`ParserConfig`).
        validate_grammar: When ``True``, run the static analyzer
            (:func:`repro.analysis.analyze_grammar`) on *grammar* and
            raise :class:`~repro.analysis.GrammarDiagnosticsError` if any
            error-severity diagnostic is found -- fast-fail instead of
            silently parsing worse.  Off by default: the analyzer is
            imported lazily, so the default path carries zero overhead.
    """

    def __init__(
        self,
        grammar: TwoPGrammar,
        config: ParserConfig | None = None,
        validate_grammar: bool = False,
    ):
        from repro.grammar.cache import cached_schedule

        if validate_grammar:
            from repro.analysis import analyze_grammar

            analyze_grammar(grammar).raise_if_errors()
        self.grammar = grammar
        self.config = config or ParserConfig()
        #: The concrete kernel (``"vector"``/``"scalar"``) this parser
        #: runs -- resolved once at construction so a ``"vector"`` request
        #: without numpy fails here, not mid-parse.
        self.kernel: str = resolve_kernel(self.config.kernel)
        self.schedule: Schedule = cached_schedule(grammar)
        self._winner_symbols = frozenset(
            preference.winner_symbol for preference in grammar.preferences
        )
        #: Preferences whose condition is the well-known ``subsumes``
        #: predicate get a dedicated enforcement fast path (see
        #: ``_find_subsuming_winner``).
        self._subsume_preferences = frozenset(
            id(preference)
            for preference in grammar.preferences
            if preference.condition is subsumes
        )
        #: ``grammar.preferences_involving`` rebuilt per call scans every
        #: preference; the schedule's symbol set is fixed, so snapshot the
        #: answer per symbol once.
        self._preferences_by_symbol: dict[str, tuple[Preference, ...]] = {
            symbol: tuple(grammar.preferences_involving(symbol))
            for symbol in self.schedule.order
        }

    # -- public API -------------------------------------------------------------

    def parse(
        self, tokens: list[Token], guard: ResourceGuard | None = None
    ) -> ParseResult:
        """Parse *tokens* into maximum partial trees (never raises on input).

        A degrade-mode *guard* deadline behaves exactly like budget
        exhaustion: construction stops at a clean point, the trees built
        so far are maximized, and ``stats.deadline_exceeded`` is set
        alongside ``stats.truncated``.  (A raise-mode guard propagates
        ``BudgetExceeded`` instead -- an explicit caller opt-out of the
        never-raises contract.)
        """
        started = time.perf_counter()
        stats = ParseStats(tokens=len(tokens))
        if self.config.evaluation == "seminaive":
            stats.kernel = self.kernel
        combos_budget = self.config.max_combos
        if guard is not None and guard.limits.max_combos is not None:
            combos_budget = min(combos_budget, guard.limits.max_combos)
        # Mask-based preference enforcement needs every coverage mask to
        # fit a numpy ``uint64``, i.e. all token ids below 64 -- true for
        # every realistic form, checked explicitly so hand-built token
        # streams with large ids fall back to the per-token winner index.
        # When it applies, the per-token winner index is never built at
        # all (``winner_symbols`` empty), which removes one index insert
        # per covered token per winner-symbol instance from the hot path.
        masked = self.kernel == "vector" and all(
            token.id < 64 for token in tokens
        )
        state = _ParseState(
            instances_left=self.config.max_instances,
            combos_left=combos_budget,
            winner_symbols=(
                frozenset() if masked else self._winner_symbols
            ),
        )
        state.masked_enforcement = masked
        gc_paused = self.config.pause_gc and gc.isenabled()
        if gc_paused:
            gc.disable()
        try:
            for token in tokens:
                state.register(Instance.for_token(token))

            for symbol in self.schedule.order:
                if guard is not None and guard.over_deadline("parse"):
                    stats.truncated = True
                    stats.deadline_exceeded = True
                    break
                created = self._instantiate(symbol, state, stats, guard)
                state.instances_left -= created
                exhausted = (
                    state.instances_left <= 0
                    or state.combos_left <= 0
                    or stats.deadline_exceeded
                )
                if exhausted:
                    stats.truncated = True
                if self.config.enable_preferences:
                    for preference in self._preferences_by_symbol.get(
                        symbol, ()
                    ):
                        self._enforce(preference, state, stats)
                    self._maybe_compact(state, stats)
                if exhausted:
                    break

            construction_done = time.perf_counter()
            stats.construction_seconds = construction_done - started
            trees = maximal_roots(state.all_instances)
            stats.maximization_seconds = time.perf_counter() - construction_done
        finally:
            if gc_paused:
                gc.enable()
        stats.elapsed_seconds = time.perf_counter() - started
        return ParseResult(
            trees=trees,
            tokens=tokens,
            instances=state.all_instances,
            stats=stats,
        )

    # -- phase 1: fix-point instantiation ------------------------------------------

    def _instantiate(
        self,
        symbol: str,
        state: _ParseState,
        stats: ParseStats,
        guard: ResourceGuard | None = None,
    ) -> int:
        """Run ``instantiate(A)`` (paper Figure 11); return #created."""
        productions = self.grammar.productions_for(symbol)
        if not productions:
            return 0
        # Per-symbol combination allowance: proportional to the instance
        # budget remaining for this parse, so a pathological production
        # cannot burn the combination budget owed to later symbols.
        cap = _SymbolBudget(
            self.config.max_combos_per_instance * max(1, state.instances_left)
        )
        if self.config.evaluation == "naive":
            created = self._instantiate_naive(
                symbol, productions, state, cap, stats, guard
            )
        else:
            created = self._instantiate_seminaive(
                symbol, productions, state, cap, stats, guard
            )
        if cap.combos_left <= 0:
            stats.symbol_truncations += 1
        return created

    def _instantiate_seminaive(
        self,
        symbol: str,
        productions: list[Production],
        state: _ParseState,
        cap: _SymbolBudget,
        stats: ParseStats,
        guard: ResourceGuard | None = None,
    ) -> int:
        """Frontier-based fix-point: round *k* only enumerates combinations
        containing at least one instance created in round *k - 1*."""
        store = state.store
        dirty = state.dirty_symbols
        # Pools of non-head components are frozen for the whole fix-point:
        # no other symbol is instantiated and no preference is enforced
        # until this symbol completes, so snapshot (and index) them once.
        # A store pool with no tombstones is aliased outright -- it cannot
        # mutate until this fix-point ends (only the head symbol's pool
        # grows, and compaction runs between symbols, never during one).
        fixed_pools: dict[str, list[Instance]] = {}
        for production in productions:
            for component in production.components:
                if component != symbol and component not in fixed_pools:
                    pool = store.get(component)
                    if pool is None:
                        fixed_pools[component] = []
                    elif component in dirty:
                        fixed_pools[component] = [
                            inst for inst in pool if inst.alive
                        ]
                    else:
                        fixed_pools[component] = pool
        indexes: dict[str, BandIndex] = {}
        tables: dict[str, GeometryTable] = {}
        memo = _SpatialMemo() if self.config.memoize_spatial else None
        recursive = [p for p in productions if symbol in p.components]
        # The head pool grows during the fix-point, so it is always a copy.
        head_store = store.get(symbol, [])
        head_pool: list[Instance] = (
            [inst for inst in head_store if inst.alive]
            if symbol in dirty
            else list(head_store)
        )
        created_total = 0
        delta_len = 0
        first_round = True
        stop = False
        while True:
            stats.fixpoint_rounds += 1
            new_instances: list[Instance] = []
            old_len = len(head_pool) - delta_len
            for production in productions if first_round else recursive:
                plans = self._round_plans(
                    production, symbol, fixed_pools, head_pool, old_len,
                    first_round,
                )
                for pools in plans:
                    remaining = (
                        state.instances_left - created_total - len(new_instances)
                    )
                    if remaining <= 0:
                        stats.truncated = True
                        stop = True
                        break
                    new_instances.extend(
                        self._apply_seminaive(
                            production, pools, fixed_pools, indexes, tables,
                            memo, state, cap, stats, remaining, guard,
                        )
                    )
                    if (
                        cap.combos_left <= 0
                        or state.combos_left <= 0
                        or stats.deadline_exceeded
                    ):
                        stats.truncated = True
                        stop = True
                        break
                if stop:
                    break
            for instance in new_instances:
                state.register(instance)
                head_pool.append(instance)
            created_total += len(new_instances)
            delta_len = len(new_instances)
            first_round = False
            if stop or not new_instances:
                return created_total

    @staticmethod
    def _round_plans(
        production: Production,
        symbol: str,
        fixed_pools: dict[str, list[Instance]],
        head_pool: list[Instance],
        old_len: int,
        first_round: bool,
    ) -> list[list[list[Instance]]]:
        """Pool assignments enumerating this round's new combinations.

        First round: one plan over the full pools.  Later rounds: the
        frontier (instances created last round, the tail of *head_pool*)
        must appear in at least one head-component position; the standard
        semi-naive partition assigns, for each head position *d*, the
        frontier to *d*, only pre-frontier instances to head positions
        before *d*, and the full pool to head positions after *d* --
        exactly the combinations not enumerated in any earlier round, each
        exactly once.
        """
        components = production.components
        if first_round:
            return [
                [
                    head_pool if component == symbol else fixed_pools[component]
                    for component in components
                ]
            ]
        growing = [
            index for index, component in enumerate(components)
            if component == symbol
        ]
        old = head_pool[:old_len]
        delta = head_pool[old_len:]
        plans: list[list[list[Instance]]] = []
        for d in growing:
            pools: list[list[Instance]] = []
            for index, component in enumerate(components):
                if component != symbol:
                    pools.append(fixed_pools[component])
                elif index < d:
                    pools.append(old)
                elif index == d:
                    pools.append(delta)
                else:
                    pools.append(head_pool)
            plans.append(pools)
        return plans

    def _apply_seminaive(
        self,
        production: Production,
        pools: list[list[Instance]],
        fixed_pools: dict[str, list[Instance]],
        indexes: dict[str, BandIndex],
        tables: dict[str, GeometryTable],
        memo: _SpatialMemo | None,
        state: _ParseState,
        cap: _SymbolBudget,
        stats: ParseStats,
        budget: int,
        guard: ResourceGuard | None = None,
    ) -> list[Instance]:
        """Apply one production over one pool plan, creating at most
        *budget* new instances."""
        for pool in pools:
            if not pool:
                return []
        created: list[Instance] = []
        tick = guard.tick if guard is not None else None
        try_apply = production.try_apply
        append = created.append
        # Budget counters are mirrored into locals for the duration of the
        # enumeration (one attribute store per *combination* adds up) and
        # written back in ``finally`` so a raise-mode guard's exception
        # still leaves the shared accounting exact.
        budget_left = budget
        cap_left = cap.combos_left
        state_left = state.combos_left
        examined = 0
        try:
            for combo in self._combos(
                production, pools, fixed_pools, indexes, tables, memo, stats
            ):
                if budget_left <= 0 or cap_left <= 0 or state_left <= 0:
                    stats.truncated = True
                    break
                if tick is not None and tick("parse"):
                    stats.truncated = True
                    stats.deadline_exceeded = True
                    break
                cap_left -= 1
                state_left -= 1
                examined += 1
                instance = try_apply(combo)
                if instance is not None:
                    budget_left -= 1
                    append(instance)
        finally:
            cap.combos_left = cap_left
            state.combos_left = state_left
            stats.combos_examined += examined
            stats.instances_created += len(created)
        return created

    def _combos(
        self,
        production: Production,
        pools: list[list[Instance]],
        fixed_pools: dict[str, list[Instance]],
        indexes: dict[str, BandIndex],
        tables: dict[str, GeometryTable],
        memo: _SpatialMemo | None,
        stats: ParseStats,
    ) -> Iterator[tuple[Instance, ...]]:
        """Enumerate candidate combinations, pre-filtered by the
        production's declarative spatial bounds.

        Candidates at every position are visited in ``uid`` order (the
        pool order), whether produced by a plain filtered scan, a
        :class:`BandIndex` query, or a vectorized
        :meth:`GeometryTable.select`, so the combination order matches the
        naive cartesian product with bound-violating combinations
        removed.  With *memo* set, predicate verdicts, band queries, and
        vector selections already evaluated this fix-point are reused
        instead of recomputed (``ParseStats.spatial_memo_hits``); the
        selected candidates are identical either way.
        """
        components = production.components
        bounds_by_target = production.bounds_by_target
        n = len(pools)
        if n == 1:
            for instance in pools[0]:
                yield (instance,)
            return
        if not production.bounds:
            yield from itertools.product(*pools)
            return
        combo: list[Instance] = [None] * n  # type: ignore[list-item]
        vector = self.kernel == "vector"
        # Memoization only pays off for productions with >= 3 components:
        # a pair verdict (or a band query for the same anchor) can only
        # recur when a *third* position varies between two visits; with
        # two components each anchor is visited exactly once per plan, so
        # both tables would be pure dict overhead (measured as a ~10%
        # slowdown on the standard grammar, where 2-component productions
        # dominate and contribute zero memo hits).
        pair_memo = memo if n >= 3 else None

        def candidates(position: int) -> list[Instance]:
            pool = pools[position]
            checks = bounds_by_target[position]
            if not checks:
                return pool
            # Indexed path: the pool is the frozen full pool of a fixed
            # component, large enough that indexing beats a linear scan.
            component = components[position]
            fixed = fixed_pools.get(component)
            indexable = (
                fixed is not None
                and pool is fixed
                and len(pool) >= MIN_INDEXED_POOL
            )
            if vector and indexable:
                # Columnar path: evaluate the whole check conjunction over
                # the pool as vectorized interval masks.
                table = tables.get(component)
                if table is None:
                    table = tables[component] = GeometryTable(pool)
                if pair_memo is not None:
                    selection_key = (id(checks),) + tuple(
                        combo[check[0]].uid for check in checks
                    )
                    selected = pair_memo.selections.get(selection_key)
                    if selected is None:
                        selected = table.select(checks, combo)
                        pair_memo.selections[selection_key] = selected
                    else:
                        stats.spatial_memo_hits += 1
                else:
                    selected = table.select(checks, combo)
                stats.combos_prefiltered += len(pool) - len(selected)
                return selected
            primary = None
            if indexable:
                for check in checks:
                    if check[2] is not None:  # needs a vertical bound
                        primary = check
                        break
            if primary is not None:
                index = indexes.get(component)
                if index is None:
                    assert fixed is not None  # implied by ``indexable``
                    index = BandIndex(fixed)
                    indexes[component] = index
                anchor, h_spec, v_spec = primary
                anchor_inst = combo[anchor]
                if pair_memo is not None:
                    band_key = (id(primary), anchor_inst.uid)
                    banded = pair_memo.bands.get(band_key)
                    if banded is None:
                        banded = index.near(anchor_inst.bbox, h_spec, v_spec)
                        pair_memo.bands[band_key] = banded
                    else:
                        stats.spatial_memo_hits += 1
                else:
                    banded = index.near(anchor_inst.bbox, h_spec, v_spec)
                if len(checks) > 1:
                    # Build a fresh list: ``banded`` may be a memoized
                    # object shared with later queries.
                    selected = [
                        cand for cand in banded
                        if self._passes(
                            cand, checks, combo, skip=primary,
                            memo=pair_memo, stats=stats,
                        )
                    ]
                else:
                    selected = banded
                stats.combos_prefiltered += len(pool) - len(selected)
                return selected
            selected = [
                cand for cand in pool
                if self._passes(
                    cand, checks, combo, memo=pair_memo, stats=stats
                )
            ]
            stats.combos_prefiltered += len(pool) - len(selected)
            return selected

        def expand(position: int) -> Iterator[tuple[Instance, ...]]:
            if position == n:
                yield tuple(combo)
                return
            for candidate in candidates(position):
                combo[position] = candidate
                yield from expand(position + 1)

        if n == 2:
            # Binary productions dominate practical 2P grammars, so unroll
            # the recursive expansion into two plain loops.  Position 0
            # never carries checks (bounds require ``i < j``), and every
            # check at position 1 anchors on position 0 -- which is what
            # lets the vector kernel answer the whole plan with one
            # batched ``select_rows`` matrix instead of one ``select``
            # call per anchor.
            pool0, pool1 = pools
            checks1 = bounds_by_target[1]
            component1 = components[1]
            fixed1 = fixed_pools.get(component1)
            if (
                vector
                and checks1
                and fixed1 is not None
                and pool1 is fixed1
                and len(pool1) >= MIN_INDEXED_POOL
            ):
                table = tables.get(component1)
                if table is None:
                    table = tables[component1] = GeometryTable(pool1)
                selections = table.select_rows(checks1, pool0)
                base = len(pool1)
                # Per-anchor accounting stays lazy (counted when the
                # enumeration reaches the anchor), matching the scalar
                # path under early budget breaks.
                for row, anchor in enumerate(pool0):
                    selected = selections[row]
                    stats.combos_prefiltered += base - len(selected)
                    for candidate in selected:
                        yield (anchor, candidate)
                return
            for anchor in pool0:
                combo[0] = anchor
                for candidate in candidates(1):
                    yield (anchor, candidate)
            return

        yield from expand(0)

    @staticmethod
    def _passes(
        candidate: Instance,
        checks: tuple[tuple, ...],
        combo: list[Instance],
        skip: tuple | None = None,
        memo: _SpatialMemo | None = None,
        stats: ParseStats | None = None,
    ) -> bool:
        box = candidate.bbox
        for check in checks:
            if check is skip:
                continue
            anchor, h_spec, v_spec = check
            anchor_inst = combo[anchor]
            if memo is not None:
                # Checks are tuples owned by the (frozen) production and
                # instances are interned by uid, so identity keys are
                # stable for the whole fix-point this memo spans.
                pair_key = (id(check), anchor_inst.uid, candidate.uid)
                verdict = memo.pairs.get(pair_key)
                if verdict is not None:
                    if stats is not None:
                        stats.spatial_memo_hits += 1
                    if verdict:
                        continue
                    return False
                other = anchor_inst.bbox
                verdict = h_allows(h_spec, other, box) and v_allows(
                    v_spec, other, box
                )
                memo.pairs[pair_key] = verdict
                if not verdict:
                    return False
                continue
            other = anchor_inst.bbox
            if not h_allows(h_spec, other, box):
                return False
            if not v_allows(v_spec, other, box):
                return False
        return True

    # -- naive baseline (the original loop, kept for equivalence) -------------------

    def _instantiate_naive(
        self,
        symbol: str,
        productions: list[Production],
        state: _ParseState,
        cap: _SymbolBudget,
        stats: ParseStats,
        guard: ResourceGuard | None = None,
    ) -> int:
        """The original fix-point: full cartesian re-enumeration each round
        with a ``seen_keys`` dedup set and no spatial pre-filtering."""
        seen_keys: set[tuple[str, tuple[int, ...]]] = set()
        created_total = 0
        stop = False
        while True:
            stats.fixpoint_rounds += 1
            new_instances: list[Instance] = []
            for production in productions:
                remaining = (
                    state.instances_left - created_total - len(new_instances)
                )
                if remaining <= 0:
                    stats.truncated = True
                    stop = True
                    break
                new_instances.extend(
                    self._apply_naive(
                        production, state, seen_keys, cap, stats, remaining,
                        guard,
                    )
                )
                if (
                    cap.combos_left <= 0
                    or state.combos_left <= 0
                    or stats.deadline_exceeded
                ):
                    stats.truncated = True
                    stop = True
                    break
            for instance in new_instances:
                state.register(instance)
            created_total += len(new_instances)
            if stop or not new_instances:
                return created_total

    def _apply_naive(
        self,
        production: Production,
        state: _ParseState,
        seen_keys: set[tuple[str, tuple[int, ...]]],
        cap: _SymbolBudget,
        stats: ParseStats,
        budget: int,
        guard: ResourceGuard | None = None,
    ) -> list[Instance]:
        """Apply one production against the current live instances,
        creating at most *budget* new instances."""
        pools: list[list[Instance]] = []
        for component in production.components:
            pool = [
                inst for inst in state.store.get(component, []) if inst.alive
            ]
            if not pool:
                return []
            pools.append(pool)
        created: list[Instance] = []
        for combo in itertools.product(*pools):
            if (
                len(created) >= budget
                or cap.combos_left <= 0
                or state.combos_left <= 0
            ):
                stats.truncated = True
                break
            if guard is not None and guard.tick("parse"):
                stats.truncated = True
                stats.deadline_exceeded = True
                break
            key = (production.name, tuple(inst.uid for inst in combo))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            cap.combos_left -= 1
            state.combos_left -= 1
            stats.combos_examined += 1
            instance = production.try_apply(combo)
            if instance is not None:
                stats.instances_created += 1
                created.append(instance)
        return created

    # -- just-in-time pruning ---------------------------------------------------------

    def _enforce(
        self,
        preference: Preference,
        state: _ParseState,
        stats: ParseStats,
    ) -> None:
        """Enforce one preference: invalidate losers, roll back ancestors.

        Winner candidates come from the incrementally-maintained
        per-winner-symbol token index (buckets in registration order,
        matching the old global reverse index), so each loser scans only
        same-token *winner-symbol* instances instead of every instance
        sharing a token.

        Enforcement is additionally *incremental* across passes: a
        winner/loser pair where both instances predate this preference's
        watermark was already tested the last time the preference ran, and
        a no-win verdict is permanent (predicates are pure, ancestry and
        coverage are immutable, and dead instances never resurrect) -- so
        old losers are only retested against winners registered since.
        """
        watermark = state.preference_watermark.get(id(preference), -1)
        all_instances = state.all_instances
        state.preference_watermark[id(preference)] = (
            all_instances[-1].uid if all_instances else -1
        )
        loser_pool = state.store.get(preference.loser_symbol)
        if not loser_pool:
            return
        winner_pool = state.store.get(preference.winner_symbol)
        if not winner_pool:
            return
        if (
            0 <= watermark
            and loser_pool[-1].uid <= watermark
            and winner_pool[-1].uid <= watermark
        ):
            # Neither pool has grown since the last pass (pools are
            # uid-ordered, so the tail uid bounds everything): every
            # surviving pair was already tested then, and no-win verdicts
            # are permanent.
            return
        losers = [inst for inst in loser_pool if inst.alive]
        if not losers:
            return
        subsume = id(preference) in self._subsume_preferences
        if state.masked_enforcement:
            self._enforce_masked(
                preference, losers, winner_pool, watermark, stats, subsume,
                state.dirty_symbols,
            )
            return
        winners_by_token = state.winner_index.get(preference.winner_symbol)
        if not winners_by_token:
            return
        for loser in losers:
            if not loser.alive:
                continue  # may have died from an earlier rollback this pass
            min_uid = watermark + 1 if loser.uid <= watermark else 0
            if subsume:
                winner = self._find_subsuming_winner(
                    preference, loser, winners_by_token, min_uid
                )
            else:
                winner = self._find_winner(
                    preference, loser, winners_by_token, min_uid
                )
            if winner is not None:
                stats.preference_applications += 1
                self._rollback(loser, stats, state.dirty_symbols)

    def _enforce_masked(
        self,
        preference: Preference,
        losers: list[Instance],
        winner_pool: list[Instance],
        watermark: int,
        stats: ParseStats,
        subsume: bool,
        dirty: set[str],
    ) -> None:
        """Vectorized preference enforcement over coverage bitmasks.

        With the vector kernel no per-token winner index exists at all;
        instead the loser x winner candidacy relation is evaluated as one
        numpy boolean matrix over the ``uint64`` coverage masks -- strict
        superset for ``subsumes`` preferences (the condition itself),
        plain intersection for everything else (the shared-token join the
        token index used to provide).  A kill only depends on *whether*
        some candidate beats the loser, not on which one is found first,
        so scanning candidates in uid order instead of bucket order
        leaves the kill sequence -- and every counter -- identical to the
        scalar path's.

        Rows are only decoded for losers still alive when the scan
        reaches them: each kill rolls back whole derivation chains, so
        most rows die before their turn and their (potentially dense)
        ancestor-chain hits are never materialized.  The full loser x
        winner matrix is only materialized while it stays small;
        degenerate forms (hundreds of thousands of instances in one
        pool) instead compute each alive loser's hit row on demand,
        keeping peak memory at O(winners) regardless of pool size.
        """
        numpy = _load_numpy()
        winner_masks = numpy.fromiter(
            (candidate.coverage_mask for candidate in winner_pool),
            dtype=numpy.uint64,
            count=len(winner_pool),
        )
        hits = None
        if len(winner_pool) * len(losers) <= _MASKED_MATRIX_CELLS:
            loser_masks = numpy.fromiter(
                (loser.coverage_mask for loser in losers),
                dtype=numpy.uint64,
                count=len(losers),
            ).reshape(-1, 1)
            if subsume:
                hits = (winner_masks & loser_masks) == loser_masks
                hits &= winner_masks != loser_masks
            else:
                hits = (winner_masks & loser_masks) != 0
        uint64 = numpy.uint64
        flatnonzero = numpy.flatnonzero
        condition = preference.condition
        criteria = preference.criteria
        for row, loser in enumerate(losers):
            if not loser.alive:  # may have died from an earlier rollback
                continue
            min_uid = watermark + 1 if loser.uid <= watermark else 0
            loser_uid = loser.uid
            loser_descendants: frozenset[int] | None = None
            if hits is not None:
                row_hits = hits[row]
            else:
                mask = uint64(loser.coverage_mask)
                if subsume:
                    row_hits = (winner_masks & mask) == mask
                    row_hits &= winner_masks != mask
                else:
                    row_hits = (winner_masks & mask) != 0
            for col in flatnonzero(row_hits).tolist():
                candidate = winner_pool[col]
                if candidate.uid < min_uid or not candidate.alive:
                    continue
                if loser_descendants is None:
                    loser_descendants = loser.descendant_uids()
                if candidate.uid in loser_descendants:
                    continue  # the loser derives from the candidate
                candidate_descendants = candidate._descendant_uids
                if candidate_descendants is None:
                    candidate_descendants = candidate.descendant_uids()
                if loser_uid in candidate_descendants:
                    continue  # the candidate derives from the loser
                if not subsume and not condition(candidate, loser):
                    continue
                if criteria(candidate, loser):
                    stats.preference_applications += 1
                    self._rollback(loser, stats, dirty)
                    break

    def _maybe_compact(self, state: _ParseState, stats: ParseStats) -> None:
        """Compact the lookup lists once enough instances have died.

        Amortized: a sweep costs O(live + dead) and only runs after the
        dead amount to a quarter of everything registered, so
        ``_find_winner`` and pool snapshots never scan long runs of
        tombstones.
        """
        kills = stats.instances_pruned + stats.rollback_kills
        dead_since = kills - state.compacted_at_kills
        if dead_since * 4 >= max(64, len(state.all_instances)):
            state.compact()
            state.compacted_at_kills = kills

    @staticmethod
    def _find_winner(
        preference: Preference,
        loser: Instance,
        winners_by_token: dict[int, list[Instance]],
        min_uid: int = 0,
    ) -> Instance | None:
        """A live winner-type instance that beats *loser*, if any.

        *winners_by_token* holds only winner-symbol instances (indexed by
        covered token, in registration order), so sharing a bucket already
        implies sharing a token with *loser*.  Candidates with
        ``uid < min_uid`` are skipped -- the caller guarantees those pairs
        were tested (and lost) on an earlier enforcement pass.
        """
        seen: set[int] = set()
        loser_descendants: frozenset[int] | None = None
        condition = preference.condition
        criteria = preference.criteria
        for token_id in loser.coverage:
            bucket = winners_by_token.get(token_id)
            if not bucket:
                continue
            if min_uid > 0:
                # Buckets are uid-sorted; jump over the already-tested
                # prefix instead of filtering it one element at a time.
                start = bisect_left(bucket, min_uid, key=_uid_key)
                if start:
                    bucket = bucket[start:]
            for candidate in bucket:
                if candidate.alive and candidate.uid not in seen:
                    seen.add(candidate.uid)
                    # Inlined Preference.applies(): symbols are fixed by
                    # the index and the shared token by the bucket join,
                    # leaving the no-composition (ancestry) test -- with
                    # the loser's descendant set hoisted out of the pair
                    # loop -- and the rule's own predicates.
                    if loser_descendants is None:
                        loser_descendants = loser.descendant_uids()
                    if candidate.uid in loser_descendants:
                        continue  # the loser derives from the candidate
                    candidate_descendants = candidate._descendant_uids
                    if candidate_descendants is None:
                        candidate_descendants = candidate.descendant_uids()
                    if loser.uid in candidate_descendants:
                        continue  # the candidate derives from the loser
                    if condition(candidate, loser) and criteria(
                        candidate, loser
                    ):
                        return candidate
        return None

    @staticmethod
    def _find_subsuming_winner(
        preference: Preference,
        loser: Instance,
        winners_by_token: dict[int, list[Instance]],
        min_uid: int = 0,
    ) -> Instance | None:
        """`_find_winner` specialized for ``condition is subsumes``.

        A subsuming winner covers *every* token the loser covers, so it
        appears in every one of the loser's buckets -- scanning just the
        smallest such bucket examines every possible winner exactly once
        (no dedup set needed), and an empty bucket proves no winner
        exists.  The subsumption condition itself runs as two int-mask
        operations instead of a frozenset comparison.  Which winner is
        *returned* may differ from the generic scan when several apply;
        enforcement only uses the winner's existence, so the kill set is
        identical.
        """
        bucket: list[Instance] | None = None
        for token_id in loser.coverage:
            candidates = winners_by_token.get(token_id)
            if not candidates:
                return None
            if bucket is None or len(candidates) < len(bucket):
                bucket = candidates
        if bucket is None:
            return None
        if min_uid > 0:
            # uid-sorted bucket: skip the watermark-cleared prefix outright.
            start = bisect_left(bucket, min_uid, key=_uid_key)
            if start:
                bucket = bucket[start:]
        loser_mask = loser.coverage_mask
        loser_uid = loser.uid
        loser_descendants: frozenset[int] | None = None
        criteria = preference.criteria
        for candidate in bucket:
            candidate_mask = candidate.coverage_mask
            if (
                candidate_mask & loser_mask == loser_mask
                and candidate_mask != loser_mask
                and candidate.alive
            ):
                if loser_descendants is None:
                    loser_descendants = loser.descendant_uids()
                if candidate.uid in loser_descendants:
                    continue
                candidate_descendants = candidate._descendant_uids
                if candidate_descendants is None:
                    candidate_descendants = candidate.descendant_uids()
                if loser_uid in candidate_descendants:
                    continue
                if criteria(candidate, loser):
                    return candidate
        return None

    def _rollback(
        self,
        instance: Instance,
        stats: ParseStats,
        dirty: set[str] | None = None,
    ) -> None:
        """Invalidate *instance* and every live ancestor built from it.

        *dirty* collects the symbols of killed instances so pool
        snapshots know which store lists now contain tombstones.
        """
        stack = [instance]
        first = True
        while stack:
            node = stack.pop()
            if not node.alive or node.is_terminal:
                continue
            node.alive = False
            if dirty is not None:
                dirty.add(node.symbol)
            if first:
                stats.instances_pruned += 1
                first = False
            else:
                stats.rollback_kills += 1
            stack.extend(parent for parent in node.parents if parent.alive)


class ExhaustiveParser(BestEffortParser):
    """The brute-force baseline of Section 4.2.1.

    Identical fix-point construction, but no preferences are ever enforced:
    every interpretation survives to the end, where only partial-tree
    maximization runs.  Used by the ablation benchmarks to reproduce the
    "773 instances / 25 parse trees" blow-up the paper reports for the
    amazon.com fragment.
    """

    def __init__(
        self,
        grammar: TwoPGrammar,
        config: ParserConfig | None = None,
        validate_grammar: bool = False,
    ):
        base = config or ParserConfig()
        super().__init__(
            grammar,
            replace(base, enable_preferences=False),
            validate_grammar=validate_grammar,
        )
