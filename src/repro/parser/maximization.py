"""Partial-tree maximization (paper Section 5.3).

When the grammar cannot interpret the whole interface, the parser ends with
many partial derivation trees.  The best-effort semantics keeps the
*maximum* ones: trees whose covered-token set is not subsumed by another
surviving tree's.  Overlapping-but-incomparable trees are all kept (the
merger will report their overlap as conflicts); a complete parse is the
special case that subsumes everything.
"""

from __future__ import annotations

from repro.grammar.instance import Instance


def candidate_roots(instances: list[Instance]) -> list[Instance]:
    """Live nonterminal instances that no live parent can extend further."""
    roots = []
    for instance in instances:
        if not instance.alive or instance.is_terminal:
            continue
        if any(parent.alive for parent in instance.parents):
            continue
        roots.append(instance)
    return roots


def maximal_roots(instances: list[Instance]) -> list[Instance]:
    """Maximum partial trees under token-coverage subsumption.

    A candidate is dropped when another candidate's coverage strictly
    contains its own.  Among candidates with identical coverage only one
    survives: the one with the larger derivation (more nodes -- "looking
    at larger context", Section 5.3), then the earlier-derived, keeping
    results deterministic.
    """
    candidates = candidate_roots(instances)
    # Sort once: larger coverage first, then richer interpretation, then
    # earlier derivation.  Coverage size and subsumption both run on the
    # int bitmask (popcount / masked AND) so no coverage set is decoded.
    candidates.sort(
        key=lambda inst: (-inst.coverage_mask.bit_count(), -inst.size(), inst.uid)
    )
    kept: list[Instance] = []
    for candidate in candidates:
        mask = candidate.coverage_mask
        subsumed = False
        for winner in kept:
            if mask & winner.coverage_mask == mask:
                subsumed = True
                break
        if not subsumed:
            kept.append(candidate)
    # Present trees in reading order.
    kept.sort(key=lambda inst: (inst.bbox.top, inst.bbox.left, inst.uid))
    return kept


def covered_tokens(roots: list[Instance]) -> frozenset[int]:
    """Union of the token ids covered by *roots*."""
    covered: set[int] = set()
    for root in roots:
        covered |= root.coverage
    return frozenset(covered)
