"""Resilience: resource guarding and best-effort degradation.

The paper's thesis is *best-effort* understanding -- "a parser that does
not give up" -- but that promise has to hold for the whole pipeline, not
just the 2P parser.  This package provides the two halves of that
guarantee:

* :class:`ResourceGuard` -- a cooperative budget (wall-clock deadline,
  DOM node and depth caps, token and combo ceilings, max input size)
  that every pipeline stage checks at loop boundaries.  In ``"raise"``
  mode a breach aborts with a typed :class:`BudgetExceeded`; in
  ``"degrade"`` mode stages truncate their output and record a
  :class:`GuardEvent` instead, so callers can keep partial results.
* The degradation ladder (:mod:`repro.resilience.ladder`) -- the ordered
  quality levels ``full > capped > heuristic > minimal`` that
  :meth:`repro.extractor.FormExtractor.extract_resilient` walks down,
  emitting a :class:`DegradationReport` per downgrade so that quality
  traded for termination is always surfaced, never silent.
"""

from repro.resilience.guard import (
    BudgetExceeded,
    GuardEvent,
    ResourceGuard,
    ResourceLimits,
)
from repro.resilience.ladder import (
    LEVEL_CAPPED,
    LEVEL_FULL,
    LEVEL_HEURISTIC,
    LEVEL_MINIMAL,
    LEVELS,
    DegradationReport,
    ResilienceConfig,
    token_dump_model,
)

__all__ = [
    "BudgetExceeded",
    "DegradationReport",
    "GuardEvent",
    "LEVELS",
    "LEVEL_CAPPED",
    "LEVEL_FULL",
    "LEVEL_HEURISTIC",
    "LEVEL_MINIMAL",
    "ResilienceConfig",
    "ResourceGuard",
    "ResourceLimits",
    "token_dump_model",
]
