"""The degradation ladder: ordered quality levels and their reports.

When a stage breaches its budget or fails outright, the extractor does
not give up -- it steps down a ladder of progressively cheaper models:

* ``full``      -- the complete 2P parse; nothing was traded.
* ``capped``    -- the parse (or an upstream stage) was truncated by a
  budget: the best partial parse trees found so far are merged as-is.
* ``heuristic`` -- parse or merge failed entirely; the pairwise
  proximity baseline (:mod:`repro.baseline.heuristic`) runs on whatever
  tokens exist.
* ``minimal``   -- even the heuristic is unavailable: a token-dump
  model exposes one bare condition per input control (or an empty model
  when tokenization itself failed), so a client always receives *some*
  structured capability description.

Every downgrade is a :class:`DegradationReport` -- recorded in the
extraction warnings, tagged on the trace, and counted as a
``degrade.<level>`` metric -- so lost quality is observable, never
silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.guard import ResourceLimits
from repro.semantics.condition import Condition, Domain, SemanticModel
from repro.tokens.model import INPUT_TERMINALS, Token

#: Ladder levels, best first.
LEVEL_FULL = "full"
LEVEL_CAPPED = "capped"
LEVEL_HEURISTIC = "heuristic"
LEVEL_MINIMAL = "minimal"
LEVELS: tuple[str, ...] = (
    LEVEL_FULL, LEVEL_CAPPED, LEVEL_HEURISTIC, LEVEL_MINIMAL,
)


@dataclass(frozen=True)
class DegradationReport:
    """One recorded downgrade on the ladder.

    Attributes:
        level: The level the extraction landed on *because of* this event
            (``capped``, ``heuristic``, or ``minimal`` -- never ``full``).
        stage: Pipeline stage where the trigger occurred.
        reason: Human-readable cause (budget breach, exception, ...).
        resource: The breached budget name when the trigger was a
            :class:`~repro.resilience.guard.GuardEvent`, else ``None``.
    """

    level: str
    stage: str
    reason: str
    resource: str | None = None

    def describe(self) -> str:
        return f"degraded to {self.level} at {self.stage}: {self.reason}"


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables of :meth:`FormExtractor.extract_resilient`.

    Plain-data and picklable so the batch engine can ship it to pool
    workers via initargs.

    Attributes:
        limits: Budgets for the per-extraction
            :class:`~repro.resilience.guard.ResourceGuard`.
        heuristic_fallback: Allow the ``heuristic`` ladder level; when
            False a parse/merge failure steps straight to ``minimal``.
    """

    limits: ResourceLimits = field(default_factory=ResourceLimits)
    heuristic_fallback: bool = True


def token_dump_model(tokens: list[Token] | None) -> SemanticModel:
    """The ladder's last rung: one bare condition per input control.

    No label association, no grouping beyond shared radio/checkbox
    names -- just enough structure that a client sees which inputs the
    form exposes.  ``None`` / empty tokens yield an empty model.
    """
    conditions: list[Condition] = []
    seen_groups: set[str] = set()
    for token in tokens or []:
        if token.terminal not in INPUT_TERMINALS:
            continue
        name = token.name or ""
        if token.terminal in ("radiobutton", "checkbox"):
            group_key = f"{token.terminal}:{name}"
            if name and group_key in seen_groups:
                continue
            seen_groups.add(group_key)
            values = tuple(
                str(other.attrs.get("value", ""))
                for other in tokens or []
                if other.terminal == token.terminal
                and (other.name or "") == name
            )
            conditions.append(
                Condition(
                    attribute=name,
                    operators=("in",) if token.terminal == "checkbox" else ("=",),
                    domain=Domain("enum", values),
                    fields=(name,) if name else (),
                )
            )
        elif token.terminal in ("selectlist", "listbox"):
            values = tuple(
                option.label for option in token.options if option.label
            )
            conditions.append(
                Condition(
                    attribute=name,
                    operators=("=",),
                    domain=Domain("enum", values),
                    fields=(name,) if name else (),
                )
            )
        else:
            conditions.append(
                Condition(
                    attribute=name,
                    operators=("contains",),
                    domain=Domain("text"),
                    fields=(name,) if name else (),
                )
            )
    return SemanticModel(conditions=conditions)
