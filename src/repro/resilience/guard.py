"""Cooperative resource guarding for the extraction pipeline.

A :class:`ResourceGuard` is threaded through the pipeline stages
(``html.parser``, ``layout.engine``, ``tokens.tokenizer``,
``parser.parser``, ``merger``) and checked *cooperatively*: stages ask
the guard at loop boundaries whether they may continue, instead of being
interrupted by signals.  That keeps the mechanism portable (worker
threads, Windows, nested pools) and lets stages stop at a clean point
where partial output is still coherent.

Two modes:

* ``mode="raise"`` -- a breach raises :class:`BudgetExceeded`.  Used
  where no partial result is wanted (the batch engine's deadline
  fallback when ``SIGALRM`` is unavailable).
* ``mode="degrade"`` -- a breach records a :class:`GuardEvent` and the
  check returns a "stop now" answer; the stage truncates its output and
  the degradation ladder reports the event as a downgrade.  This is the
  paper-faithful best-effort behavior.

Deadline checks are strided (:meth:`ResourceGuard.tick`) so hot loops
pay one integer test per iteration and a clock read only every
``stride`` iterations -- guard overhead stays well under the 5% budget
on real batches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class BudgetExceeded(RuntimeError):
    """A pipeline stage ran past a :class:`ResourceGuard` limit.

    Attributes:
        resource: Which budget was breached (``"deadline"``, ``"nodes"``,
            ``"depth"``, ``"tokens"``, ``"input-bytes"``, ``"combos"``).
        stage: Pipeline stage that observed the breach.
        limit: The configured ceiling.
        observed: The value that crossed it.
    """

    def __init__(
        self, resource: str, stage: str, limit: float, observed: float
    ):
        self.resource = resource
        self.stage = stage
        self.limit = limit
        self.observed = observed
        super().__init__(
            f"{resource} budget exceeded in {stage}: "
            f"observed {observed:g} > limit {limit:g}"
        )


@dataclass(frozen=True)
class ResourceLimits:
    """The ceilings a :class:`ResourceGuard` enforces.

    Every field accepts ``None`` meaning "unlimited".  The defaults are
    generous -- far above anything a real query interface needs -- so the
    ladder's full level is untouched on well-formed pages, while entity
    bombs, 10k-deep nesting, and pathological fix-points still terminate.
    """

    deadline_seconds: float | None = 10.0
    max_input_bytes: int | None = 2_000_000
    max_nodes: int | None = 50_000
    max_depth: int | None = None  # None -> the stage's own structural cap
    max_tokens: int | None = 4_000
    max_combos: int | None = None  # None -> defer to ParserConfig budgets


@dataclass(frozen=True)
class GuardEvent:
    """One recorded budget breach (degrade mode)."""

    resource: str
    stage: str
    limit: float
    observed: float

    def describe(self) -> str:
        return (
            f"{self.resource} budget hit in {self.stage} "
            f"({self.observed:g} > {self.limit:g})"
        )


@dataclass
class ResourceGuard:
    """Cooperative budget checked by every pipeline stage.

    Call :meth:`start` to arm the wall-clock deadline, then hand the
    guard to the pipeline.  All check methods are cheap no-ops for
    budgets left at ``None``.

    The guard is *stateful* (node counter, tick counter, event list) and
    therefore scoped to one extraction -- build a fresh guard per form.
    """

    limits: ResourceLimits = field(default_factory=ResourceLimits)
    mode: str = "degrade"
    events: list[GuardEvent] = field(default_factory=list)
    _deadline: float | None = field(default=None, repr=False)
    _nodes: int = field(default=0, repr=False)
    _ticks: int = field(default=0, repr=False)
    _noted: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "degrade"):
            raise ValueError(f"unknown guard mode: {self.mode!r}")

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "ResourceGuard":
        """Arm the wall-clock deadline; returns ``self`` for chaining."""
        if self.limits.deadline_seconds is not None:
            self._deadline = (
                time.perf_counter() + self.limits.deadline_seconds
            )
        return self

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline, or ``None`` when unarmed."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.perf_counter())

    # -- breach bookkeeping -------------------------------------------------------

    def note(
        self, resource: str, stage: str, limit: float, observed: float
    ) -> None:
        """Record a breach once per (resource, stage); raise in raise mode."""
        key = (resource, stage)
        if key not in self._noted:
            self._noted.add(key)
            self.events.append(GuardEvent(resource, stage, limit, observed))
        if self.mode == "raise":
            raise BudgetExceeded(resource, stage, limit, observed)

    # -- deadline -----------------------------------------------------------------

    def over_deadline(self, stage: str) -> bool:
        """True (or raises) when the wall-clock deadline has passed."""
        if self._deadline is None:
            return False
        now = time.perf_counter()
        if now < self._deadline:
            return False
        limit = self.limits.deadline_seconds or 0.0
        self.note("deadline", stage, limit, limit + (now - self._deadline))
        return True

    def tick(self, stage: str, stride: int = 1024) -> bool:
        """Strided deadline check for hot loops.

        Reads the clock every *stride* calls; between reads it costs one
        increment and one comparison.  Returns True when the stage should
        stop (degrade mode) -- or raises (raise mode).
        """
        if self._deadline is None:
            return False
        self._ticks += 1
        if self._ticks % stride:
            return False
        return self.over_deadline(stage)

    # -- countable budgets --------------------------------------------------------

    def admit_nodes(self, count: int, stage: str) -> bool:
        """Charge *count* DOM nodes; False means "stop building"."""
        self._nodes += count
        limit = self.limits.max_nodes
        if limit is not None and self._nodes > limit:
            self.note("nodes", stage, limit, self._nodes)
            return False
        return True

    def admit_depth(self, depth: int, stage: str) -> bool:
        """True while *depth* is within the depth ceiling."""
        limit = self.limits.max_depth
        if limit is not None and depth > limit:
            self.note("depth", stage, limit, depth)
            return False
        return True

    def cap_count(self, resource: str, count: int, stage: str) -> int:
        """Admitted item count for a sized budget (e.g. tokens)."""
        limit = getattr(self.limits, f"max_{resource}", None)
        if limit is not None and count > limit:
            self.note(resource, stage, limit, count)
            return limit
        return count

    def cap_input(self, size: int, stage: str = "input") -> int:
        """Admitted input size in bytes/chars."""
        limit = self.limits.max_input_bytes
        if limit is not None and size > limit:
            self.note("input-bytes", stage, limit, size)
            return limit
        return size

    # -- introspection ------------------------------------------------------------

    @property
    def breached(self) -> bool:
        """Whether any budget was hit so far."""
        return bool(self.events)
