"""Parallel batch extraction engine (production-scale throughput layer).

The paper's pipeline handles one form at a time; large-scale integration
(the MetaQuerier motivation) must extract capabilities from thousands of
interfaces.  This package adds the throughput layer: a process-pool batch
extractor with per-worker parser reuse, chunked scheduling, ordered
results, and aggregate statistics.
"""

from repro.batch.extractor import (
    BatchExtractor,
    BatchRecord,
    BatchReport,
)

__all__ = ["BatchExtractor", "BatchRecord", "BatchReport"]
