"""Parallel batch extraction engine (production-scale throughput layer).

The paper's pipeline handles one form at a time; large-scale integration
(the MetaQuerier motivation) must extract capabilities from thousands of
interfaces.  This package adds the throughput layer: a process-pool batch
extractor with per-worker parser reuse, chunked scheduling, ordered
results, aggregate statistics, and fault tolerance (per-form timeouts,
retry with backoff, crashed-pool recovery with serial-isolation
degradation).
"""

from repro.batch.cpu import usable_cores
from repro.batch.extractor import (
    BatchExtractor,
    BatchRecord,
    BatchReport,
    BatchStream,
    ExtractionTimeout,
)
from repro.batch.journal import BatchJournal, job_key

__all__ = [
    "BatchExtractor",
    "BatchJournal",
    "BatchRecord",
    "BatchReport",
    "BatchStream",
    "ExtractionTimeout",
    "job_key",
    "usable_cores",
]
