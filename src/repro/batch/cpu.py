"""Usable-core detection for sizing worker pools and benchmarks.

``os.cpu_count()`` reports the machine, not the process: CPU affinity
masks (taskset, slurm, pinned containers) and cgroup CPU quotas (Docker
``--cpus``, Kubernetes limits) can leave a 64-core box with one usable
core.  Benchmarks that size expectations off ``cpu_count()`` then demand
parallel speedups the scheduler cannot deliver, and pools that spawn
``cpu_count()`` workers just thrash.  :func:`usable_cores` reports what
this process can actually run on: the affinity mask where the platform has
one, narrowed by any cgroup quota, falling back to ``cpu_count()``.
"""

from __future__ import annotations

import os
from pathlib import Path

#: cgroup mount points probed for CPU quotas (v2 unified, then v1 legacy).
_CGROUP_V2_CPU_MAX = "/sys/fs/cgroup/cpu.max"
_CGROUP_V1_QUOTA = "/sys/fs/cgroup/cpu/cpu.cfs_quota_us"
_CGROUP_V1_PERIOD = "/sys/fs/cgroup/cpu/cpu.cfs_period_us"


def _read_text(path: str) -> str | None:
    try:
        return Path(path).read_text(encoding="ascii").strip()
    except (OSError, UnicodeDecodeError):
        return None


def cgroup_cpu_quota() -> int | None:
    """Whole cores allowed by the cgroup CPU quota, or ``None``.

    Reads cgroup v2 ``cpu.max`` (``"<quota> <period>"`` or ``"max ..."``)
    first, then cgroup v1 ``cpu.cfs_quota_us`` / ``cpu.cfs_period_us``
    (quota ``-1`` means unlimited).  A fractional quota rounds up: half a
    core still needs one worker.
    """
    raw = _read_text(_CGROUP_V2_CPU_MAX)
    if raw is not None:
        fields = raw.split()
        if len(fields) == 2 and fields[0] != "max":
            try:
                quota, period = int(fields[0]), int(fields[1])
            except ValueError:
                return None
            if quota > 0 and period > 0:
                return max(1, -(-quota // period))
        return None
    quota_raw = _read_text(_CGROUP_V1_QUOTA)
    period_raw = _read_text(_CGROUP_V1_PERIOD)
    if quota_raw is None or period_raw is None:
        return None
    try:
        quota, period = int(quota_raw), int(period_raw)
    except ValueError:
        return None
    if quota > 0 and period > 0:
        return max(1, -(-quota // period))
    return None


def usable_cores() -> int:
    """CPU cores this process can actually use (always >= 1).

    The scheduler affinity mask (where the platform exposes one) narrowed
    by the cgroup CPU quota; plain ``os.cpu_count()`` when neither is
    available.
    """
    affinity: int | None = None
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
        except OSError:
            affinity = None
    if affinity is None:
        affinity = os.cpu_count() or 1
    quota = cgroup_cpu_quota()
    if quota is not None:
        affinity = min(affinity, quota)
    return max(1, affinity)
