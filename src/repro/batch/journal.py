"""Resumable batch journal: per-form outcomes on disk, crash-tolerant.

A :class:`BatchJournal` is an append-only JSON-lines checkpoint of a
batch run.  As each form's :class:`~repro.batch.extractor.BatchRecord`
is finalized, one line lands in the journal; after a crash (or SIGKILL)
a rerun with ``resume=True`` loads the journal and skips every form
whose outcome is already on disk, re-extracting only the rest.

The file discipline mirrors the disk-backed extraction cache
(:mod:`repro.cache.store`):

* appends are ``flock``-guarded where available, one line per record,
  flushed immediately so a killed process loses at most the line it was
  writing;
* loading tolerates a torn trailing line (everything after the last
  newline is ignored) and quarantines corrupt lines -- bad JSON, wrong
  version, failed checksum -- by skipping them and counting
  :attr:`corrupt_lines`, never by failing the run;
* each line carries a CRC-32 checksum of its payload, so a partially
  flushed or bit-rotted line cannot resurrect as a bogus "completed"
  outcome;
* the newest line for a key wins, so re-running a failed form simply
  appends its new outcome.

Keys bind an input's batch *position* to its *content signature*
(``"<index>:<signature>"``), so resuming against an edited input list
re-extracts anything that moved or changed instead of serving stale
results.  The journal stores plain payload dicts; record
(de)serialization lives with :class:`~repro.batch.extractor.BatchRecord`
in the batch engine.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

try:  # POSIX only; appends degrade to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Journal line format version; mismatched lines are quarantined on load.
JOURNAL_FORMAT_VERSION = 1


def _checksum(key: str, payload: dict) -> int:
    """CRC-32 over the canonical JSON of one journal entry."""
    canonical = key + "\n" + json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def job_key(index: int, signature: str | None) -> str:
    """The journal key of one batch input.

    Combines input order and content signature so a resume only skips a
    form when both its position and its content are unchanged.  Inputs
    the hasher cannot sign (custom jobs) fall back to position-only keys
    -- resuming those assumes the input list is unchanged.
    """
    return f"{index}:{signature if signature is not None else 'unsigned'}"


class BatchJournal:
    """Append-only, torn-line-tolerant journal of per-form outcomes.

    Args:
        path: The JSON-lines journal file.  Parent directories are
            created on first append.
        resume: Load existing journal lines eagerly so
            :meth:`completed_payload` can serve prior outcomes.  Without
            it the journal is write-only (a fresh run that still
            checkpoints).
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        #: Lines skipped on load: bad JSON, bad checksum, wrong version.
        self.corrupt_lines = 0
        self._loaded: dict[str, dict] = {}
        if resume:
            self._load()

    # -- reading -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._loaded)

    def completed_payload(self, key: str) -> dict | None:
        """The stored payload for *key* when its outcome was successful.

        Only records journaled without an ``error`` are resume-skippable;
        a failed form's journal line documents the failure but the form
        is re-attempted on resume.
        """
        payload = self._loaded.get(key)
        if payload is None or payload.get("error") is not None:
            return None
        return payload

    def _load(self) -> None:
        try:
            blob = self.path.read_bytes()
        except OSError:
            return  # no journal yet: nothing to resume
        consumed = blob.rfind(b"\n")
        if consumed < 0:
            if blob:
                self.corrupt_lines += 1  # a single torn line
            return
        tail = blob[consumed + 1:]
        if tail:
            self.corrupt_lines += 1  # torn trailing line (mid-write kill)
        for raw in blob[: consumed + 1].splitlines():
            if not raw.strip():
                continue
            try:
                line = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.corrupt_lines += 1
                continue
            if not isinstance(line, dict) or line.get("v") != JOURNAL_FORMAT_VERSION:
                self.corrupt_lines += 1
                continue
            key = line.get("key")
            payload = line.get("record")
            if not isinstance(key, str) or not isinstance(payload, dict):
                self.corrupt_lines += 1
                continue
            if line.get("sum") != _checksum(key, payload):
                self.corrupt_lines += 1
                continue
            self._loaded[key] = payload  # newest line per key wins
        return

    # -- writing -------------------------------------------------------------------

    def append(self, key: str, payload: dict) -> None:
        """Journal one finalized outcome (best-effort: disk trouble is
        swallowed -- checkpointing must never fail the batch itself)."""
        line = (
            json.dumps(
                {
                    "v": JOURNAL_FORMAT_VERSION,
                    "key": key,
                    "sum": _checksum(key, payload),
                    "record": payload,
                },
                ensure_ascii=False,
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a+b") as fh:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    # A predecessor killed mid-write leaves a torn,
                    # newline-less tail; writing straight after it would
                    # corrupt THIS record too.  Terminate the tail first.
                    size = fh.seek(0, os.SEEK_END)
                    if size:
                        fh.seek(size - 1)
                        if fh.read(1) != b"\n":
                            fh.write(b"\n")
                    fh.write(line)
                    fh.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        except OSError:
            pass
        self._loaded[key] = payload
