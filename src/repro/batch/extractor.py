"""Parallel batch extraction over a process pool.

Parsing dominates extraction cost and each form is independent, so batch
throughput scales with cores.  :class:`BatchExtractor` fans tokenized forms
(or raw HTML sources) over a ``ProcessPoolExecutor``:

* **Per-worker parser reuse** -- each worker builds its grammar, schedule,
  and :class:`~repro.extractor.FormExtractor` exactly once (in the pool
  initializer) and reuses them for every form it processes.  Work is
  shipped as tokens/HTML and comes back as plain result records; parse
  forests (whose grammar closures do not pickle) never cross the process
  boundary.
* **Chunked scheduling** -- inputs are dispatched in chunks to amortize
  IPC overhead; the chunk size adapts to the batch size unless overridden.
* **Ordered results** -- :meth:`BatchExtractor.iter_tokens` /
  :meth:`iter_html` yield one :class:`BatchRecord` per input, in input
  order, as they become available.
* **Serial fallback** -- ``jobs=1`` (the default) runs everything in the
  calling process with no executor, byte-identical to a plain
  :class:`FormExtractor` loop.

A worker never lets one bad form poison the batch: per-form failures come
back as records with ``error`` set (best-effort at the batch level, just
as the parser is best-effort at the form level).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.extractor import FormExtractor
from repro.grammar.grammar import TwoPGrammar
from repro.parser.parser import ParserConfig, ParseStats
from repro.semantics.condition import SemanticModel
from repro.tokens.model import Token

#: Builds the grammar inside a worker process.  Must be picklable by
#: reference (a module-level function), not a closure; ``None`` selects the
#: cached standard grammar.
GrammarFactory = Callable[[], TwoPGrammar]


@dataclass
class BatchRecord:
    """Outcome of extracting one form of the batch."""

    index: int
    model: SemanticModel | None = None
    stats: ParseStats | None = None
    elapsed_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchReport:
    """Aggregated outcome of one batch run."""

    records: list[BatchRecord] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0

    @property
    def models(self) -> list[SemanticModel | None]:
        """Per-input models, in input order (``None`` where extraction failed)."""
        return [record.model for record in self.records]

    @property
    def errors(self) -> list[BatchRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def stats(self) -> ParseStats:
        """Element-wise sum of the per-form parse statistics."""
        total = ParseStats()
        for record in self.records:
            stats = record.stats
            if stats is None:
                continue
            total.tokens += stats.tokens
            total.instances_created += stats.instances_created
            total.instances_pruned += stats.instances_pruned
            total.rollback_kills += stats.rollback_kills
            total.preference_applications += stats.preference_applications
            total.fixpoint_rounds += stats.fixpoint_rounds
            total.combos_examined += stats.combos_examined
            total.combos_prefiltered += stats.combos_prefiltered
            total.symbol_truncations += stats.symbol_truncations
            total.truncated = total.truncated or stats.truncated
            total.elapsed_seconds += stats.elapsed_seconds
        return total

    @property
    def cpu_seconds(self) -> float:
        """Summed per-form extraction time (exceeds wall time when parallel)."""
        return sum(record.elapsed_seconds for record in self.records)

    def summary(self) -> dict:
        """Flat numbers for logs, benchmarks, and JSON reports."""
        stats = self.stats
        return {
            "forms": len(self.records),
            "errors": len(self.errors),
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "tokens": stats.tokens,
            "instances_created": stats.instances_created,
            "combos_examined": stats.combos_examined,
            "combos_prefiltered": stats.combos_prefiltered,
            "truncated_any": stats.truncated,
        }

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        numbers = self.summary()
        speedup = (
            numbers["cpu_seconds"] / numbers["wall_seconds"]
            if numbers["wall_seconds"] > 0
            else 0.0
        )
        return (
            f"{numbers['forms']} forms with {self.jobs} job(s) in "
            f"{numbers['wall_seconds']:.2f}s wall "
            f"({numbers['cpu_seconds']:.2f}s cpu, {speedup:.1f}x overlap); "
            f"{numbers['tokens']} tokens, "
            f"{numbers['instances_created']} instances, "
            f"{numbers['combos_examined']} combos examined, "
            f"{numbers['errors']} error(s)"
        )


# -- worker-side machinery ----------------------------------------------------------
#
# Everything the pool touches must be picklable by reference: module-level
# functions only, with per-worker state in a module global set up by the
# initializer.

_worker_extractor: FormExtractor | None = None


def _init_worker(
    grammar_factory: GrammarFactory | None,
    parser_config: ParserConfig | None,
) -> None:
    """Pool initializer: build the extractor once per worker process."""
    global _worker_extractor
    grammar = grammar_factory() if grammar_factory is not None else None
    _worker_extractor = FormExtractor(
        grammar=grammar, parser_config=parser_config
    )


def _extract_tokens_job(job: tuple[int, list[Token]]) -> BatchRecord:
    index, tokens = job
    assert _worker_extractor is not None  # initializer always ran
    return _run(index, lambda: _worker_extractor.extract_from_tokens(tokens))


def _extract_html_job(job: tuple[int, str]) -> BatchRecord:
    index, html = job
    assert _worker_extractor is not None
    return _run(index, lambda: _worker_extractor.extract_detailed(html))


def _run(index: int, extract: Callable) -> BatchRecord:
    started = time.perf_counter()
    try:
        result = extract()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        return BatchRecord(
            index=index,
            elapsed_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    return BatchRecord(
        index=index,
        model=result.model,
        stats=result.parse.stats,
        elapsed_seconds=time.perf_counter() - started,
    )


class BatchExtractor:
    """Extract many forms, optionally in parallel worker processes.

    Args:
        jobs: Worker process count.  ``1`` (default) runs serially in the
            calling process -- identical behavior and results to looping a
            :class:`FormExtractor` by hand.
        grammar_factory: Module-level callable building each worker's
            grammar (``None`` = the cached standard grammar).  A factory
            rather than a grammar because grammars carry closures, which
            do not pickle; the *reference* to a module-level function does.
        parser_config: Optional :class:`ParserConfig` shipped to workers.
        chunksize: Inputs dispatched per IPC round-trip.  Default: split
            the batch into about four waves per worker, minimum one input.
    """

    def __init__(
        self,
        jobs: int = 1,
        grammar_factory: GrammarFactory | None = None,
        parser_config: ParserConfig | None = None,
        chunksize: int | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.grammar_factory = grammar_factory
        self.parser_config = parser_config
        self.chunksize = chunksize

    # -- token-set batches ------------------------------------------------------

    def iter_tokens(
        self, token_sets: Iterable[list[Token]]
    ) -> Iterator[BatchRecord]:
        """Extract each token set; yield records in input order."""
        return self._iter(list(token_sets), _extract_tokens_job)

    def extract_tokens(self, token_sets: Iterable[list[Token]]) -> BatchReport:
        """Extract every token set into an aggregated report."""
        return self._collect(self.iter_tokens(token_sets))

    # -- html batches ------------------------------------------------------------

    def iter_html(self, sources: Iterable[str]) -> Iterator[BatchRecord]:
        """Extract the first form of each HTML page; records in input order."""
        return self._iter(list(sources), _extract_html_job)

    def extract_html(self, sources: Iterable[str]) -> BatchReport:
        """Extract every HTML page into an aggregated report."""
        return self._collect(self.iter_html(sources))

    # -- internals ----------------------------------------------------------------

    def _iter(self, items: list, job_fn: Callable) -> Iterator[BatchRecord]:
        jobs = list(enumerate(items))
        if self.jobs == 1:
            _init_worker(self.grammar_factory, self.parser_config)
            for job in jobs:
                yield job_fn(job)
            return
        chunksize = self.chunksize or max(
            1, len(jobs) // (self.jobs * 4) or 1
        )
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=(self.grammar_factory, self.parser_config),
        ) as pool:
            # ``map`` preserves input order and dispatches in chunks.
            yield from pool.map(job_fn, jobs, chunksize=chunksize)

    def _collect(self, records: Iterator[BatchRecord]) -> BatchReport:
        started = time.perf_counter()
        collected = list(records)
        return BatchReport(
            records=collected,
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
        )
