"""Parallel batch extraction over a fault-tolerant process pool.

Parsing dominates extraction cost and each form is independent, so batch
throughput scales with cores.  :class:`BatchExtractor` fans tokenized forms
(or raw HTML sources) over a ``ProcessPoolExecutor``:

* **Per-worker parser reuse** -- each worker builds its grammar, schedule,
  and :class:`~repro.extractor.FormExtractor` exactly once (in the pool
  initializer) and reuses them for every form it processes.  Work is
  shipped as tokens/HTML and comes back as plain result records; parse
  forests (whose grammar closures do not pickle) never cross the process
  boundary.
* **Chunked scheduling** -- inputs are dispatched in chunks to amortize
  IPC overhead; the chunk size adapts to the batch size unless overridden.
* **Ordered results** -- :meth:`BatchExtractor.iter_tokens` /
  :meth:`iter_html` yield one :class:`BatchRecord` per input, in input
  order, as they become available.
* **Serial fallback** -- ``jobs=1`` (the default) runs everything in the
  calling process with no executor, byte-identical to a plain
  :class:`FormExtractor` loop.  The serial path builds its own local
  extractor; the module-global worker state is strictly worker-side, so
  nested or concurrent batches in one process never clobber each other.
* **Content-addressed dedupe and caching** -- before dispatching, the
  pooled path hashes every input (:func:`~repro.cache.html_signature` /
  :func:`~repro.cache.token_signature`) and collapses duplicates: one
  *leader* per distinct signature is extracted, its result replicated to
  the followers (fresh deserialized models, replayed stats -- aggregate
  counters stay identical to a full recompute).  With ``cache=True`` (or
  an :class:`~repro.cache.ExtractionCache`) results persist across
  ``extract_*`` calls, and ``cache_dir=...`` backs them with a JSON-lines
  file that pool workers share, so repeated forms skip the parse wherever
  they show up.
* **Warm pool reuse** -- the worker pool uses the ``fork`` start method
  where available and persists across ``extract_*`` calls, so workers
  (and their grammar/schedule, pre-warmed in the parent before the first
  fork) are paid for once per :class:`BatchExtractor`, not once per
  batch.  Worker counts are clamped to :func:`~repro.batch.cpu.
  usable_cores` unless ``oversubscribe=True``; ``jobs="auto"`` sizes the
  pool to the usable cores directly.

A worker never lets one bad form poison the batch: per-form failures come
back as records with ``error`` set (best-effort at the batch level, just
as the parser is best-effort at the form level).  Three fault-tolerance
layers back that contract up:

* **Per-form timeout** -- a worker-side watchdog (``SIGALRM`` where
  available) aborts a form stuck past ``timeout`` seconds and reports it
  as a ``Timeout:`` error record, keeping the worker alive for the rest
  of the batch.
* **Retry with backoff** -- ``retries=N`` re-runs a failed form up to
  ``N`` extra times (exponential backoff from ``retry_backoff``) before
  its error record becomes final; :attr:`BatchRecord.attempts` reports
  the count.
* **Pool recovery** -- a crashed worker (OOM kill, segfault) breaks the
  whole ``ProcessPoolExecutor``; the extractor rebuilds the pool and
  requeues every unfinished form.  After ``max_pool_restarts`` full-pool
  deaths it degrades to an *isolation* pool (one worker, one form in
  flight) where a further crash identifies its culprit exactly: that one
  form is recorded as ``WorkerCrash``, everything else proceeds.  A
  crashed worker therefore costs one record marked ``error``, never the
  batch.
"""

from __future__ import annotations

import copy
import dataclasses
import logging
import multiprocessing
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.batch.cpu import usable_cores
from repro.batch.journal import BatchJournal, job_key
from repro.cache import (
    CacheEntry,
    ExtractionCache,
    html_signature,
    token_signature,
)
from repro.extractor import ExtractionResult, FormExtractor
from repro.grammar.grammar import TwoPGrammar
from repro.observability.logs import get_logger, log_event
from repro.parser.parser import ParserConfig, ParseStats
from repro.resilience.guard import BudgetExceeded, ResourceGuard, ResourceLimits
from repro.resilience.ladder import ResilienceConfig
from repro.semantics.condition import SemanticModel
from repro.semantics.serialize import model_from_dict, model_to_dict
from repro.tokens.model import Token

_logger = get_logger("repro.batch")

#: Builds the grammar inside a worker process.  Must be picklable by
#: reference (a module-level function), not a closure; ``None`` selects the
#: cached standard grammar.
GrammarFactory = Callable[[], TwoPGrammar]

#: A custom per-form job for :meth:`BatchExtractor.iter_custom`: receives
#: the worker's extractor and one payload, returns an
#: :class:`ExtractionResult`.  Must be a module-level callable so it
#: pickles by reference.
CustomJob = Callable[[FormExtractor, Any], ExtractionResult]


class ExtractionTimeout(Exception):
    """A form exceeded the per-form extraction timeout."""


@dataclass
class BatchRecord:
    """Outcome of extracting one form of the batch."""

    index: int
    model: SemanticModel | None = None
    stats: ParseStats | None = None
    elapsed_seconds: float = 0.0
    error: str | None = None
    #: Times this form was attempted (1 unless retries kicked in).
    attempts: int = 1
    #: Non-fatal degradations (e.g. the no-``<form>`` whole-page fallback).
    warnings: list[str] = field(default_factory=list)
    #: Serialized per-stage :class:`~repro.observability.Trace`
    #: (``Trace.to_dict()``); plain data so it crosses the process boundary.
    trace: dict | None = None
    #: True when this record was served from the extraction cache instead
    #: of being extracted.
    cached: bool = False
    #: True when this record was replicated from an identical input's
    #: leader extraction (batch dedupe) instead of being dispatched.
    deduped: bool = False
    #: True when this record was replayed from a resume journal written
    #: by an earlier (crashed or interrupted) run instead of extracted.
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_payload(self) -> dict:
        """Plain-data form for the resume journal (JSON-serializable)."""
        return {
            "index": self.index,
            "model": model_to_dict(self.model) if self.model is not None else None,
            "stats": dataclasses.asdict(self.stats) if self.stats is not None else None,
            "elapsed_seconds": self.elapsed_seconds,
            "error": self.error,
            "attempts": self.attempts,
            "warnings": list(self.warnings),
            "trace": self.trace,
            "cached": self.cached,
            "deduped": self.deduped,
        }

    @classmethod
    def from_payload(cls, payload: dict, index: int) -> "BatchRecord":
        """Rebuild a journaled record (fresh objects, marked ``resumed``).

        Unknown stats fields from a newer writer are dropped; a payload
        that cannot rebuild at all comes back as an error record so the
        caller re-extracts rather than trusting a corrupt checkpoint.
        """
        try:
            model_payload = payload.get("model")
            stats_payload = payload.get("stats")
            stats = None
            if isinstance(stats_payload, dict):
                known = {spec.name for spec in dataclasses.fields(ParseStats)}
                stats = ParseStats(**{
                    name: value
                    for name, value in stats_payload.items()
                    if name in known
                })
            return cls(
                index=index,
                model=(
                    model_from_dict(model_payload)
                    if isinstance(model_payload, dict)
                    else None
                ),
                stats=stats,
                elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
                error=payload.get("error"),
                attempts=int(payload.get("attempts", 1)),
                warnings=list(payload.get("warnings", ())),
                trace=payload.get("trace"),
                cached=bool(payload.get("cached", False)),
                deduped=bool(payload.get("deduped", False)),
                resumed=True,
            )
        except Exception as exc:  # noqa: BLE001 - corrupt checkpoint
            return cls(
                index=index,
                error=f"ResumeError: journaled record unusable ({exc})",
                resumed=True,
            )


@dataclass
class BatchReport:
    """Aggregated outcome of one batch run."""

    records: list[BatchRecord] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    #: Process-pool rebuilds forced by crashed workers during the run.
    pool_restarts: int = 0
    #: True when crashes degraded the run to the single-worker isolation pool.
    degraded: bool = False
    #: Inputs served from the extraction cache (no extraction dispatched).
    cache_hits: int = 0
    #: Inputs that went through the cache and missed (0/0 when caching is
    #: off -- the hit rate is then reported as 0.0).
    cache_misses: int = 0
    #: Inputs collapsed onto an identical leader input by batch dedupe.
    dedupe_collapsed: int = 0
    #: Inputs replayed from the resume journal instead of extracted.
    resume_skipped: int = 0
    #: Corrupt journal lines quarantined while loading the resume journal.
    journal_corrupt_lines: int = 0
    #: Corrupt disk-cache records quarantined during this extractor's
    #: cache reloads (parent-process view of the shared cache file).
    cache_corrupt_records: int = 0

    @property
    def models(self) -> list[SemanticModel | None]:
        """Per-input models, in input order (``None`` where extraction failed)."""
        return [record.model for record in self.records]

    @property
    def errors(self) -> list[BatchRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def stats(self) -> ParseStats:
        """Element-wise sum of the per-form parse statistics.

        Summed dynamically over the :class:`ParseStats` fields (booleans
        OR together), so new counters aggregate without touching this.
        """
        total = ParseStats()
        for record in self.records:
            stats = record.stats
            if stats is None:
                continue
            for spec in dataclasses.fields(ParseStats):
                value = getattr(stats, spec.name)
                if isinstance(value, bool):
                    setattr(total, spec.name, getattr(total, spec.name) or value)
                else:
                    setattr(total, spec.name, getattr(total, spec.name) + value)
        return total

    @property
    def cpu_seconds(self) -> float:
        """Summed per-form extraction time (exceeds wall time when parallel)."""
        return sum(record.elapsed_seconds for record in self.records)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> dict:
        """Flat numbers for logs, benchmarks, and JSON reports."""
        stats = self.stats
        return {
            "forms": len(self.records),
            "errors": len(self.errors),
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "tokens": stats.tokens,
            "instances_created": stats.instances_created,
            "combos_examined": stats.combos_examined,
            "combos_prefiltered": stats.combos_prefiltered,
            "truncated_any": stats.truncated,
            "pool_restarts": self.pool_restarts,
            "degraded": self.degraded,
            "retried_forms": sum(
                1 for record in self.records if record.attempts > 1
            ),
            "cache.hits": self.cache_hits,
            "cache.misses": self.cache_misses,
            "cache.hit_rate": round(self.cache_hit_rate, 4),
            "dedupe.collapsed": self.dedupe_collapsed,
            "resume.skipped": self.resume_skipped,
            "resume.corrupt_lines": self.journal_corrupt_lines,
            "cache.corrupt_records": self.cache_corrupt_records,
        }

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        numbers = self.summary()
        speedup = (
            numbers["cpu_seconds"] / numbers["wall_seconds"]
            if numbers["wall_seconds"] > 0
            else 0.0
        )
        text = (
            f"{numbers['forms']} forms with {self.jobs} job(s) in "
            f"{numbers['wall_seconds']:.2f}s wall "
            f"({numbers['cpu_seconds']:.2f}s cpu, {speedup:.1f}x overlap); "
            f"{numbers['tokens']} tokens, "
            f"{numbers['instances_created']} instances, "
            f"{numbers['combos_examined']} combos examined, "
            f"{numbers['errors']} error(s)"
        )
        if self.cache_hits or self.dedupe_collapsed:
            text += (
                f"; {self.cache_hits} cache hit(s), "
                f"{self.dedupe_collapsed} deduped"
            )
        if self.resume_skipped:
            text += f"; {self.resume_skipped} resumed from journal"
        if self.pool_restarts:
            text += (
                f"; {self.pool_restarts} pool restart(s)"
                + (" [degraded to isolation]" if self.degraded else "")
            )
        return text


class _RunInfo:
    """Wall-clock and fault bookkeeping for one batch run.

    ``started`` is stamped when the work actually starts (first record
    pulled), not when the iterator is created or collected, so
    ``wall_seconds`` is meaningful however lazily the stream is consumed.
    """

    __slots__ = (
        "started", "finished", "pool_restarts", "degraded",
        "cache_hits", "cache_misses", "dedupe_collapsed",
        "resume_skipped", "journal_corrupt_lines",
    )

    def __init__(self) -> None:
        self.started: float | None = None
        self.finished: float | None = None
        self.pool_restarts = 0
        self.degraded = False
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedupe_collapsed = 0
        self.resume_skipped = 0
        self.journal_corrupt_lines = 0

    @property
    def wall_seconds(self) -> float:
        if self.started is None:
            return 0.0
        end = self.finished if self.finished is not None else time.perf_counter()
        return end - self.started


class BatchStream(Iterator[BatchRecord]):
    """Ordered stream of :class:`BatchRecord` s with run bookkeeping.

    Iterating pulls records in input order as they finish.  The stream
    retains every record it yields so :meth:`report` can aggregate them;
    :attr:`info` exposes the wall clock and pool-restart counters while
    the run is still in flight.
    """

    def __init__(
        self,
        generator: Iterator[BatchRecord],
        info: _RunInfo,
        jobs: int,
        cache: "ExtractionCache | None" = None,
    ):
        self._generator = generator
        self.info = info
        self.jobs = jobs
        self.cache = cache
        self.records: list[BatchRecord] = []

    def __iter__(self) -> "BatchStream":
        return self

    def __next__(self) -> BatchRecord:
        record = next(self._generator)
        self.records.append(record)
        return record

    def report(self) -> BatchReport:
        """Drain whatever remains and aggregate the whole run."""
        for _ in self:
            pass
        return BatchReport(
            records=list(self.records),
            jobs=self.jobs,
            wall_seconds=self.info.wall_seconds,
            pool_restarts=self.info.pool_restarts,
            degraded=self.info.degraded,
            cache_hits=self.info.cache_hits,
            cache_misses=self.info.cache_misses,
            dedupe_collapsed=self.info.dedupe_collapsed,
            resume_skipped=self.info.resume_skipped,
            journal_corrupt_lines=self.info.journal_corrupt_lines,
            cache_corrupt_records=(
                self.cache.stats.corrupt_records
                if self.cache is not None
                else 0
            ),
        )


# -- worker-side machinery ----------------------------------------------------------
#
# Everything the pool touches must be picklable by reference: module-level
# functions only, with per-worker state in a module global set up by the
# initializer.  The global is strictly worker-side: the serial (jobs=1)
# path builds a local extractor instead, so it cannot clobber state for a
# nested or concurrent batch in the same process.

_worker_extractor: FormExtractor | None = None

#: Worker cache specification, picklable for the pool initializer:
#: ``None`` (no cache), ``("memory", capacity)``, or
#: ``("disk", path, capacity)`` -- the disk variant shares one JSON-lines
#: file between all workers (and the parent), so a form parsed by one
#: worker is a cache hit for every other.
CacheSpec = tuple | None


def _cache_from_spec(spec: CacheSpec) -> ExtractionCache | None:
    if spec is None:
        return None
    if spec[0] == "disk":
        return ExtractionCache(capacity=spec[2], path=spec[1])
    return ExtractionCache(capacity=spec[1])


def _init_worker(
    grammar_factory: GrammarFactory | None,
    parser_config: ParserConfig | None,
    cache_spec: CacheSpec = None,
    resilience: ResilienceConfig | None = None,
) -> None:
    """Pool initializer: build and warm the extractor once per worker.

    The warmup parse runs here, inside the initializer, so every worker
    has already paid the schedule/kernel/core first-call costs before
    the pool accepts its first job -- the serving tier's cold p50
    measures the parse, not module imports.
    """
    global _worker_extractor
    _worker_extractor = _build_extractor(
        grammar_factory, parser_config, _cache_from_spec(cache_spec),
        resilience,
    )
    _worker_extractor.warmup()


def _build_extractor(
    grammar_factory: GrammarFactory | None,
    parser_config: ParserConfig | None,
    cache: ExtractionCache | None = None,
    resilience: ResilienceConfig | None = None,
) -> FormExtractor:
    grammar = grammar_factory() if grammar_factory is not None else None
    return FormExtractor(
        grammar=grammar, parser_config=parser_config, cache=cache,
        resilience=resilience,
    )


def _require_worker_extractor() -> FormExtractor:
    if _worker_extractor is None:
        raise RuntimeError(
            "worker extractor not initialized -- _init_worker did not run"
        )
    return _worker_extractor


@contextmanager
def _watchdog(timeout: float | None):
    """Abort the enclosed block after *timeout* seconds.

    Implemented with ``SIGALRM``/``setitimer``, which interrupts pure-
    Python work from inside the process -- the worker survives to take the
    next form.  Yields True when the timer is armed.  Where the signal
    cannot be hosted (non-main thread, non-Unix platforms, or a handler
    registration that loses a thread race) it yields False and the caller
    falls back to a cooperative guard deadline instead of crashing with
    ``ValueError``; the pool-recovery layer still bounds the damage a
    truly stuck worker can do.
    """
    usable = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield False
        return

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal handler signature
        raise ExtractionTimeout()

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:
        # signal.signal re-checks the thread; a main-thread check that
        # passed above can still lose (embedded interpreters, exotic
        # threading): degrade to the guard fallback rather than die.
        yield False
        return
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _deadline_guard(
    extractor: FormExtractor, timeout: float | None, armed: bool
) -> ResourceGuard | None:
    """The cooperative fallback when the SIGALRM watchdog is unavailable.

    A raise-mode guard carrying only the wall-clock deadline (all other
    budgets off, so behavior matches the signal watchdog as closely as a
    cooperative check can).  Not used when the extractor runs the
    resilience ladder -- the ladder's own degrade-mode guard already
    bounds the form.
    """
    if armed or timeout is None or timeout <= 0:
        return None
    if extractor.resilience is not None:
        return None
    limits = ResourceLimits(
        deadline_seconds=timeout,
        max_input_bytes=None,
        max_nodes=None,
        max_tokens=None,
    )
    return ResourceGuard(limits=limits, mode="raise").start()


def _extract_one(
    extractor: FormExtractor,
    kind: str,
    index: int,
    payload: Any,
    timeout: float | None,
) -> BatchRecord:
    """Run one form through *extractor*; failures become error records."""
    started = time.perf_counter()
    try:
        with _watchdog(timeout) as armed:
            guard = _deadline_guard(extractor, timeout, armed)
            if kind == "html":
                result = extractor.extract_detailed(payload, guard=guard)
            elif kind == "tokens":
                result = extractor.extract_from_tokens(payload, guard=guard)
            else:  # "custom"
                job_fn, arg = payload
                result = job_fn(extractor, arg)
    except ExtractionTimeout:
        return BatchRecord(
            index=index,
            elapsed_seconds=time.perf_counter() - started,
            error=f"Timeout: extraction exceeded {timeout:g}s",
        )
    except BudgetExceeded as exc:
        return BatchRecord(
            index=index,
            elapsed_seconds=time.perf_counter() - started,
            error=f"Timeout: extraction exceeded {timeout:g}s "
                  f"(cooperative deadline: {exc})",
        )
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        return BatchRecord(
            index=index,
            elapsed_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    record = BatchRecord(
        index=index,
        model=result.model,
        stats=result.parse.stats,
        elapsed_seconds=time.perf_counter() - started,
    )
    trace = getattr(result, "trace", None)
    if trace is not None:
        record.trace = trace.to_dict()
        record.warnings = list(trace.warnings)
    return record


def _extract_chunk(
    kind: str,
    chunk: list[tuple[int, Any]],
    timeout: float | None,
) -> list[BatchRecord]:
    """Worker entry point: run one chunk of (index, payload) jobs."""
    extractor = _require_worker_extractor()
    return [
        _extract_one(extractor, kind, index, payload, timeout)
        for index, payload in chunk
    ]


# -- dedupe / cache helpers ---------------------------------------------------------


def _signature_for(kind: str, payload: Any) -> str | None:
    """Content signature of one batch input, or ``None`` if unsignable.

    A payload the hasher cannot digest (wrong type, exotic token attrs) is
    simply dispatched individually -- signing is an optimization and must
    never fail a batch that extraction itself would handle.
    """
    try:
        if kind == "html":
            return html_signature(payload)
        if kind == "tokens":
            return token_signature(payload)
    except Exception:  # noqa: BLE001 - unsignable, not fatal
        return None
    return None


def _record_from_entry(entry: CacheEntry, index: int) -> BatchRecord:
    """A batch record served from the extraction cache (fresh objects)."""
    return BatchRecord(
        index=index,
        model=entry.rebuild_model(),
        stats=entry.rebuild_stats(),
        warnings=list(entry.warnings),
        cached=True,
    )


def _replicate_record(record: BatchRecord, index: int) -> BatchRecord:
    """Replay a leader's successful record for a deduped follower.

    Model and stats are rebuilt through the serialization round-trip so
    the replica can never alias the leader's objects; ``elapsed_seconds``
    stays 0 -- no extraction happened for this input.
    """
    return BatchRecord(
        index=index,
        model=(
            model_from_dict(model_to_dict(record.model))
            if record.model is not None
            else None
        ),
        stats=(
            dataclasses.replace(record.stats)
            if record.stats is not None
            else None
        ),
        warnings=list(record.warnings),
        trace=copy.deepcopy(record.trace),
        cached=record.cached,
        deduped=True,
    )


class BatchExtractor:
    """Extract many forms, optionally in parallel worker processes.

    Args:
        jobs: Worker process count.  ``1`` (default) runs serially in the
            calling process -- identical behavior and results to looping a
            :class:`FormExtractor` by hand.  ``"auto"`` sizes the pool to
            :func:`~repro.batch.cpu.usable_cores`.  Pooled runs clamp the
            actual worker count to the usable cores (see *oversubscribe*);
            ``jobs`` itself is still reported unchanged.
        grammar_factory: Module-level callable building each worker's
            grammar (``None`` = the cached standard grammar).  A factory
            rather than a grammar because grammars carry closures, which
            do not pickle; the *reference* to a module-level function does.
        parser_config: Optional :class:`ParserConfig` shipped to workers.
        chunksize: Inputs dispatched per IPC round-trip.  Default: split
            the batch into about four waves per worker, minimum one input.
        timeout: Per-form wall-clock budget in seconds (``None`` = no
            limit).  Enforced by a worker-side watchdog; a form over
            budget becomes a ``Timeout:`` error record.
        retries: Extra attempts for a failed form before its error record
            is final (default 0 -- extraction is deterministic, so retries
            only help against transient faults: crashes, timeouts under
            load, flaky custom jobs).
        retry_backoff: Base of the exponential backoff between attempts
            (``retry_backoff * 2**(attempt-1)`` seconds).
        max_pool_restarts: Full-pool rebuilds allowed after worker crashes
            before degrading to the single-worker isolation pool that
            pinpoints crashing forms one at a time.
        cache: Extraction cache.  ``None``/``False`` (default) disables
            caching; ``True`` creates a private in-memory
            :class:`~repro.cache.ExtractionCache`; an existing cache
            instance is used as-is (share one across extractors to share
            hits).  Identical inputs within a batch are deduped regardless
            -- the cache adds reuse *across* batches and ``extract_*``
            calls.
        cache_dir: Directory for a disk-backed cache shared with pool
            workers (implies caching on).  The JSON-lines file inside is
            append-only; delete the directory to invalidate.
        oversubscribe: Allow more pooled workers than
            :func:`~repro.batch.cpu.usable_cores`.  Off by default:
            oversubscribed CPU-bound workers only add scheduling thrash
            (the 0.66x "speedup" this engine shipped with).
        journal: Path to a resume journal (JSON-lines).  When set, every
            finalized record is checkpointed so a crashed or killed run
            can be resumed.
        resume: Load *journal* before running and replay every
            successfully journaled form (matching position **and**
            content signature) instead of re-extracting it; failed forms
            are re-attempted.  Requires *journal*.
        resilience: Run worker extractions under the degradation ladder
            (:meth:`FormExtractor.extract_resilient` semantics): ``True``
            for the default :class:`~repro.resilience.ladder.
            ResilienceConfig`, or a config instance (shipped to pool
            workers, so it must stay plain data).  Pathological inputs
            then come back as degraded models instead of error records.
    """

    def __init__(
        self,
        jobs: int | str = 1,
        grammar_factory: GrammarFactory | None = None,
        parser_config: ParserConfig | None = None,
        chunksize: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        retry_backoff: float = 0.1,
        max_pool_restarts: int = 2,
        cache: ExtractionCache | bool | None = None,
        cache_dir: str | Path | None = None,
        oversubscribe: bool = False,
        journal: str | Path | None = None,
        resume: bool = False,
        resilience: ResilienceConfig | bool | None = None,
    ):
        if jobs == "auto":
            jobs = usable_cores()
        if not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        self.jobs = jobs
        self.grammar_factory = grammar_factory
        self.parser_config = parser_config
        self.chunksize = chunksize
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.max_pool_restarts = max_pool_restarts
        self.oversubscribe = oversubscribe
        self.cache_path: Path | None = (
            Path(cache_dir) / "extraction-cache.jsonl"
            if cache_dir is not None
            else None
        )
        if self.cache_path is not None:
            self.cache: ExtractionCache | None = (
                cache
                if isinstance(cache, ExtractionCache)
                else ExtractionCache(path=self.cache_path)
            )
        elif isinstance(cache, ExtractionCache):
            self.cache = cache
        elif cache:
            self.cache = ExtractionCache()
        else:
            self.cache = None
        if resume and journal is None:
            raise ValueError("resume=True requires a journal path")
        if resilience is True:
            resilience = ResilienceConfig()
        elif resilience is False:
            resilience = None
        self.resilience: ResilienceConfig | None = resilience
        self.journal_path: Path | None = (
            Path(journal) if journal is not None else None
        )
        self.resume = resume
        self._journal: BatchJournal | None = (
            BatchJournal(self.journal_path, resume=resume)
            if self.journal_path is not None
            else None
        )
        self._serial_extractor: FormExtractor | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0

    def warm(self) -> int:
        """Build the persistent pool (or the serial extractor) *now*.

        Long-lived callers -- the serving tier above all -- pay the fork
        and grammar/schedule warm-up once at startup instead of on the
        first request.  Returns the number of pooled workers standing by
        (0 for ``jobs=1``, where the warmed object is the in-process
        extractor instead).
        """
        if self.jobs == 1:
            self._local_extractor().warmup()
            return 0
        workers = self._effective_workers()
        self._get_pool(workers)
        return workers

    def submit_custom(
        self,
        job_fn: CustomJob,
        item: Any,
        timeout: float | None = None,
    ) -> "Future[BatchRecord]":
        """Submit one custom job to the warm pool; resolve to its record.

        The asynchronous bridge for services built on the pool: unlike
        the ``iter_*``/``extract_*`` batch entry points this neither
        blocks nor orders -- it hands back a
        :class:`concurrent.futures.Future` the caller can await (e.g.
        via :func:`asyncio.wrap_future`) while other submissions are in
        flight.  The persistent pool is shared with the batch entry
        points and reused across calls.

        *timeout* overrides the extractor-level per-form timeout for this
        submission (the worker-side ``SIGALRM`` watchdog backstop).

        The future resolves to a :class:`BatchRecord` -- per-form
        failures come back as records with ``error`` set, exactly like
        the batch paths.  It *raises* only for infrastructure faults
        (notably :class:`~concurrent.futures.process.BrokenProcessPool`
        when a worker died); after :meth:`close`, the next submission
        transparently rebuilds the pool.

        Requires ``jobs >= 2``: the serial extractor is not a pool and
        has no executor to bridge to.
        """
        if self.jobs == 1:
            raise RuntimeError(
                "submit_custom requires a pooled extractor (jobs >= 2); "
                "run serial work through extract_custom instead"
            )
        pool = self._get_pool(self._effective_workers())
        inner = pool.submit(
            _extract_chunk, "custom", [(0, (job_fn, item))],
            timeout if timeout is not None else self.timeout,
        )
        outer: "Future[BatchRecord]" = Future()

        def _unwrap(done: "Future[list[BatchRecord]]") -> None:
            if done.cancelled():
                outer.cancel()
                return
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(done.result()[0])

        inner.add_done_callback(_unwrap)
        return outer

    def __enter__(self) -> "BatchExtractor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- token-set batches ------------------------------------------------------

    def iter_tokens(self, token_sets: Iterable[list[Token]]) -> BatchStream:
        """Extract each token set; yield records in input order."""
        return self._stream(list(token_sets), "tokens")

    def extract_tokens(self, token_sets: Iterable[list[Token]]) -> BatchReport:
        """Extract every token set into an aggregated report."""
        return self.iter_tokens(token_sets).report()

    # -- html batches ------------------------------------------------------------

    def iter_html(self, sources: Iterable[str]) -> BatchStream:
        """Extract the first form of each HTML page; records in input order."""
        return self._stream(list(sources), "html")

    def extract_html(self, sources: Iterable[str]) -> BatchReport:
        """Extract every HTML page into an aggregated report."""
        return self.iter_html(sources).report()

    # -- custom jobs -------------------------------------------------------------

    def iter_custom(self, job_fn: CustomJob, items: Iterable[Any]) -> BatchStream:
        """Run a custom per-form job (module-level callable) over *items*.

        The job receives ``(extractor, item)`` in the worker and returns an
        :class:`ExtractionResult`.  This is also the fault-injection seam
        the failure-tolerance tests use: a job that hangs or kills its
        process exercises the timeout and pool-recovery machinery.
        """
        return self._stream([(job_fn, item) for item in items], "custom")

    def extract_custom(
        self, job_fn: CustomJob, items: Iterable[Any]
    ) -> BatchReport:
        """Run a custom job over every item into an aggregated report."""
        return self.iter_custom(job_fn, items).report()

    # -- internals ----------------------------------------------------------------

    def _stream(self, items: list, kind: str) -> BatchStream:
        info = _RunInfo()
        return BatchStream(
            self._iter(items, kind, info), info, self.jobs, cache=self.cache
        )

    def _iter(
        self, items: list, kind: str, info: _RunInfo
    ) -> Iterator[BatchRecord]:
        # Generator body: nothing runs until the first record is pulled,
        # and that is exactly when the wall clock starts.
        info.started = time.perf_counter()
        try:
            jobs = list(enumerate(items))
            keys, resumed = self._resolve_journal(jobs, kind, info)
            source = (
                self._iter_serial(jobs, kind, info, resumed)
                if self.jobs == 1
                else self._iter_pool(jobs, kind, info, resumed)
            )
            for record in source:
                # Checkpointing is centralized here -- every final record
                # crosses this yield, whichever path produced it.
                if self._journal is not None and not record.resumed:
                    self._journal.append(
                        keys[record.index], record.to_payload()
                    )
                yield record
        finally:
            info.finished = time.perf_counter()

    def _resolve_journal(
        self, jobs: list[tuple[int, Any]], kind: str, info: _RunInfo
    ) -> tuple[dict[int, str], dict[int, BatchRecord]]:
        """Journal keys for every input, plus resume-replayed records.

        Only records journaled as successful are replayed; failures (and
        journal lines that fail to rebuild) stay in the work list.
        """
        if self._journal is None:
            return {}, {}
        keys = {
            index: job_key(index, _signature_for(kind, payload))
            for index, payload in jobs
        }
        resumed: dict[int, BatchRecord] = {}
        if self.resume:
            info.journal_corrupt_lines = self._journal.corrupt_lines
            for index, key in keys.items():
                payload = self._journal.completed_payload(key)
                if payload is None:
                    continue
                record = BatchRecord.from_payload(payload, index)
                if record.ok:
                    resumed[index] = record
                    info.resume_skipped += 1
            if resumed or self._journal.corrupt_lines:
                log_event(
                    _logger, logging.INFO, "batch.resume",
                    skipped=len(resumed),
                    corrupt_lines=self._journal.corrupt_lines,
                    total=len(jobs),
                )
        return keys, resumed

    # -- serial path --------------------------------------------------------------

    def _local_extractor(self) -> FormExtractor:
        """The in-process extractor for ``jobs=1`` (never the worker global)."""
        if self._serial_extractor is None:
            self._serial_extractor = _build_extractor(
                self.grammar_factory, self.parser_config, self.cache,
                self.resilience,
            )
        return self._serial_extractor

    def _iter_serial(
        self,
        jobs: list[tuple[int, Any]],
        kind: str,
        info: _RunInfo,
        resumed: dict[int, BatchRecord] | None = None,
    ) -> Iterator[BatchRecord]:
        extractor = self._local_extractor()
        resumed = resumed or {}
        for index, payload in jobs:
            replay = resumed.get(index)
            if replay is not None:
                yield replay
                continue
            attempts = 0
            while True:
                attempts += 1
                record = _extract_one(
                    extractor, kind, index, payload, self.timeout
                )
                record.attempts = attempts
                if record.ok or attempts > self.retries:
                    break
                self._backoff(attempts, index, record.error)
            if self.cache is not None and record.ok:
                # The local extractor caches at the token level; its trace
                # tag is the per-record hit signal.
                if (record.trace or {}).get("tags", {}).get("cache_hit"):
                    record.cached = True
                    info.cache_hits += 1
                else:
                    info.cache_misses += 1
            yield record

    # -- pooled path --------------------------------------------------------------

    def _iter_pool(
        self,
        jobs: list[tuple[int, Any]],
        kind: str,
        info: _RunInfo,
        resumed: dict[int, BatchRecord] | None = None,
    ) -> Iterator[BatchRecord]:
        payloads = dict(jobs)
        attempts = {index: 0 for index in payloads}
        results: dict[int, BatchRecord] = dict(resumed or {})
        remaining = set(payloads) - results.keys()
        next_emit = 0

        # -- dedupe / cache plan: hash inputs before any dispatch --------
        #
        # The first input with a given signature is its group's *leader*;
        # later duplicates are *followers*, held back (never dispatched)
        # until the leader's record is final, then served a replica of it.
        # Cached signatures short-circuit the whole group.  Unsignable
        # payloads (custom jobs, inputs the hasher chokes on) stay
        # individual dispatches.
        signatures: dict[int, str] = {}
        followers_of: dict[int, list[int]] = {}
        held: set[int] = set()
        if kind in ("html", "tokens"):
            leader_by_sig: dict[str, int] = {}
            for index in sorted(payloads):
                if index not in remaining:
                    continue  # resumed from the journal: never dispatched
                sig = _signature_for(kind, payloads[index])
                if sig is None:
                    continue
                signatures[index] = sig
                leader = leader_by_sig.get(sig)
                if leader is None:
                    leader_by_sig[sig] = index
                else:
                    followers_of.setdefault(leader, []).append(index)
                    held.add(index)
                    info.dedupe_collapsed += 1
            if self.cache is not None:
                for sig, leader in leader_by_sig.items():
                    entry = self.cache.get(sig)
                    if entry is None:
                        info.cache_misses += 1
                        continue
                    info.cache_hits += 1
                    results[leader] = _record_from_entry(entry, leader)
                    remaining.discard(leader)
                    for follower in followers_of.pop(leader, ()):
                        held.discard(follower)
                        replica = _record_from_entry(entry, follower)
                        replica.deduped = True
                        results[follower] = replica
                        remaining.discard(follower)

        def emit_ready() -> Iterator[BatchRecord]:
            nonlocal next_emit
            while next_emit in results:
                yield results.pop(next_emit)
                next_emit += 1

        def finalize(record: BatchRecord) -> bool:
            """Account one attempt; True when the record is final."""
            index = record.index
            attempts[index] += 1
            record.attempts = attempts[index]
            if record.error is not None and attempts[index] <= self.retries:
                self._backoff(attempts[index], index, record.error)
                return False
            results[index] = record
            remaining.discard(index)
            sig = signatures.get(index)
            if (
                record.ok
                and sig is not None
                and self.cache is not None
                and not record.cached
            ):
                self.cache.put(
                    sig,
                    CacheEntry.from_parts(
                        record.model, record.stats, record.warnings
                    ),
                )
            for follower in followers_of.pop(index, ()):
                held.discard(follower)
                if record.ok:
                    # Extraction is deterministic: replay the leader's
                    # outcome (fresh model, replayed stats).
                    results[follower] = _replicate_record(record, follower)
                    remaining.discard(follower)
                # A failed leader promotes its followers to individual
                # dispatch on the next round instead of copying an error
                # that may have been environmental (timeout, crash).
            return True

        yield from emit_ready()
        while remaining:
            isolated = info.pool_restarts >= self.max_pool_restarts
            if isolated and not info.degraded:
                info.degraded = True
                log_event(
                    _logger, logging.WARNING, "batch.degraded_isolation",
                    pool_restarts=info.pool_restarts,
                    unresolved=len(remaining),
                )
            workers = 1 if isolated else self._effective_workers()
            pool = self._get_pool(workers)
            try:
                runner = (
                    self._run_isolated(
                        pool, kind, payloads, remaining, finalize, info
                    )
                    if isolated
                    else self._run_pooled(
                        pool, workers, kind, payloads, remaining, held,
                        finalize,
                    )
                )
                for _ in runner:
                    yield from emit_ready()
            except BrokenProcessPool:
                info.pool_restarts += 1
                self.close()
                log_event(
                    _logger, logging.WARNING, "batch.pool_died",
                    pool_restarts=info.pool_restarts,
                    unresolved=len(remaining),
                    degrading=info.pool_restarts >= self.max_pool_restarts,
                )
            yield from emit_ready()
        yield from emit_ready()

    def _effective_workers(self) -> int:
        """Pooled worker count: ``jobs`` clamped to the usable cores.

        Workers are CPU-bound; spawning more of them than the scheduler
        has cores for adds context-switch and IPC overhead without any
        extra parallelism.  ``oversubscribe=True`` opts out of the clamp.
        """
        if self.oversubscribe:
            return self.jobs
        return max(1, min(self.jobs, usable_cores()))

    def _get_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent worker pool, (re)built only when needed.

        Reusing the pool across ``extract_*`` calls keeps workers -- and
        their initialized grammar, schedule, and cache -- warm.  Where the
        platform offers the ``fork`` start method, the parent pre-builds
        the grammar and schedule first, so workers inherit the warmed
        caches through copy-on-write instead of rebuilding them.
        """
        if self._pool is not None and self._pool_workers != workers:
            self.close()
        if self._pool is None:
            mp_context = None
            if "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
                try:
                    # Pre-warm before forking: children inherit the
                    # grammar/schedule caches *and* the warmup parse's
                    # import/alloc state (numpy, parser core) through
                    # copy-on-write.
                    self._local_extractor().warmup()
                except Exception:  # noqa: BLE001 - workers surface the error
                    pass
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(
                    self.grammar_factory,
                    self.parser_config,
                    self._worker_cache_spec(),
                    self.resilience,
                ),
            )
            self._pool_workers = workers
        return self._pool

    def _worker_cache_spec(self) -> CacheSpec:
        """How workers should cache: share our disk file, or memory-only."""
        if self.cache is None:
            return None
        if self.cache.path is not None:
            return ("disk", str(self.cache.path), self.cache.capacity)
        return ("memory", self.cache.capacity)

    @staticmethod
    def _auto_chunksize(count: int, workers: int) -> int:
        """Inputs per IPC round-trip: about four waves per worker.

        Large enough to amortize pickling, small enough that every worker
        gets several chunks (load balancing) and a crashed chunk forfeits
        little work; capped so huge batches still stream results.
        """
        if count <= 0:
            return 1
        return max(1, min(64, -(-count // (workers * 4))))

    def _run_pooled(
        self,
        pool: ProcessPoolExecutor,
        workers: int,
        kind: str,
        payloads: dict[int, Any],
        remaining: set[int],
        held: set[int],
        finalize: Callable[[BatchRecord], bool],
    ) -> Iterator[None]:
        """Normal mode: chunked fan-out over the full pool.

        Yields (nothing meaningful) after each completed future so the
        caller can flush ordered records.  Raises
        :class:`BrokenProcessPool` when a worker crash kills the pool;
        everything not yet finalized stays in *remaining* for the caller
        to requeue on a fresh pool.  Indices in *held* (dedupe followers
        awaiting their leader) are never dispatched here.
        """
        todo = sorted(remaining - held)
        if not todo:
            # Defensive: every remaining index claims to await a leader,
            # but leaders always resolve or promote their followers --
            # dispatch them individually rather than spin.
            held.clear()
            todo = sorted(remaining)
        chunksize = self.chunksize or self._auto_chunksize(len(todo), workers)
        inflight: dict[Future, list[int]] = {}
        for start in range(0, len(todo), chunksize):
            indices = todo[start:start + chunksize]
            future = pool.submit(
                _extract_chunk, kind,
                [(index, payloads[index]) for index in indices],
                self.timeout,
            )
            inflight[future] = indices
        while inflight:
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                indices = inflight.pop(future)
                # Raises BrokenProcessPool when the pool died under this
                # chunk; the orchestrator handles recovery.
                for record in future.result():
                    if not finalize(record):
                        retry = pool.submit(
                            _extract_chunk, kind,
                            [(record.index, payloads[record.index])],
                            self.timeout,
                        )
                        inflight[retry] = [record.index]
            yield None

    def _run_isolated(
        self,
        pool: ProcessPoolExecutor,
        kind: str,
        payloads: dict[int, Any],
        remaining: set[int],
        finalize: Callable[[BatchRecord], bool],
        info: _RunInfo,
    ) -> Iterator[None]:
        """Degraded mode: one worker, one form in flight.

        A pool death now identifies its culprit exactly -- that form is
        recorded as a ``WorkerCrash`` error (or retried, if attempts
        remain) on a rebuilt pool, and the batch marches on.

        Dedupe followers need no special handling here: a follower's
        index is always greater than its leader's, so by the time the
        scan reaches it the leader has resolved it (skipped by the
        ``remaining`` guard) or promoted it to individual dispatch.
        """
        current = pool
        for index in sorted(remaining):
            while index in remaining:
                try:
                    record = current.submit(
                        _extract_chunk, kind,
                        [(index, payloads[index])],
                        self.timeout,
                    ).result()[0]
                except BrokenProcessPool:
                    info.pool_restarts += 1
                    log_event(
                        _logger, logging.WARNING, "batch.worker_crash",
                        index=index, pool_restarts=info.pool_restarts,
                    )
                    record = BatchRecord(
                        index=index,
                        error="WorkerCrash: worker process died "
                              "extracting this form",
                    )
                    self.close()
                    current = self._get_pool(workers=1)
                finalize(record)
                yield None

    def _backoff(self, attempt: int, index: int, error: str | None) -> None:
        log_event(
            _logger, logging.INFO, "batch.retry",
            index=index, attempt=attempt, error=error,
        )
        delay = self.retry_backoff * (2 ** (attempt - 1))
        if delay > 0:
            time.sleep(delay)
