"""The extraction cache: signature -> semantic model + parse statistics.

:class:`ExtractionCache` is a bounded, thread-safe LRU map from a content
signature (:mod:`repro.cache.signature`) to a :class:`CacheEntry` -- the
plain-data residue of one extraction (serialized semantic model, parse
statistic counters, pipeline warnings).  Entries are stored and returned
as *data*, never as live objects: every hit deserializes a fresh
:class:`~repro.semantics.condition.SemanticModel`, so cached results can
never alias each other or be corrupted by a caller mutating its copy.

An optional on-disk backing makes the cache process-safe: entries are
appended to a JSON-lines file (one entry per line, ``flock``-guarded where
available) and re-read incrementally whenever the file's size/mtime shows
another process has appended -- pool workers sharing one path therefore
share hits within and across batches.  The file is append-only; LRU
eviction applies to the in-memory view only (the newest line for a
signature wins on reload), so a long-lived cache directory trades disk for
hit rate and can simply be deleted to invalidate.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.parser.parser import ParseStats
from repro.semantics.condition import SemanticModel
from repro.semantics.serialize import model_from_dict, model_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.extractor import ExtractionResult

try:  # POSIX only; the cache degrades to lock-free appends elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Default bound on in-memory entries.
DEFAULT_CAPACITY = 2048

#: Disk format version; mismatched lines are skipped on load.  Version 2
#: adds a per-line CRC-32 checksum over the signature + entry payload;
#: version-1 lines (written by older builds) are still accepted, without
#: validation.
DISK_FORMAT_VERSION = 2


def _line_checksum(signature: str, payload: dict) -> int:
    """CRC-32 binding a disk line's signature to its entry payload."""
    canonical = signature + "\n" + json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class CacheEntry:
    """Plain-data snapshot of one extraction outcome.

    ``model`` is the :func:`~repro.semantics.serialize.model_to_dict` form;
    ``stats`` the :class:`~repro.parser.parser.ParseStats` fields as a
    dict (``None`` when the producer had no stats); ``warnings`` the
    pipeline warnings recorded while producing the entry.
    """

    model: dict
    stats: dict | None = None
    warnings: list[str] = field(default_factory=list)

    @classmethod
    def from_result(
        cls, result: "ExtractionResult", warnings: list[str] | None = None
    ) -> "CacheEntry":
        """Snapshot an extraction result (warnings default to none --
        warnings recorded upstream of the cached stages replay live)."""
        return cls(
            model=model_to_dict(result.model),
            stats=dataclasses.asdict(result.parse.stats),
            warnings=list(warnings or ()),
        )

    @classmethod
    def from_parts(
        cls,
        model: SemanticModel,
        stats: ParseStats | None,
        warnings: list[str] | None = None,
    ) -> "CacheEntry":
        return cls(
            model=model_to_dict(model),
            stats=dataclasses.asdict(stats) if stats is not None else None,
            warnings=list(warnings or ()),
        )

    def rebuild_model(self) -> SemanticModel:
        """A fresh, independent semantic model (never a shared object)."""
        return model_from_dict(self.model)

    def rebuild_stats(self) -> ParseStats | None:
        """A fresh ParseStats replaying the original counters.

        Unknown fields (an entry written by a newer version) are dropped;
        missing ones take their defaults -- a stale disk cache degrades to
        slightly lossy counters, never to an exception.
        """
        if self.stats is None:
            return None
        known = {spec.name for spec in dataclasses.fields(ParseStats)}
        return ParseStats(
            **{name: value for name, value in self.stats.items() if name in known}
        )

    def to_payload(self) -> dict:
        return {
            "model": self.model,
            "stats": self.stats,
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CacheEntry":
        """Rebuild an entry from its :meth:`to_payload` form.

        Raises :class:`ValueError` when a field has the wrong shape
        (``model`` not a dict, ``stats`` not a dict/None, ``warnings``
        not a list of strings).  Disk lines -- including version-1 lines,
        which carry no checksum -- pass through here on reload, so a
        malformed field must fail *here*, where the loader quarantines
        the line, rather than deep inside ``rebuild_stats()`` on the
        "never fails" hit path.
        """
        model = payload.get("model", {})
        if not isinstance(model, dict):
            raise ValueError(
                f"model must be a dict, got {type(model).__name__}"
            )
        stats = payload.get("stats")
        if stats is not None and not isinstance(stats, dict):
            raise ValueError(
                f"stats must be a dict or null, got {type(stats).__name__}"
            )
        warnings = payload.get("warnings", ())
        if not isinstance(warnings, (list, tuple)) or not all(
            isinstance(item, str) for item in warnings
        ):
            raise ValueError("warnings must be a list of strings")
        return cls(
            model=dict(model),
            stats=dict(stats) if stats is not None else None,
            warnings=list(warnings),
        )


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: Disk lines quarantined on reload: undecodable JSON, unknown format
    #: version, malformed fields, or a failed checksum.  A nonzero count
    #: means the backing file took damage (torn writes survive SIGKILL,
    #: bit rot, concurrent non-cache writers) -- the damaged entries are
    #: simply re-extracted on their next miss.
    corrupt_records: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "corrupt_records": self.corrupt_records,
        }


class ExtractionCache:
    """Bounded LRU ``signature -> CacheEntry``, optionally disk-backed.

    Args:
        capacity: Maximum in-memory entries; the least recently used entry
            is evicted past it.  Must be >= 1.
        path: Optional JSON-lines file shared between processes.  The file
            (and missing parent directories) is created on first put;
            loads are incremental and tolerate concurrent appends and
            truncated trailing lines.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        path: str | os.PathLike | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._stats = CacheStats()
        #: Bytes of the disk file already folded into ``_entries``.
        self._disk_offset = 0
        #: Signatures known to have a line in the current file generation.
        #: Consulted by :meth:`put` so an LRU-evicted signature that comes
        #: back is *not* appended again -- the file stays O(signatures),
        #: not O(puts), under long-lived churn.
        self._disk_signatures: set[str] = set()
        #: Fault-injection seam for the chaos harness: called at the top
        #: of every disk append, inside the OSError-degradation scope.
        #: A hook that raises OSError exercises the disk-full path
        #: deterministically; the cache must degrade to memory-only.
        self.write_fault_hook: Callable[[], None] | None = None
        if self.path is not None:
            with self._lock:
                self._refresh_from_disk()

    # -- core operations ---------------------------------------------------------

    def get(self, signature: str) -> CacheEntry | None:
        """The entry for *signature*, refreshed from disk, or ``None``."""
        with self._lock:
            if self.path is not None:
                self._refresh_from_disk()
            entry = self._entries.get(signature)
            if entry is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(signature)
            self._stats.hits += 1
            return entry

    def put(self, signature: str, entry: CacheEntry) -> None:
        """Insert (or refresh) *signature*; evict LRU past capacity."""
        with self._lock:
            self._entries[signature] = entry
            self._entries.move_to_end(signature)
            self._stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
            # Append at most once per signature per file generation: the
            # in-memory map forgets evicted signatures, but the append-only
            # file does not, so membership is tracked separately.
            if self.path is not None and signature not in self._disk_signatures:
                self._append_to_disk(signature, entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._entries

    def clear(self) -> None:
        """Drop the in-memory view (the disk file, if any, is kept).

        The disk offset resets to zero so the next lookup refolds the
        backing file -- a cleared disk-backed cache repopulates from disk
        instead of missing every signature it once held.
        """
        with self._lock:
            self._entries.clear()
            self._disk_offset = 0

    @property
    def stats(self) -> CacheStats:
        return self._stats

    # -- disk backing -------------------------------------------------------------

    def _append_to_disk(self, signature: str, entry: CacheEntry) -> None:
        assert self.path is not None
        payload = entry.to_payload()
        line = (
            json.dumps(
                {
                    "v": DISK_FORMAT_VERSION,
                    "sig": signature,
                    "sum": _line_checksum(signature, payload),
                    "entry": payload,
                },
                ensure_ascii=False,
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        try:
            if self.write_fault_hook is not None:
                self.write_fault_hook()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "ab") as fh:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    fh.write(line)
                    fh.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            self._disk_signatures.add(signature)
            # Our own append is now part of the on-disk tail; skip re-reading
            # it on the next refresh when nobody else wrote meanwhile.
            self._disk_offset = self.path.stat().st_size
        except OSError:
            # Disk trouble degrades the cache to memory-only, silently --
            # caching is an optimization, never a correctness dependency.
            pass

    def _refresh_from_disk(self) -> None:
        """Fold lines other processes appended since the last look."""
        assert self.path is not None
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size < self._disk_offset:
            # Truncated/replaced file: a new generation -- reload from
            # scratch and forget which signatures the old file held.
            self._disk_offset = 0
            self._disk_signatures.clear()
        if size == self._disk_offset:
            return
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._disk_offset)
                blob = fh.read(size - self._disk_offset)
        except OSError:
            return
        consumed = blob.rfind(b"\n")
        if consumed < 0:
            return  # a concurrent writer is mid-line; retry next refresh
        for raw in blob[: consumed + 1].splitlines():
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # Torn or corrupt line: quarantine (skip + count), keep
                # the rest -- one damaged record must not void the file.
                self._stats.corrupt_records += 1
                continue
            version = record.get("v") if isinstance(record, dict) else None
            if version not in (1, DISK_FORMAT_VERSION):
                self._stats.corrupt_records += 1
                continue
            signature = record.get("sig")
            payload = record.get("entry")
            if not isinstance(signature, str) or not isinstance(payload, dict):
                self._stats.corrupt_records += 1
                continue
            if version == DISK_FORMAT_VERSION and record.get(
                "sum"
            ) != _line_checksum(signature, payload):
                # Checksum mismatch: the line is complete JSON but its
                # content was altered (bit rot, interleaved writers).
                self._stats.corrupt_records += 1
                continue
            try:
                entry = CacheEntry.from_payload(payload)
            except (ValueError, TypeError):
                # Complete JSON, plausible envelope, malformed fields (a
                # v1 line never had a checksum to catch this): quarantine.
                self._stats.corrupt_records += 1
                continue
            self._entries[signature] = entry
            self._disk_signatures.add(signature)
            self._entries.move_to_end(signature)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        self._disk_offset += consumed + 1
