"""Content-addressed extraction caching (see ``docs/PERFORMANCE.md``).

Real form workloads are dominated by repeated token patterns -- the same
hidden grammar rendered over and over.  This package gives every layer of
the pipeline a way to recognize a form it has already parsed:

* :func:`token_signature` / :func:`html_signature` -- canonical,
  position-quantized content hashes (translation-invariant for tokens).
* :class:`ExtractionCache` -- a bounded, thread-safe LRU from signature to
  serialized extraction outcome, with an optional process-safe JSON-lines
  disk backing shared by pool workers.
* :class:`CacheEntry` / :class:`CacheStats` -- the stored plain-data
  snapshot and the hit/miss accounting.
"""

from repro.cache.signature import (
    SIGNATURE_QUANTUM,
    grammar_fingerprint,
    html_signature,
    token_signature,
)
from repro.cache.store import (
    DEFAULT_CAPACITY,
    CacheEntry,
    CacheStats,
    ExtractionCache,
)

__all__ = [
    "SIGNATURE_QUANTUM",
    "DEFAULT_CAPACITY",
    "CacheEntry",
    "CacheStats",
    "ExtractionCache",
    "grammar_fingerprint",
    "html_signature",
    "token_signature",
]
