"""Content-addressed signatures for extraction inputs.

The paper's premise is that query forms are sentences of a *shared* hidden
grammar, so real workloads are dominated by repeated token patterns --
often the very same form template rendered at a different page offset.
:func:`token_signature` canonicalizes a token list into a stable hash that
two such renderings share:

* **Translation-invariant** -- positions are re-expressed relative to the
  form's own top-left corner, so moving the whole form by any ``(dx, dy)``
  leaves the signature unchanged.
* **Position-quantized** -- relative coordinates are snapped to a small
  quantum (default 1 px) before hashing, absorbing sub-pixel layout
  jitter.  Quantization can only cause extra cache *misses* or (in theory)
  collapse two forms whose geometry differs by less than the quantum; set
  ``quantum=0`` for exact positions when that matters.
* **Order- and content-sensitive** -- the token sequence order, every
  terminal kind, and every terminal attribute (text, control names,
  options, checked state...) feed the hash, so reordering tokens or
  editing a label changes the signature.

Signatures are plain ``"<space>:<hexdigest>"`` strings (``tok:`` /
``html:`` namespaces), safe as dictionary keys and as JSON-lines disk-cache
keys shared between processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Iterable

from repro.tokens.model import Token

#: Default position quantum in pixels.  Relative coordinates are snapped
#: to multiples of this before hashing.
SIGNATURE_QUANTUM = 1.0

#: Version tag folded into every token signature: bump when the canonical
#: form changes so stale disk caches miss instead of replaying garbage.
_TOKEN_SIGNATURE_VERSION = "1"


def _canonical(value: Any) -> Any:
    """A deterministic, hash-stable view of one attribute value.

    Handles the attribute payloads tokens actually carry -- primitives,
    tuples/lists (select options), frozen dataclasses like
    :class:`~repro.tokens.model.SelectOption`, and nested dicts -- and
    falls back to ``repr`` for anything exotic.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return tuple(
            (str(key), _canonical(item))
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            _canonical(getattr(value, spec.name))
            for spec in dataclasses.fields(value)
        )
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(_canonical(item)) for item in value))
    return repr(value)


def _quantize(value: float, quantum: float) -> float:
    if quantum <= 0:
        return value
    return round(value / quantum)


def token_signature(
    tokens: Iterable[Token], quantum: float = SIGNATURE_QUANTUM
) -> str:
    """Canonical content hash of a token list (see module docstring).

    The hash covers, per token in sequence order: the terminal kind, the
    canonicalized attributes, and the bounding box quantized *relative to
    the whole form's top-left corner* -- which also fixes each token's
    row band, so vertical reordering changes the signature even when the
    attribute content is identical.
    """
    tokens = list(tokens)
    if tokens:
        origin_x = min(token.bbox.left for token in tokens)
        origin_y = min(token.bbox.top for token in tokens)
    else:
        origin_x = origin_y = 0.0
    parts: list[Any] = [_TOKEN_SIGNATURE_VERSION, quantum, len(tokens)]
    for token in tokens:
        box = token.bbox
        parts.append(
            (
                token.terminal,
                _quantize(box.left - origin_x, quantum),
                _quantize(box.right - origin_x, quantum),
                _quantize(box.top - origin_y, quantum),
                _quantize(box.bottom - origin_y, quantum),
                _canonical(token.attrs),
            )
        )
    digest = hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
    return f"tok:{digest}"


def grammar_fingerprint(grammar: Any) -> str:
    """Stable content hash of a grammar's structure (a cache generation).

    Hashes the grammar's :meth:`describe` listing -- productions,
    spatial bounds, and preferences in declaration order -- so any
    change to the 2P grammar yields a new fingerprint.  The serving tier
    folds this into every cache key as a *generation tag*: a grammar
    change makes every previously cached signature miss logically,
    without anyone deleting the cache directory by hand.

    Accepts anything with a ``describe() -> str`` (a
    :class:`~repro.grammar.grammar.TwoPGrammar`, an analyzer view, ...).
    """
    described = grammar.describe() if hasattr(grammar, "describe") else repr(grammar)
    digest = hashlib.sha256(described.encode("utf-8")).hexdigest()
    return f"g2p:{digest[:16]}"


def html_signature(html: str) -> str:
    """Exact content hash of a raw HTML source.

    Coarser than :func:`token_signature` (no layout invariance -- two
    byte-identical pages only), but computable without parsing, which is
    what lets the batch engine dedupe inputs *before* dispatching them to
    workers.
    """
    digest = hashlib.sha256(html.encode("utf-8", errors="replace")).hexdigest()
    return f"html:{digest}"
