"""Batch evaluation: run an extractor over datasets, collect Figure 15.

The harness abstracts over extractors (the form extractor, or the heuristic
baseline) through a simple callable interface: anything mapping HTML to a
list of conditions can be evaluated.

When the default extractor is in use, every source flows through the batch
engine and its per-stage traces are folded into an optional
:class:`~repro.observability.MetricsRegistry` -- corpus-scale evaluation
with per-form diagnosability (``repro evaluate --metrics out.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.datasets.generator import GeneratedSource
from repro.datasets.repository import Dataset
from repro.evaluation.metrics import (
    SourceMetrics,
    average,
    distribution_over_thresholds,
    overall_metrics,
    per_source_metrics,
)
from repro.extractor import FormExtractor
from repro.observability.metrics import MetricsRegistry
from repro.semantics.condition import Condition
from repro.semantics.matching import ConditionMatcher

#: An extractor for evaluation purposes: html -> extracted conditions.
ExtractFn = Callable[[str], list[Condition]]


@dataclass
class SourceResult:
    """Evaluation outcome for one source."""

    source: GeneratedSource
    extracted: list[Condition]
    metrics: SourceMetrics
    elapsed_seconds: float = 0.0

    @property
    def precision(self) -> float:
        return self.metrics.precision

    @property
    def recall(self) -> float:
        return self.metrics.recall


@dataclass
class DatasetResult:
    """Evaluation outcome for one dataset."""

    name: str
    results: list[SourceResult] = field(default_factory=list)

    # -- aggregate views ----------------------------------------------------------

    @property
    def precisions(self) -> list[float]:
        return [result.precision for result in self.results]

    @property
    def recalls(self) -> list[float]:
        return [result.recall for result in self.results]

    @property
    def average_precision(self) -> float:
        """Figure 15(c): mean per-source precision."""
        return average(self.precisions)

    @property
    def average_recall(self) -> float:
        """Figure 15(c): mean per-source recall."""
        return average(self.recalls)

    @property
    def overall(self) -> SourceMetrics:
        """Figure 15(d): metrics over all conditions aggregated."""
        return overall_metrics([result.metrics for result in self.results])

    @property
    def accuracy(self) -> float:
        """The paper's headline number: ``(Pa + Ra) / 2``."""
        overall = self.overall
        return (overall.precision + overall.recall) / 2.0

    def precision_distribution(self) -> dict[float, float]:
        """Figure 15(a): % of sources per precision bucket."""
        return distribution_over_thresholds(self.precisions)

    def recall_distribution(self) -> dict[float, float]:
        """Figure 15(b): % of sources per recall bucket."""
        return distribution_over_thresholds(self.recalls)

    @property
    def total_elapsed(self) -> float:
        return sum(result.elapsed_seconds for result in self.results)


class EvaluationHarness:
    """Runs an extraction function over datasets and scores it.

    Extraction goes through the batch engine
    (:class:`repro.batch.BatchExtractor`) whenever the default extractor is
    in use: ``jobs=1`` (the default) runs serially in-process, exactly as a
    hand-written loop would; ``jobs=N`` fans sources over ``N`` worker
    processes.  A custom ``extract`` callable cannot be shipped to workers
    (it may close over anything), so it always runs serially.

    Args:
        extract: Custom ``html -> conditions`` callable (default: the
            standard :class:`FormExtractor`).
        matcher: Condition equivalence used for scoring.
        jobs: Worker processes for the default-extractor path.
        metrics: Registry receiving one trace per evaluated source plus
            batch fault counters (default-extractor path only -- a custom
            callable yields no traces).
        timeout: Per-form extraction budget in seconds, enforced by the
            batch engine's watchdog (default-extractor path only).
        retries: Extra attempts for failed forms before their error
            record is final.
        cache: Extraction cache for the batch engine (``True`` for a
            private in-memory cache, or a shared
            :class:`~repro.cache.ExtractionCache`).  Hit/miss/dedupe
            counts surface as ``batch.cache.*`` metrics.
        cache_dir: Directory for a disk-backed cache shared with pool
            workers (implies caching on).
        journal: Resume-journal path for the batch engine; finalized
            per-form outcomes are checkpointed there.
        resume: Replay successfully journaled forms instead of
            re-extracting them (requires *journal*); ``batch.resume.*``
            metrics report what was skipped.
        resilience: Run extractions under the degradation ladder
            (``True`` or a :class:`~repro.resilience.ladder.
            ResilienceConfig`): pathological sources score as degraded
            models instead of erroring, counted per ``degrade.<level>``.
    """

    def __init__(
        self,
        extract: ExtractFn | None = None,
        matcher: ConditionMatcher | None = None,
        jobs: int | str = 1,
        metrics: MetricsRegistry | None = None,
        timeout: float | None = None,
        retries: int = 0,
        cache: object | bool | None = None,
        cache_dir: str | None = None,
        journal: str | None = None,
        resume: bool = False,
        resilience: object | bool | None = None,
    ):
        if jobs != "auto" and (not isinstance(jobs, int) or jobs < 1):
            raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
        self.jobs = jobs
        self.metrics = metrics
        self.timeout = timeout
        self.retries = retries
        self.cache = cache
        self.cache_dir = cache_dir
        self.journal = journal
        self.resume = resume
        self.resilience = resilience
        self.custom_extract = extract is not None
        if extract is None:
            extractor = FormExtractor()

            def extract(html: str) -> list[Condition]:
                return list(extractor.extract(html).conditions)

        self.extract = extract
        self.matcher = matcher or ConditionMatcher()

    def evaluate_source(self, source: GeneratedSource) -> SourceResult:
        """Extract from one source and score against its ground truth."""
        started = time.perf_counter()
        extracted = self.extract(source.html)
        elapsed = time.perf_counter() - started
        return self._score(source, extracted, elapsed)

    def evaluate(self, dataset: Dataset) -> DatasetResult:
        """Evaluate every source of *dataset*.

        With the default extractor every source flows through the batch
        engine -- serially in-process for ``jobs=1``, over worker
        processes otherwise -- so per-form failures (exceptions, timeouts,
        worker crashes) score as empty extractions instead of aborting the
        evaluation, and per-stage traces reach the metrics registry.
        """
        result = DatasetResult(name=dataset.name)
        sources = list(dataset)
        if not self.custom_extract:
            from repro.batch import BatchExtractor

            batch = BatchExtractor(
                jobs=self.jobs,
                timeout=self.timeout,
                retries=self.retries,
                cache=self.cache,
                cache_dir=self.cache_dir,
                journal=self.journal,
                resume=self.resume,
                resilience=self.resilience,
            )
            stream = batch.iter_html(source.html for source in sources)
            for source, record in zip(sources, stream):
                if self.metrics is not None:
                    if record.trace is not None:
                        self.metrics.record_trace(record.trace)
                        level = (record.trace.get("tags") or {}).get(
                            "degrade.level"
                        )
                        if level:
                            self.metrics.inc(f"degrade.{level}")
                    if record.error is not None:
                        self.metrics.inc("evaluate.form_errors")
                extracted = (
                    list(record.model.conditions)
                    if record.model is not None
                    else []
                )
                result.results.append(
                    self._score(source, extracted, record.elapsed_seconds)
                )
            if self.metrics is not None:
                report = stream.report()
                self.metrics.inc("evaluate.sources", len(sources))
                self.metrics.inc("batch.pool_restarts", report.pool_restarts)
                if report.degraded:
                    self.metrics.inc("batch.degraded_runs")
                self.metrics.inc("batch.cache.hits", report.cache_hits)
                self.metrics.inc("batch.cache.misses", report.cache_misses)
                self.metrics.inc(
                    "batch.dedupe.collapsed", report.dedupe_collapsed
                )
                self.metrics.inc("batch.resume.skipped", report.resume_skipped)
                self.metrics.inc(
                    "batch.resume.corrupt_lines", report.journal_corrupt_lines
                )
                self.metrics.inc(
                    "batch.cache.corrupt_records", report.cache_corrupt_records
                )
            batch.close()
            return result
        for source in sources:
            result.results.append(self.evaluate_source(source))
        return result

    def _score(
        self,
        source: GeneratedSource,
        extracted: list[Condition],
        elapsed: float,
    ) -> SourceResult:
        metrics = per_source_metrics(extracted, source.truth, self.matcher)
        return SourceResult(
            source=source,
            extracted=extracted,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )

    def evaluate_all(
        self, datasets: Iterable[Dataset]
    ) -> dict[str, DatasetResult]:
        """Evaluate several datasets, keyed by name."""
        return {dataset.name: self.evaluate(dataset) for dataset in datasets}
