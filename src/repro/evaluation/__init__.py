"""Evaluation harness: metrics, dataset runs, and the vocabulary survey.

Implements the paper's Section 6 measurement methodology: per-source and
overall precision/recall over extracted conditions
(:mod:`repro.evaluation.metrics`), batch extraction over datasets
(:mod:`repro.evaluation.harness`), and the Section 3.1 survey of condition
patterns as building blocks (:mod:`repro.evaluation.survey`).
"""

from repro.evaluation.harness import DatasetResult, EvaluationHarness, SourceResult
from repro.evaluation.metrics import (
    distribution_over_thresholds,
    overall_metrics,
    per_source_metrics,
)
from repro.evaluation.survey import (
    pattern_frequencies,
    pattern_occurrence_matrix,
    vocabulary_growth,
)

__all__ = [
    "DatasetResult",
    "EvaluationHarness",
    "SourceResult",
    "distribution_over_thresholds",
    "overall_metrics",
    "pattern_frequencies",
    "pattern_occurrence_matrix",
    "per_source_metrics",
    "vocabulary_growth",
]
