"""The condition-pattern survey (paper Section 3.1, Figure 4).

The paper's motivating observation: across 150 autonomous sources the
vocabulary of condition patterns is small (21 more-than-once patterns),
converges quickly as sources are added, spans domains, and is
Zipf-distributed.  These functions compute the same statistics over a
generated dataset's pattern usage.
"""

from __future__ import annotations

from collections import Counter

from repro.datasets.patterns import PATTERNS_BY_ID
from repro.datasets.repository import Dataset


def _surveyed(patterns_used: list[int], in_grammar_only: bool) -> list[int]:
    """The pattern ids the survey plots.

    Figure 4 shows the 21 "more-than-once" patterns the paper catalogues;
    the rare out-of-grammar conventions are excluded by default, exactly as
    the figure excludes the four once-only patterns.
    """
    if not in_grammar_only:
        return list(patterns_used)
    return [p for p in patterns_used if PATTERNS_BY_ID[p].in_grammar]


def pattern_occurrence_matrix(
    dataset: Dataset, in_grammar_only: bool = True
) -> list[tuple[int, int]]:
    """The (source index, pattern id) marks of Figure 4(a).

    One entry per distinct pattern per source, in source order -- the "+"
    marks of the scatter plot.
    """
    marks: list[tuple[int, int]] = []
    for index, source in enumerate(dataset.sources):
        used = _surveyed(source.patterns_used, in_grammar_only)
        for pattern_id in sorted(set(used)):
            marks.append((index, pattern_id))
    return marks


def vocabulary_growth(
    dataset: Dataset, in_grammar_only: bool = True
) -> list[int]:
    """Cumulative distinct-pattern count after each source (Figure 4(a)).

    The flattening of this curve is the paper's "concerted structure"
    evidence: later sources mostly reuse earlier patterns.
    """
    seen: set[int] = set()
    growth: list[int] = []
    for source in dataset.sources:
        seen.update(_surveyed(source.patterns_used, in_grammar_only))
        growth.append(len(seen))
    return growth


def pattern_frequencies(
    dataset: Dataset, by_domain: bool = False, in_grammar_only: bool = True
) -> dict[str, Counter]:
    """Occurrence counts per pattern (Figure 4(b)).

    Returns a mapping with a ``"Total"`` counter and, when *by_domain* is
    true, one counter per domain.  Counting is per occurrence (a pattern
    used twice in one source counts twice), matching "Number of
    Observations" on the figure's y-axis.
    """
    total: Counter = Counter()
    per_domain: dict[str, Counter] = {}
    for source in dataset.sources:
        used = _surveyed(source.patterns_used, in_grammar_only)
        total.update(used)
        if by_domain:
            per_domain.setdefault(source.domain, Counter()).update(used)
    result: dict[str, Counter] = {"Total": total}
    if by_domain:
        result.update(per_domain)
    return result


def ranked_frequencies(dataset: Dataset) -> list[tuple[int, int]]:
    """(pattern id, count) pairs sorted by descending frequency."""
    counts = pattern_frequencies(dataset)["Total"]
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def cross_domain_reuse(
    dataset: Dataset, in_grammar_only: bool = True
) -> dict[str, int]:
    """How many *new* patterns each domain introduces, in dataset order.

    The paper observes that Automobiles and Airfares mostly reuse Books'
    patterns; a healthy reproduction shows later domains introducing few
    new patterns.
    """
    seen: set[int] = set()
    introduced: dict[str, int] = {}
    for source in dataset.sources:
        used = set(_surveyed(source.patterns_used, in_grammar_only))
        fresh = used - seen
        introduced[source.domain] = introduced.get(source.domain, 0) + len(fresh)
        seen.update(used)
    return introduced
