"""Precision/recall metrics (paper Section 6.1).

Two granularities, as in the paper:

* **per-source**: for interface q, ``Ps(q) = |Cs ∩ Es| / |Es|`` and
  ``Rs(q) = |Cs ∩ Es| / |Cs|`` where ``Cs`` is the ground-truth condition
  set and ``Es`` the extracted set (intersection computed by the condition
  matcher, one-to-one);
* **overall**: aggregate the same counts over all sources of a dataset
  (``Pa``, ``Ra``).  The paper's headline "accuracy" is ``(Pa + Ra) / 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semantics.condition import Condition
from repro.semantics.matching import ConditionMatcher

#: Precision-axis thresholds of Figure 15(a)/(b): a source falls in the
#: bucket of the highest threshold its score reaches.
FIGURE15_THRESHOLDS: tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.0)


@dataclass(frozen=True)
class SourceMetrics:
    """Per-source counts and derived precision/recall."""

    matched: int
    extracted: int
    expected: int

    @property
    def precision(self) -> float:
        """``Ps``: fraction of extracted conditions that are correct.

        An extraction with no conditions has precision 1.0 when nothing was
        expected, else 0.0 -- extracting nothing from a real form is a miss,
        not a vacuous success.
        """
        if self.extracted == 0:
            return 1.0 if self.expected == 0 else 0.0
        return self.matched / self.extracted

    @property
    def recall(self) -> float:
        """``Rs``: fraction of ground-truth conditions extracted."""
        if self.expected == 0:
            return 1.0
        return self.matched / self.expected

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)


def per_source_metrics(
    extracted: list[Condition],
    truth: list[Condition],
    matcher: ConditionMatcher | None = None,
) -> SourceMetrics:
    """Match *extracted* against *truth* and count."""
    matcher = matcher or ConditionMatcher()
    pairs = matcher.match_sets(extracted, truth)
    return SourceMetrics(
        matched=len(pairs), extracted=len(extracted), expected=len(truth)
    )


def overall_metrics(per_source: list[SourceMetrics]) -> SourceMetrics:
    """Aggregate counts over a dataset (the paper's ``Pa``/``Ra``)."""
    return SourceMetrics(
        matched=sum(m.matched for m in per_source),
        extracted=sum(m.extracted for m in per_source),
        expected=sum(m.expected for m in per_source),
    )


def distribution_over_thresholds(
    scores: list[float],
    thresholds: tuple[float, ...] = FIGURE15_THRESHOLDS,
) -> dict[float, float]:
    """Percentage of sources whose score reaches each threshold bucket.

    Reproduces the x-axis of Figure 15(a)/(b): a source with score ``s``
    lands in the bucket of the highest threshold ``t`` with ``s >= t``
    (scores are clamped into [0, 1] first).  Returned values are
    percentages that sum to 100 (up to rounding).
    """
    if not scores:
        return {threshold: 0.0 for threshold in thresholds}
    counts = {threshold: 0 for threshold in thresholds}
    for raw in scores:
        score = min(1.0, max(0.0, raw))
        for threshold in thresholds:  # descending
            if score >= threshold:
                counts[threshold] += 1
                break
    total = len(scores)
    return {
        threshold: 100.0 * count / total for threshold, count in counts.items()
    }


def average(scores: list[float]) -> float:
    """Arithmetic mean, 0.0 for an empty list."""
    return sum(scores) / len(scores) if scores else 0.0
