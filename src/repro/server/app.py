"""The HTTP application: routes, response encoding, and lifecycle.

:class:`ExtractionServer` wires the transport layer
(:class:`~repro.server.http.HttpServer`) to the admission-controlled
:class:`~repro.server.service.ExtractionService` and owns the four
routes of the API:

================  =======  =====================================================
route             method   behaviour
================  =======  =====================================================
``/extract``      POST     one document in (JSON ``{"html": ...}`` or a raw
                           ``text/html`` body), serialized semantic model +
                           warnings + ``degrade.level`` out.  Hostile payloads
                           come back HTTP 200 with a degraded model; saturation
                           is 429 + ``Retry-After``.
``/batch``        POST     ``{"items": [...]}`` -- admitted (or shed)
                           atomically, records returned in input order.
``/metrics``      GET      the service registry in Prometheus text format.
``/healthz``      GET      readiness (alias of ``/readyz``): 200 with
                           pool/queue/breaker facts; 503 once draining or with
                           the circuit breaker open.
``/livez``        GET      liveness: 200 whenever the event loop answers.
``/readyz``       GET      readiness proper (see ``/healthz``).
``/cache``        DELETE   bump the cache generation -- every previously
                           cached signature misses logically, the disk file is
                           untouched.
================  =======  =====================================================

Requests are attributed to a client (the ``X-Client-Id`` header when
present, else the peer address) and run through the per-client fairness
gate before global admission -- a greedy client sheds 429 while everyone
else keeps their share.

Every request gets a request id (threaded into the extraction
:class:`~repro.observability.trace.Trace` and echoed in the response)
and one structured ``serve.access`` log line -- with ``--log-json``
those lines are machine-parseable JSON, the access log of the service.

:func:`run_server` is the blocking entrypoint behind ``repro serve``:
it installs SIGINT/SIGTERM handlers and performs the graceful-shutdown
sequence (drain the queue, close the pool, flush cache/journal state,
then close connections).
"""

from __future__ import annotations

import asyncio
import logging
import math
import signal
import time

from repro.observability.logs import get_logger, log_event
from repro.observability.metrics import MetricsRegistry
from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.server.config import ServerConfig
from repro.server.http import HttpProtocolError, HttpServer, Request, Response
from repro.server.service import (
    ExtractionService,
    ServeResult,
    ServiceSaturated,
    ServiceUnavailable,
)

_logger = get_logger("repro.server")

#: Known routes and the methods they accept (anything else: 404/405).
_ROUTES: dict[str, frozenset[str]] = {
    "/extract": frozenset({"POST"}),
    "/batch": frozenset({"POST"}),
    "/metrics": frozenset({"GET"}),
    "/healthz": frozenset({"GET"}),
    "/livez": frozenset({"GET"}),
    "/readyz": frozenset({"GET"}),
    "/cache": frozenset({"DELETE"}),
}


def _result_payload(result: ServeResult) -> dict:
    """The response-body form of one served extraction."""
    record = result.record.to_payload()
    return {
        "request_id": result.request_id,
        "model": record["model"],
        "stats": record["stats"],
        "warnings": record["warnings"],
        "error": record["error"],
        "degrade": {"level": result.degrade_level},
        "cached": result.cached,
        "elapsed_seconds": round(result.elapsed_seconds, 6),
    }


def _parse_form_index(value: object) -> int:
    try:
        index = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise HttpProtocolError(
            400, f"form_index must be an integer, got {value!r}"
        ) from exc
    if index < 0:
        raise HttpProtocolError(400, f"form_index must be >= 0, got {index}")
    return index


def _parse_deadline(value: object) -> float | None:
    if value is None:
        return None
    try:
        deadline = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise HttpProtocolError(
            400, f"deadline_seconds must be a number, got {value!r}"
        ) from exc
    if deadline <= 0:
        raise HttpProtocolError(
            400, f"deadline_seconds must be positive, got {deadline:g}"
        )
    return deadline


class ExtractionServer:
    """The whole serving stack: HTTP front + admission + warm pool.

    Usage (tests embed it like this; the CLI goes through
    :func:`run_server`)::

        server = ExtractionServer(ServerConfig(port=0, jobs=1))
        port = await server.start()   # pool warmed, socket bound
        ...
        await server.stop()           # drain, close pool, flush cache
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self.service = ExtractionService(self.config, metrics=metrics)
        self._http = HttpServer(
            self._handle,
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
            idle_timeout_seconds=self.config.idle_timeout_seconds,
            header_timeout_seconds=self.config.header_timeout_seconds,
            body_timeout_seconds=self.config.body_timeout_seconds,
            write_timeout_seconds=self.config.body_timeout_seconds,
            max_connections=self.config.max_connections,
            metric_hook=self.service.metrics.inc,
        )
        self._started = time.time()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self._http.port

    @property
    def metrics(self) -> MetricsRegistry:
        return self.service.metrics

    async def start(self) -> int:
        """Warm the pool, bind the socket; returns the bound port."""
        workers = self.service.warm()
        port = await self._http.start()
        self._started = time.time()
        log_event(
            _logger, logging.INFO, "serve.started",
            host=self.config.host, port=port, workers=workers,
            cache=self.service.cache is not None,
        )
        return port

    async def stop(self) -> bool:
        """Graceful shutdown; True when the queue drained in time.

        Order matters: the service drains first (in-flight extractions
        finish; new work is answered 503), then the HTTP layer waits for
        those responses to flush before connections close.
        """
        drained = await self.service.drain()
        await self._http.stop(grace_seconds=self.config.drain_seconds)
        log_event(_logger, logging.INFO, "serve.stopped", drained=drained)
        return drained

    # -- request handling ---------------------------------------------------------

    async def _handle(self, request: Request) -> Response:
        """Route one request; every path ends in a response + access log."""
        started = time.perf_counter()
        request_id = self.service.next_request_id()
        try:
            response = await self._route(request, request_id)
        except ServiceSaturated as exc:
            response = Response.json(
                {"error": exc.detail, "request_id": request_id},
                status=429,
                headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))
                },
            )
        except ServiceUnavailable as exc:
            headers = (
                {"Retry-After": str(max(1, math.ceil(exc.retry_after)))}
                if exc.retry_after is not None
                else None
            )
            response = Response.json(
                {"error": exc.detail, "request_id": request_id},
                status=503,
                headers=headers,
            )
        except HttpProtocolError as exc:
            response = Response.json(
                {"error": exc.detail, "request_id": request_id},
                status=exc.status,
            )
        except Exception as exc:  # noqa: BLE001 - the API answers 500, not EOF
            log_event(
                _logger, logging.ERROR, "serve.unhandled",
                request_id=request_id, error=f"{type(exc).__name__}: {exc}",
            )
            response = Response.json(
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "request_id": request_id,
                },
                status=500,
            )
        self.metrics.inc(f"serve.http.{response.status}")
        log_event(
            _logger, logging.INFO, "serve.access",
            request_id=request_id, method=request.method, path=request.path,
            status=response.status,
            seconds=round(time.perf_counter() - started, 6),
        )
        return response

    async def _route(self, request: Request, request_id: str) -> Response:
        methods = _ROUTES.get(request.path)
        if methods is None:
            raise HttpProtocolError(404, f"no such route {request.path!r}")
        if request.method not in methods:
            raise HttpProtocolError(
                405, f"{request.method} not allowed on {request.path}"
            )
        if request.path == "/livez":
            return self._livez()
        if request.path in ("/healthz", "/readyz"):
            return self._readyz()
        if request.path == "/metrics":
            return Response.text(
                render_prometheus(self.metrics),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if request.path == "/cache":
            return self._invalidate_cache(request_id)
        if request.path == "/extract":
            return await self._extract(request, request_id)
        return await self._batch(request, request_id)

    def _client_key(self, request: Request) -> str:
        """The fairness identity: declared client id, else peer address."""
        declared = request.headers.get(self.config.client_id_header.lower())
        return declared or request.peer or "anonymous"

    def _health_body(self) -> dict:
        """The shared liveness/readiness facts an ingress keys off."""
        service = self.service
        return {
            "workers": service.workers,
            "queue_depth": service.queue_depth,
            "max_queue": self.config.max_queue,
            "draining": service.draining,
            "breaker": service.breaker.state,
            "cache": service.cache is not None,
            "cache_generation": (
                service.cache_generation if service.cache is not None else None
            ),
            "fairness": service.fairness.snapshot().as_dict(),
            "uptime_seconds": round(time.time() - self._started, 3),
        }

    def _livez(self) -> Response:
        """Liveness: the event loop answered, so the process is alive.

        Always 200 -- draining or a tripped breaker are *readiness*
        facts; an ingress must not restart a pod for them.
        """
        body = self._health_body()
        body["status"] = "alive"
        return Response.json(body)

    def _readyz(self) -> Response:
        """Readiness (also served at /healthz for compatibility).

        503 while draining or with the breaker open -- states in which
        routed traffic would mostly shed -- with the queue/breaker facts
        in the body so an ingress or autoscaler can act on *why*.
        """
        body = self._health_body()
        ready = not self.service.draining and body["breaker"] != "open"
        if self.service.draining:
            body["status"] = "draining"
        elif not ready:
            body["status"] = "breaker-open"
        else:
            body["status"] = "ok"
        return Response.json(body, status=200 if ready else 503)

    def _invalidate_cache(self, request_id: str) -> Response:
        """DELETE /cache: bump the generation; old keys miss logically."""
        if self.service.cache is None:
            raise HttpProtocolError(404, "cache is disabled on this server")
        previous, generation = self.service.bump_cache_generation()
        log_event(
            _logger, logging.INFO, "serve.cache.bumped",
            request_id=request_id, generation=generation,
        )
        return Response.json(
            {
                "request_id": request_id,
                "invalidated": True,
                "previous_generation": previous,
                "generation": generation,
            }
        )

    async def _extract(self, request: Request, request_id: str) -> Response:
        html, form_index, deadline = self._extract_arguments(request)
        result = await self.service.extract(
            html,
            form_index=form_index,
            deadline_seconds=deadline,
            request_id=request_id,
            client=self._client_key(request),
        )
        return Response.json(
            _result_payload(result), status=self._extract_status(result)
        )

    @staticmethod
    def _extract_status(result: ServeResult) -> int:
        if result.ok:
            return 200
        error = result.record.error or ""
        # A document with no such form is the client's mistake; anything
        # else that survived the ladder and the retry is on the server.
        if error.startswith("FormNotFoundError"):
            return 404
        return 500

    def _extract_arguments(
        self, request: Request
    ) -> tuple[str, int, float | None]:
        """(html, form_index, deadline) from either accepted body shape."""
        if request.content_type == "application/json":
            data = request.json()
            if not isinstance(data, dict) or not isinstance(
                data.get("html"), str
            ):
                raise HttpProtocolError(
                    400, 'JSON body must be an object with an "html" string'
                )
            return (
                data["html"],
                _parse_form_index(data.get("form_index", 0)),
                _parse_deadline(data.get("deadline_seconds")),
            )
        # Raw-HTML convenience form: the body is the document and the
        # knobs ride in the query string.
        return (
            request.text(),
            _parse_form_index(request.query.get("form_index", 0)),
            _parse_deadline(request.query.get("deadline_seconds")),
        )

    async def _batch(self, request: Request, request_id: str) -> Response:
        data = request.json()
        if not isinstance(data, dict):
            raise HttpProtocolError(400, "batch body must be a JSON object")
        items = data.get("items")
        if not isinstance(items, list) or not all(
            isinstance(item, str) for item in items
        ):
            raise HttpProtocolError(
                400, '"items" must be a list of HTML strings'
            )
        results = await self.service.extract_batch(
            items,
            form_index=_parse_form_index(data.get("form_index", 0)),
            deadline_seconds=_parse_deadline(data.get("deadline_seconds")),
            request_id=request_id,
            client=self._client_key(request),
        )
        records = []
        for position, result in enumerate(results):
            payload = _result_payload(result)
            payload["index"] = position
            records.append(payload)
        return Response.json(
            {
                "request_id": request_id,
                "count": len(records),
                "records": records,
            }
        )


async def _run_until_signalled(config: ServerConfig) -> None:
    server = ExtractionServer(config)
    port = await server.start()
    print(
        f"repro serve listening on http://{config.host}:{port} "
        f"(workers={server.service.workers}, max_queue={config.max_queue})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or exotic platform: Ctrl-C still raises
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        print("repro serve shutting down (draining queue)", flush=True)
        drained = await server.stop()
        print(
            "repro serve stopped"
            + ("" if drained else " (queue did not fully drain)"),
            flush=True,
        )


def run_server(config: ServerConfig | None = None) -> None:
    """Run the server until SIGINT/SIGTERM (the ``repro serve`` loop)."""
    try:
        asyncio.run(_run_until_signalled(config or ServerConfig()))
    except KeyboardInterrupt:
        pass  # signal handler not installable: Ctrl-C lands here instead
