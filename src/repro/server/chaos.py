"""Deterministic fault injection for the serving tier (the chaos harness).

The service's survival claims -- "a dead worker costs one restart", "a
slow client costs one 408", "a full disk degrades the cache to
memory-only", "a crash storm trips the breaker instead of fork-bombing"
-- are only claims until something actually injects those faults.  This
module is the injector:

* :class:`ChaosMonkey` wraps an :class:`~repro.server.service.\
  ExtractionService`'s submission seam (``_submit``) and its cache's
  ``write_fault_hook`` to inject, on a deterministic schedule:

  - **worker crashes** -- ``BrokenProcessPool`` raised from the seam,
    exercising the real restart/breaker recovery path;
  - **disk-full cache writes** -- ``OSError(ENOSPC)`` from the cache's
    append path, exercising the degrade-to-memory contract;
  - **added latency** -- a pre-dispatch ``asyncio.sleep``, for queue
    buildup without payload tuning.

  Schedules are counter-based (``crash_every=3`` = every third
  submission dies), so a test matrix replays identically every run -- no
  seeds, no clocks.

* The slow-client attackers (:func:`drip_request`,
  :func:`half_open_request`) are plain-socket clients that trickle or
  abandon requests mid-head, the client side of the slowloris defense
  tests.  They are synchronous (run them from test threads) and report
  what the server did: a status line, or a clean close.

The harness lives in ``src`` rather than the test tree because it is a
deployment tool too: ``ChaosMonkey`` against a staging service is the
honest way to rehearse an incident.
"""

from __future__ import annotations

import asyncio
import errno
import socket
from dataclasses import dataclass, field

from repro.server.service import ExtractionService


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic injection schedule.

    ``*_every=N`` fires on every Nth event (1-based: the Nth, 2Nth, ...
    occurrence); ``None`` disables that fault.  ``delay_seconds`` is
    added before every submission.
    """

    crash_every: int | None = None
    disk_full_every: int | None = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.crash_every is not None and self.crash_every < 1:
            raise ValueError(f"crash_every must be >= 1, got {self.crash_every}")
        if self.disk_full_every is not None and self.disk_full_every < 1:
            raise ValueError(
                f"disk_full_every must be >= 1, got {self.disk_full_every}"
            )
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")


@dataclass
class ChaosCounters:
    """What the monkey actually did (asserted by the invariant tests)."""

    submissions: int = 0
    crashes_injected: int = 0
    cache_writes: int = 0
    disk_errors_injected: int = 0

    def as_dict(self) -> dict:
        return {
            "submissions": self.submissions,
            "crashes_injected": self.crashes_injected,
            "cache_writes": self.cache_writes,
            "disk_errors_injected": self.disk_errors_injected,
        }


class ChaosMonkey:
    """Installable fault injector over one service (see module docstring).

    Usage::

        monkey = ChaosMonkey(ChaosConfig(crash_every=3))
        monkey.install(service)
        try:
            ...  # drive traffic; every 3rd dispatch dies of BrokenProcessPool
        finally:
            monkey.uninstall()

    Injection happens *inside* the service's recovery scope: an injected
    crash goes through the genuine pool-restart + circuit-breaker path,
    an injected disk error through the cache's degrade-to-memory path.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.counters = ChaosCounters()
        self._service: ExtractionService | None = None
        self._real_submit = None

    def install(self, service: ExtractionService) -> None:
        if self._service is not None:
            raise RuntimeError("ChaosMonkey is already installed")
        self._service = service
        self._real_submit = service._submit
        service._submit = self._chaotic_submit  # type: ignore[method-assign]
        if service.cache is not None:
            service.cache.write_fault_hook = self._cache_write_fault

    def uninstall(self) -> None:
        if self._service is None:
            return
        self._service._submit = self._real_submit  # type: ignore[method-assign]
        if self._service.cache is not None:
            self._service.cache.write_fault_hook = None
        self._service = None
        self._real_submit = None

    # -- injected seams -----------------------------------------------------------

    async def _chaotic_submit(self, arg, watchdog):
        from concurrent.futures.process import BrokenProcessPool

        if self.config.delay_seconds:
            await asyncio.sleep(self.config.delay_seconds)
        self.counters.submissions += 1
        every = self.config.crash_every
        if every is not None and self.counters.submissions % every == 0:
            self.counters.crashes_injected += 1
            raise BrokenProcessPool("chaos: injected worker crash")
        return await self._real_submit(arg, watchdog)

    def _cache_write_fault(self) -> None:
        self.counters.cache_writes += 1
        every = self.config.disk_full_every
        if every is not None and self.counters.cache_writes % every == 0:
            self.counters.disk_errors_injected += 1
            raise OSError(errno.ENOSPC, "chaos: no space left on device")


# -- slow / hostile clients --------------------------------------------------------


@dataclass
class AttackReport:
    """What one hostile connection observed."""

    #: HTTP status parsed off the wire, or None when the server closed
    #: (or never answered) without a status line.
    status: int | None = None
    #: The server closed the connection (EOF seen).
    closed: bool = False
    #: Raw bytes received (for well-formedness assertions).
    raw: bytes = b""
    notes: list[str] = field(default_factory=list)


def _read_outcome(sock: socket.socket, timeout: float) -> AttackReport:
    """Collect whatever the server sends until close/timeout."""
    report = AttackReport()
    sock.settimeout(timeout)
    chunks: list[bytes] = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                report.closed = True
                break
            chunks.append(chunk)
    except socket.timeout:
        report.notes.append("read timed out")
    except OSError as exc:
        report.closed = True
        report.notes.append(f"reset: {exc}")
    report.raw = b"".join(chunks)
    if report.raw.startswith(b"HTTP/1.1 "):
        try:
            report.status = int(report.raw.split(b" ", 2)[1])
        except (IndexError, ValueError):
            report.notes.append("malformed status line")
    return report


def drip_request(
    host: str,
    port: int,
    payload: bytes,
    chunk_size: int = 1,
    pause_seconds: float = 0.2,
    max_chunks: int | None = None,
    timeout: float = 30.0,
) -> AttackReport:
    """A slowloris: trickle *payload* byte(s) at a time, then listen.

    Sends up to *max_chunks* chunks of *chunk_size* bytes with
    *pause_seconds* between them (``None`` = the whole payload), then
    reads until the server answers or closes.  A defended server cuts
    this off with a 408 (mid-head) or a silent close (idle) long before
    the payload completes.
    """
    import time as _time

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sent = 0
        chunks_sent = 0
        try:
            while sent < len(payload):
                if max_chunks is not None and chunks_sent >= max_chunks:
                    break
                sock.sendall(payload[sent: sent + chunk_size])
                sent += chunk_size
                chunks_sent += 1
                _time.sleep(pause_seconds)
        except OSError:
            pass  # server already gave up on us: read the verdict below
        return _read_outcome(sock, timeout)


def half_open_request(
    host: str, port: int, head: bytes, timeout: float = 30.0
) -> AttackReport:
    """Send a partial request head, then go silent (a half-open client).

    The connection stays open but never completes its request; a
    defended server times the head read out (408) instead of parking a
    coroutine on it forever.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head)
        return _read_outcome(sock, timeout)
