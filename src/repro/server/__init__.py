"""Extraction-as-a-service: an async HTTP API on the warmed pool.

The package turns the library's extraction substrate into a long-lived
service.  ``POST /extract`` takes HTML and returns the serialized
semantic model, warnings, and the degradation level the request landed
on; ``POST /batch`` does the same for a list of documents; ``GET
/metrics`` exposes the process registry as Prometheus text; ``GET
/healthz`` reports pool and queue state.

Layering (each module only knows the one below it):

* :mod:`repro.server.app` -- routes, response encoding, access logs,
  lifecycle (:class:`ExtractionServer`, :func:`run_server`).
* :mod:`repro.server.service` -- admission control, the
  cache → pool → ladder request path (:class:`ExtractionService`).
* :mod:`repro.server.http` -- a minimal asyncio HTTP/1.1 transport
  (stdlib only, keep-alive, Content-Length framing).
* :mod:`repro.server.config` -- one frozen :class:`ServerConfig`.

The whole stack is stdlib-only, like the rest of the repo.
"""

from repro.server.app import ExtractionServer, run_server
from repro.server.config import ServerConfig
from repro.server.http import HttpProtocolError, Request, Response
from repro.server.service import (
    ExtractionService,
    ServeResult,
    ServiceSaturated,
    ServiceUnavailable,
)

__all__ = [
    "ExtractionServer",
    "ExtractionService",
    "HttpProtocolError",
    "Request",
    "Response",
    "ServeResult",
    "ServerConfig",
    "ServiceSaturated",
    "ServiceUnavailable",
    "run_server",
]
