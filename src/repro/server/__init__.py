"""Extraction-as-a-service: an async HTTP API on the warmed pool.

The package turns the library's extraction substrate into a long-lived
service.  ``POST /extract`` takes HTML and returns the serialized
semantic model, warnings, and the degradation level the request landed
on; ``POST /batch`` does the same for a list of documents; ``GET
/metrics`` exposes the process registry as Prometheus text; ``GET
/healthz``/``/readyz`` report readiness (queue, breaker, draining),
``GET /livez`` liveness, and ``DELETE /cache`` bumps the cache
generation (logical invalidation).

Layering (each module only knows the one below it):

* :mod:`repro.server.app` -- routes, response encoding, access logs,
  lifecycle (:class:`ExtractionServer`, :func:`run_server`).
* :mod:`repro.server.service` -- admission control, the
  cache → breaker → fairness → pool → ladder request path
  (:class:`ExtractionService`).
* :mod:`repro.server.fairness` -- per-client concurrent-slot caps and
  token-bucket rates (:class:`FairnessGate`).
* :mod:`repro.server.breaker` -- the pool-health circuit breaker
  (:class:`CircuitBreaker`).
* :mod:`repro.server.http` -- a minimal asyncio HTTP/1.1 transport
  (stdlib only, keep-alive, Content-Length framing, slow-client
  timeouts, connection ceiling).
* :mod:`repro.server.chaos` -- deterministic fault injection
  (:class:`ChaosMonkey`) and slow-client attackers for resilience
  rehearsal.
* :mod:`repro.server.config` -- one frozen :class:`ServerConfig`.

The whole stack is stdlib-only, like the rest of the repo.
"""

from repro.server.app import ExtractionServer, run_server
from repro.server.breaker import CircuitBreaker
from repro.server.chaos import ChaosConfig, ChaosMonkey
from repro.server.config import ServerConfig
from repro.server.fairness import FairnessGate, FairnessLimited
from repro.server.http import HttpProtocolError, HttpTimeoutError, Request, Response
from repro.server.service import (
    ExtractionService,
    ServeResult,
    ServiceSaturated,
    ServiceUnavailable,
)

__all__ = [
    "ChaosConfig",
    "ChaosMonkey",
    "CircuitBreaker",
    "ExtractionServer",
    "ExtractionService",
    "FairnessGate",
    "FairnessLimited",
    "HttpProtocolError",
    "HttpTimeoutError",
    "Request",
    "Response",
    "ServeResult",
    "ServerConfig",
    "ServiceSaturated",
    "ServiceUnavailable",
    "run_server",
]
