"""A minimal asyncio HTTP/1.1 layer -- just enough server for the API.

The repo has a zero-dependency contract, so instead of an ASGI framework
this module speaks HTTP/1.1 directly over :mod:`asyncio` streams:
request-line + headers + ``Content-Length`` bodies in, status + headers +
body out, with keep-alive connection reuse (what the serve benchmark's
persistent clients rely on).  It is deliberately *not* a general web
server: no chunked transfer encoding (501), no TLS, no multipart -- the
service behind it accepts small JSON/HTML bodies and returns JSON or
Prometheus text, and a deployment that needs more fronts this with a real
ingress.

Malformed requests are answered with a structured error status (400
protocol error, 413 oversized body, 414/431 oversized head, 501
unsupported framing) and the connection closed; a handler exception is a
500 with the exception type -- the connection loop itself never leaks an
exception to the event loop.

Slow-client defenses (the slowloris budget): every read the peer controls
is bounded.  A connection that trickles its request head costs one 408
and a close (``header_timeout_seconds``), a body that stalls mid-read the
same (``body_timeout_seconds``), and a keep-alive connection that goes
quiet is closed without a response (``idle_timeout_seconds`` -- closing
idle peers silently is what real ingresses do; an unsolicited 408 would
desynchronize a pipelining client).  Writes are bounded too: a peer that
stops reading its response loses the connection instead of parking the
coroutine on ``drain()``.  ``max_connections`` caps concurrently open
sockets -- the connection past it gets a fast 503 and a close, so an
fd-exhaustion attack degrades into a shed, not an accept loop error.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

#: Practical ceilings on the request head -- far above anything the API
#: needs, low enough that a hostile peer cannot balloon memory.
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BYTES = 32768
MAX_HEADER_COUNT = 100

#: StreamReader buffer limit: one oversized head line must overrun the
#: reader (LimitOverrunError -> 414/431) before it can balloon memory.
STREAM_LIMIT = max(MAX_HEADER_BYTES, MAX_REQUEST_LINE_BYTES) * 2


class HttpProtocolError(Exception):
    """The peer sent something this server refuses to parse.

    ``status`` is the HTTP status the connection loop answers with
    before closing the connection.
    """

    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(detail)


class HttpTimeoutError(HttpProtocolError):
    """The peer was too slow; ``kind`` names which read timed out.

    ``respond`` is False for the idle keep-alive case: between requests
    there is nothing to answer, the connection is simply closed (an
    unsolicited 408 could be mistaken for the response to the client's
    *next* request).
    """

    def __init__(self, kind: str, detail: str, respond: bool = True):
        self.kind = kind
        self.respond = respond
        super().__init__(408, detail)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Peer IP address (no port -- one client, many sockets, one key).
    peer: str = ""

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "").split(";")[0].strip().lower()

    def json(self) -> object:
        """The body decoded as JSON (raises HttpProtocolError 400 on rot)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpProtocolError(400, f"invalid JSON body: {exc}") from exc

    def text(self) -> str:
        """The body decoded as UTF-8 text (bad bytes replaced)."""
        return self.body.decode("utf-8", errors="replace")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response to be encoded onto the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: object,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> "Response":
        return cls(
            status=status,
            body=(json.dumps(payload, sort_keys=False) + "\n").encode("utf-8"),
            content_type="application/json",
            headers=dict(headers or {}),
        )

    @classmethod
    def text(
        cls,
        body: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "Response":
        return cls(
            status=status, body=body.encode("utf-8"), content_type=content_type
        )


#: The application seam: one async callable per request.
Handler = Callable[[Request], Awaitable[Response]]

#: Optional observability seam: ``metric_hook(name, amount)``.  The
#: transport stays ignorant of the metrics registry above it.
MetricHook = Callable[[str, float], None]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 414: "URI Too Long",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}


def encode_response(response: Response, keep_alive: bool) -> bytes:
    """Serialize one response, including framing headers."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("Content-Type", response.content_type)
    headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    head.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + response.body


class _Deadline:
    """Remaining-time bookkeeping for a multi-read timeout budget."""

    def __init__(self, seconds: float | None):
        self._deadline = (
            asyncio.get_running_loop().time() + seconds
            if seconds is not None
            else None
        )

    def remaining(self) -> float | None:
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - asyncio.get_running_loop().time())


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    idle_timeout: float | None = None,
    header_timeout: float | None = None,
    body_timeout: float | None = None,
) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    *idle_timeout* bounds the wait for the request line (the keep-alive
    parking spot), *header_timeout* the rest of the head once the request
    line arrived, *body_timeout* the body read.  ``None`` disables the
    respective bound (unit tests; production always sets them).
    """
    try:
        raw_line = await asyncio.wait_for(
            reader.readuntil(b"\r\n"), timeout=idle_timeout
        )
    except asyncio.TimeoutError as exc:
        # Could be a genuinely idle keep-alive peer or a slowloris
        # trickling its request line -- either way the read never
        # completed, so there is no request to answer.  Close silently.
        raise HttpTimeoutError(
            "idle", "connection idle past timeout", respond=False
        ) from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise HttpProtocolError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpProtocolError(414, "request line too long") from exc
    if len(raw_line) > MAX_REQUEST_LINE_BYTES:
        raise HttpProtocolError(414, "request line too long")
    try:
        method, target, version = raw_line.decode("ascii").split()
    except ValueError as exc:
        raise HttpProtocolError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(400, f"unsupported protocol {version}")

    head_deadline = _Deadline(header_timeout)
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await asyncio.wait_for(
                reader.readuntil(b"\r\n"), timeout=head_deadline.remaining()
            )
        except asyncio.TimeoutError as exc:
            raise HttpTimeoutError(
                "header", "timed out reading request headers"
            ) from exc
        except asyncio.LimitOverrunError as exc:
            # A single header line overran the stream buffer (64 KiB+):
            # without this clause the reader error would surface as an
            # unhandled exception; RFC 6585 gives it a status instead.
            raise HttpProtocolError(431, "header line too long") from exc
        except asyncio.IncompleteReadError as exc:
            raise HttpProtocolError(400, "truncated headers") from exc
        if line == b"\r\n":
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES or len(headers) >= MAX_HEADER_COUNT:
            raise HttpProtocolError(431, "headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(400, f"malformed header line {name!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpProtocolError(
            501, "transfer-encoding is not supported; send Content-Length"
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpProtocolError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpProtocolError(
                413, f"body of {length} bytes exceeds limit {max_body_bytes}"
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=body_timeout
            )
        except asyncio.TimeoutError as exc:
            raise HttpTimeoutError(
                "body", "timed out reading request body"
            ) from exc
        except asyncio.IncompleteReadError as exc:
            raise HttpProtocolError(400, "truncated body") from exc

    parts = urlsplit(target)
    return Request(
        method=method.upper(),
        path=parts.path or "/",
        query=dict(parse_qsl(parts.query)),
        headers=headers,
        body=body,
    )


class HttpServer:
    """Serve *handler* over HTTP/1.1 with keep-alive.

    The server owns only transport concerns; routing, backpressure, and
    payload semantics live in the handler.  :meth:`start` binds (port 0
    = ephemeral), :meth:`stop` closes the listening socket and waits for
    open connections to finish their in-flight request.

    The timeout knobs (``None`` disables) and ``max_connections`` are the
    slow-client defenses described in the module docstring; *metric_hook*
    receives ``serve.timeout.{idle,header,body}`` and
    ``serve.conn.rejected`` increments so the layer above can count sheds
    without the transport importing the metrics registry.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 2_000_000,
        idle_timeout_seconds: float | None = None,
        header_timeout_seconds: float | None = None,
        body_timeout_seconds: float | None = None,
        write_timeout_seconds: float | None = None,
        max_connections: int | None = None,
        metric_hook: MetricHook | None = None,
    ):
        self.handler = handler
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.idle_timeout_seconds = idle_timeout_seconds
        self.header_timeout_seconds = header_timeout_seconds
        self.body_timeout_seconds = body_timeout_seconds
        self.write_timeout_seconds = write_timeout_seconds
        self.max_connections = max_connections
        self.metric_hook = metric_hook
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._active = 0
        self._quiescent = asyncio.Event()
        self._quiescent.set()

    @property
    def open_connections(self) -> int:
        """Currently open sockets (the no-leak invariant's witness)."""
        return len(self._connections)

    def _count(self, name: str, amount: float = 1) -> None:
        if self.metric_hook is not None:
            self.metric_hook(name, amount)

    async def start(self) -> int:
        """Bind and listen; returns the actual bound port."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            limit=STREAM_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self, grace_seconds: float = 5.0) -> None:
        """Stop accepting; let in-flight responses flush; close the rest.

        The listener closes first (no new connections), then the server
        waits up to *grace_seconds* for requests currently inside the
        handler (or mid-write) to finish, and finally force-closes any
        idle keep-alive connections still parked on a read.
        """
        if self._server is None:
            return
        self._server.close()
        try:
            await asyncio.wait_for(
                self._quiescent.wait(), timeout=grace_seconds
            )
        except asyncio.TimeoutError:
            pass  # a wedged handler loses its connection below
        for writer in list(self._connections):
            writer.close()
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:
            pass
        self._server = None

    async def _write(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        """Write + drain, bounded: a peer that stops reading loses us."""
        writer.write(payload)
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.write_timeout_seconds
            )
        except asyncio.TimeoutError as exc:
            self._count("serve.timeout.write")
            raise ConnectionError("peer stopped reading its response") from exc

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if (
            self.max_connections is not None
            and len(self._connections) >= self.max_connections
        ):
            # Past the socket ceiling: shed fast with a well-formed 503
            # instead of letting the fd table (or memory) fill up.
            self._count("serve.conn.rejected")
            try:
                writer.write(encode_response(
                    Response.json(
                        {"error": "connection limit reached"}, status=503
                    ),
                    keep_alive=False,
                ))
                await asyncio.wait_for(writer.drain(), timeout=5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            return
        self._connections.add(writer)
        peername = writer.get_extra_info("peername")
        peer = str(peername[0]) if isinstance(peername, tuple) else ""
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        self.max_body_bytes,
                        idle_timeout=self.idle_timeout_seconds,
                        header_timeout=self.header_timeout_seconds,
                        body_timeout=self.body_timeout_seconds,
                    )
                except HttpTimeoutError as exc:
                    self._count(f"serve.timeout.{exc.kind}")
                    if exc.respond:
                        await self._write(writer, encode_response(
                            Response.json(
                                {"error": exc.detail}, status=exc.status
                            ),
                            keep_alive=False,
                        ))
                    return
                except HttpProtocolError as exc:
                    await self._write(writer, encode_response(
                        Response.json(
                            {"error": exc.detail}, status=exc.status
                        ),
                        keep_alive=False,
                    ))
                    return
                if request is None:
                    return
                request.peer = peer
                self._active += 1
                self._quiescent.clear()
                try:
                    try:
                        response = await self.handler(request)
                    except HttpProtocolError as exc:
                        response = Response.json(
                            {"error": exc.detail}, status=exc.status
                        )
                    except Exception as exc:  # noqa: BLE001 - must answer
                        response = Response.json(
                            {"error": f"{type(exc).__name__}: {exc}"},
                            status=500,
                        )
                    keep_alive = (
                        request.keep_alive and response.status < 500
                    )
                    await self._write(
                        writer,
                        encode_response(response, keep_alive=keep_alive),
                    )
                finally:
                    self._active -= 1
                    if self._active == 0:
                        self._quiescent.set()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer vanished or server shutting down: nothing to answer
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
