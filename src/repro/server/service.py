"""The extraction service: admission control + dispatch onto the pool.

:class:`ExtractionService` is the asyncio-facing heart of the serving
tier.  One request flows through::

    cache lookup ──hit──────────────────────────► replayed result
         │miss
    circuit breaker (pool health) ──open──► fast 503 + Retry-After
         │closed
    fairness gate (per-client slots + token bucket) ──over-share──► 429
         │within share
    admission (queue depth / deadline projection) ──shed──► 429
         │admit
    fork-warmed pool (jobs >= 2) or in-process worker thread (jobs = 1)
         │
    per-request degradation ladder (deadline → capped/heuristic/minimal)
         │
    result + metrics + cache fill (full-level results only)

Cache keys carry a *generation* tag (the grammar fingerprint by
default), so a grammar change -- or ``DELETE /cache`` -- invalidates
every cached signature logically without touching the disk file.

Everything below the admission gate is the substrate from PRs 1-4: the
content-addressed :class:`~repro.cache.ExtractionCache`, the persistent
:class:`~repro.batch.BatchExtractor` pool (reused via its
:meth:`~repro.batch.BatchExtractor.submit_custom` bridge), and
:meth:`~repro.extractor.FormExtractor.extract_resilient` with the
request's own deadline mapped onto the guard limits -- a hostile payload
degrades to a cheaper model and still returns HTTP 200, it never kills a
worker or the event loop.

Load shedding has two triggers, both answered as HTTP 429 upstream:

* **queue depth** -- more than ``max_queue`` requests admitted but
  unfinished;
* **deadline projection** -- the ladder pre-check: with the queue ahead
  of it, a request projected (EWMA of recent service times x queue
  waves) to burn its whole deadline before starting would come back
  below ``capped`` (an empty ``minimal`` token dump at best), so the
  honest answer is "retry later", not a junk model.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import logging
import math
import secrets
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.batch.cpu import usable_cores
from repro.batch.extractor import BatchExtractor, BatchRecord, _extract_one
from repro.cache import (
    CacheEntry,
    ExtractionCache,
    grammar_fingerprint,
    html_signature,
)
from repro.extractor import ExtractionResult, FormExtractor
from repro.observability.logs import get_logger, log_event
from repro.observability.metrics import MetricsRegistry
from repro.resilience.guard import ResourceLimits
from repro.resilience.ladder import LEVEL_FULL, ResilienceConfig
from repro.server.breaker import CircuitBreaker
from repro.server.config import ServerConfig
from repro.server.fairness import FairnessGate, FairnessLimited

_logger = get_logger("repro.server")


class ServiceSaturated(Exception):
    """The service shed this request; retry after ``retry_after`` seconds."""

    def __init__(self, detail: str, retry_after: float):
        self.detail = detail
        self.retry_after = retry_after
        super().__init__(detail)


class ServiceUnavailable(Exception):
    """The service cannot take requests (draining, breaker open, or the
    pool is gone).  ``retry_after`` (when set) rides on the response as a
    ``Retry-After`` hint -- a breaker fast-fail tells the client when the
    next probe could run."""

    def __init__(self, detail: str, retry_after: float | None = None):
        self.detail = detail
        self.retry_after = retry_after
        super().__init__(detail)


def _serve_job(
    extractor: FormExtractor, arg: tuple[str, int, ResourceLimits]
) -> ExtractionResult:
    """Worker-side job for one served request (module-level: pickles).

    Runs the full degradation ladder with the *request's* limits -- the
    per-request deadline arrives here as ``limits.deadline_seconds``, so
    a breach degrades the model instead of erroring the record.
    """
    html, form_index, limits = arg
    return extractor.extract_resilient(
        html, form_index, config=ResilienceConfig(limits=limits)
    )


@dataclass
class ServeResult:
    """Outcome of one served extraction, ready for the response encoder."""

    record: BatchRecord
    request_id: str
    elapsed_seconds: float
    cached: bool = False

    @property
    def degrade_level(self) -> str:
        tags = (self.record.trace or {}).get("tags", {})
        return str(tags.get("degrade.level", LEVEL_FULL))

    @property
    def ok(self) -> bool:
        return self.record.ok


class ExtractionService:
    """Admission-controlled extraction on the warm pool (see module doc).

    All coroutine methods must be called from one event loop; the heavy
    lifting happens in worker processes (or the single worker thread for
    ``jobs=1``), so the loop only ever runs bookkeeping.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Fast-fail on a defective grammar before any pool forks or the
        # port binds: a bad grammar should kill the deploy loudly, not
        # degrade every extraction quietly.
        if self.config.validate_grammar:
            self._validate_startup_grammar()
        jobs = self.config.jobs
        if jobs == "auto":
            jobs = usable_cores()
        self.workers: int = max(1, int(jobs))
        self.cache: ExtractionCache | None = None
        if self.config.cache:
            cache_path = (
                Path(self.config.cache_dir) / "extraction-cache.jsonl"
                if self.config.cache_dir is not None
                else None
            )
            self.cache = ExtractionCache(
                capacity=self.config.cache_capacity, path=cache_path
            )
        self._batch: BatchExtractor | None = (
            BatchExtractor(jobs=self.workers) if self.workers > 1 else None
        )
        self._serial: FormExtractor | None = None
        self._thread: ThreadPoolExecutor | None = None
        if self.workers == 1:
            # Extraction still leaves the event loop (one worker thread);
            # the ladder's cooperative deadline bounds each request.  The
            # extractor gets a throwaway registry -- traces are folded
            # into the service registry centrally, like pooled records.
            self._serial = FormExtractor(metrics=MetricsRegistry())
            self._thread = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._ewma_seconds: float | None = None
        self._session = secrets.token_hex(3)
        self._sequence = itertools.count(1)
        self.fairness = FairnessGate(
            max_inflight=self.config.client_max_inflight,
            rate=self.config.client_rate,
            burst=self.config.client_burst,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            window_seconds=self.config.breaker_window_seconds,
            reset_seconds=self.config.breaker_reset_seconds,
            on_transition=self._on_breaker_transition,
        )
        # Cache generation: explicit tag, else the grammar fingerprint --
        # a grammar change re-keys every cached signature logically.
        self._base_generation = (
            self.config.cache_generation
            if self.config.cache_generation is not None
            else self._grammar_generation()
        )
        self._generation_serial = 0
        self._cache_generation = self._base_generation

    @staticmethod
    def _grammar_generation() -> str:
        from repro.grammar.standard import build_standard_grammar

        return grammar_fingerprint(build_standard_grammar())

    @staticmethod
    def _validate_startup_grammar() -> None:
        """Lint the serving grammar; raise on error-severity findings.

        Raises :class:`repro.analysis.GrammarDiagnosticsError`, which
        carries the full report -- the operator sees every defect in the
        startup traceback, not just the first.  Imports are deliberately
        lazy (and re-resolved per call) so deployments that never
        validate don't pay for the analyzer, and tests can monkeypatch
        ``repro.grammar.standard.build_standard_grammar``.
        """
        import repro.grammar.standard as standard_module
        from repro.analysis import analyze_grammar

        report = analyze_grammar(
            standard_module.build_standard_grammar(), name="serving"
        )
        log_event(
            _logger,
            logging.INFO,
            "serve.grammar.validated",
            errors=len(report.errors),
            warnings=len(report.warnings),
            infos=len(report.infos),
        )
        report.raise_if_errors()

    # -- lifecycle ----------------------------------------------------------------

    def warm(self) -> int:
        """Fork and warm the worker pool now; returns the worker count."""
        if self._batch is not None:
            return self._batch.warm() or self.workers
        assert self._serial is not None  # jobs=1: the extractor is the warm state
        self._serial.warmup()
        return 1

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet finished (queued + running)."""
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def cache_generation(self) -> str:
        """The generation tag currently folded into every cache key."""
        return self._cache_generation

    def bump_cache_generation(self) -> tuple[str, str]:
        """Invalidate the serve cache logically; returns (old, new) tags.

        Every key the service writes or looks up is prefixed with the
        generation, so bumping it makes all previously cached signatures
        miss -- in memory *and* in the shared disk file -- without
        touching the file itself.  Old-generation lines simply become
        unreachable; the disk stays append-only and other processes on
        the old generation are unaffected.
        """
        old = self._cache_generation
        self._generation_serial += 1
        self._cache_generation = (
            f"{self._base_generation}#{self._generation_serial}"
        )
        self.metrics.inc("serve.cache.invalidations")
        log_event(
            _logger, logging.INFO, "serve.cache.invalidated",
            previous=old, generation=self._cache_generation,
        )
        return old, self._cache_generation

    def _on_breaker_transition(self, old_state: str, new_state: str) -> None:
        self.metrics.inc(f"serve.breaker.{new_state.replace('-', '_')}")
        log_event(
            _logger, logging.WARNING, "serve.breaker.state",
            previous=old_state, state=new_state,
        )

    async def drain(self) -> bool:
        """Graceful shutdown: stop admitting, wait for in-flight work.

        Returns True when the queue drained inside ``drain_seconds``;
        either way the pool and worker thread are torn down afterwards
        and the service refuses new work.
        """
        self._draining = True
        drained = True
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_seconds
            )
        except asyncio.TimeoutError:
            drained = False
        if self._batch is not None:
            self._batch.close()
        if self._thread is not None:
            self._thread.shutdown(wait=drained, cancel_futures=True)
        log_event(
            _logger, logging.INFO, "serve.drained",
            drained=drained, abandoned=self._inflight,
        )
        return drained

    # -- request path -------------------------------------------------------------

    def next_request_id(self) -> str:
        return f"{self._session}-{next(self._sequence):06x}"

    async def extract(
        self,
        html: str,
        form_index: int = 0,
        deadline_seconds: float | None = None,
        request_id: str | None = None,
        client: str | None = None,
    ) -> ServeResult:
        """Serve one extraction (cache → breaker → fairness → admission →
        pool → ladder).

        Raises :class:`ServiceSaturated` when shed (global queue *or*
        this client's own share) and :class:`ServiceUnavailable` while
        draining, with the breaker open, or after repeated worker
        deaths; every other outcome -- including hostile payloads --
        resolves to a :class:`ServeResult`.  *client* is the fairness
        key (header or peer address); ``None`` bypasses per-client
        bounds.
        """
        started = time.perf_counter()
        request_id = request_id or self.next_request_id()
        deadline = self._clamp_deadline(deadline_seconds)
        self.metrics.inc("serve.requests")
        signature = self._signature(html, form_index)
        hit = self._cache_lookup(signature, request_id, started)
        if hit is not None:
            return hit  # hits need no workers: no breaker, no fairness
        self._check_breaker()
        self._acquire_client(client)
        try:
            self._admit(deadline)
        except BaseException:
            self._release_client(client)
            raise
        return await self._serve_admitted(
            html, form_index, deadline, request_id, started, signature, client
        )

    async def _serve_admitted(
        self,
        html: str,
        form_index: int,
        deadline: float,
        request_id: str,
        started: float,
        signature: str | None,
        client: str | None = None,
    ) -> ServeResult:
        """Dispatch one already-admitted request; always releases its slot."""
        try:
            record = await self._dispatch(html, form_index, deadline)
        finally:
            self._release()
            self._release_client(client)
        elapsed = time.perf_counter() - started
        self._note_service_time(elapsed)
        result = ServeResult(
            record=record, request_id=request_id, elapsed_seconds=elapsed
        )
        self._account(result, signature)
        return result

    def _cache_lookup(
        self, signature: str | None, request_id: str, started: float
    ) -> ServeResult | None:
        """A replayed result on a cache hit (hits never queue), else None."""
        if signature is None or self.cache is None:
            return None
        entry = self.cache.get(signature)
        if entry is None:
            self.metrics.inc("serve.cache.misses")
            return None
        self.metrics.inc("serve.cache.hits")
        record = BatchRecord(
            index=0,
            model=entry.rebuild_model(),
            stats=entry.rebuild_stats(),
            warnings=list(entry.warnings),
            cached=True,
        )
        elapsed = time.perf_counter() - started
        self.metrics.observe("serve.latency.seconds", elapsed)
        return ServeResult(
            record=record,
            request_id=request_id,
            elapsed_seconds=elapsed,
            cached=True,
        )

    async def extract_batch(
        self,
        items: list[str],
        form_index: int = 0,
        deadline_seconds: float | None = None,
        request_id: str | None = None,
        client: str | None = None,
    ) -> list[ServeResult]:
        """Serve a list of documents concurrently, results in input order.

        The whole batch is admitted (or shed) atomically: partial
        admission would return a mix of records and 429s inside one
        response body, which no client can retry sanely.  The fairness
        gate treats the batch as ``len(items)`` admissions by *client* --
        also all-or-nothing.
        """
        request_id = request_id or self.next_request_id()
        if len(items) > self.config.max_batch_items:
            raise ServiceSaturated(
                f"batch of {len(items)} exceeds max_batch_items "
                f"{self.config.max_batch_items}",
                retry_after=self.config.retry_after_seconds,
            )
        deadline = self._clamp_deadline(deadline_seconds)
        if self._draining:
            raise ServiceUnavailable("service is draining")
        self._check_breaker()
        self._acquire_client(client, count=len(items))
        if self._inflight + len(items) > self.config.max_queue:
            self._release_client(client, count=len(items))
            self.metrics.inc("serve.shed", len(items))
            raise ServiceSaturated(
                f"queue depth {self._inflight} + batch {len(items)} exceeds "
                f"max_queue {self.config.max_queue}",
                retry_after=self._retry_after(),
            )

        async def _one(position: int, html: str) -> ServeResult:
            started = time.perf_counter()
            item_id = f"{request_id}.{position}"
            self.metrics.inc("serve.requests")
            signature = self._signature(html, form_index)
            hit = self._cache_lookup(signature, item_id, started)
            if hit is not None:
                self._release()  # pre-admitted slot unused by a cache hit
                self._release_client(client)
                return hit
            return await self._serve_admitted(
                html, form_index, deadline, item_id, started, signature, client
            )

        # Admit the whole batch up front so concurrent singles cannot
        # wedge partial admission in between the items.
        self._admit_bulk(len(items))
        return list(
            await asyncio.gather(*(
                _one(position, item) for position, item in enumerate(items)
            ))
        )

    # -- admission ----------------------------------------------------------------

    def _clamp_deadline(self, requested: float | None) -> float:
        if requested is None or requested <= 0:
            return self.config.default_deadline_seconds
        return min(requested, self.config.max_deadline_seconds)

    def _retry_after(self) -> float:
        estimate = (
            self._ewma_seconds * max(1, self._inflight) / self.workers
            if self._ewma_seconds is not None
            else 0.0
        )
        return max(self.config.retry_after_seconds, estimate)

    def _check_breaker(self) -> None:
        """Fast-fail when the breaker is open (cache hits never get here)."""
        if not self.breaker.allow():
            self.metrics.inc("serve.breaker.fast_fail")
            raise ServiceUnavailable(
                "circuit breaker open: worker pool is unhealthy",
                retry_after=self.breaker.retry_after(),
            )

    def _acquire_client(self, client: str | None, count: int = 1) -> None:
        """Per-client fairness admission; sheds as :class:`ServiceSaturated`.

        Also rolls back a half-open breaker probe on shed -- a request
        that never dispatches must not consume the probe slot.
        """
        if client is None or not self.fairness.enabled:
            return
        try:
            self.fairness.acquire(client, count)
        except FairnessLimited as exc:
            self.metrics.inc("serve.fairness.shed", count)
            self.metrics.inc(f"serve.fairness.shed.{exc.reason}")
            log_event(
                _logger, logging.INFO, "serve.fairness.shed",
                client=client, reason=exc.reason, count=count,
            )
            self.breaker.abort_probe()
            raise ServiceSaturated(
                exc.detail,
                retry_after=max(exc.retry_after, self.config.retry_after_seconds),
            ) from exc

    def _release_client(self, client: str | None, count: int = 1) -> None:
        if client is not None:
            self.fairness.release(client, count)

    def _admit(self, deadline: float) -> None:
        if self._draining:
            self.breaker.abort_probe()
            raise ServiceUnavailable("service is draining")
        if self._inflight >= self.config.max_queue:
            self.metrics.inc("serve.shed")
            self.breaker.abort_probe()
            raise ServiceSaturated(
                f"queue depth {self._inflight} at max_queue "
                f"{self.config.max_queue}",
                retry_after=self._retry_after(),
            )
        if self._ewma_seconds is not None:
            # Ladder pre-check: queue waves ahead of this request times
            # the recent per-request cost.  A request that would spend
            # its whole deadline waiting lands below `capped` -- shed it
            # while the client can still do something useful.
            projected_wait = (
                math.floor(self._inflight / self.workers) * self._ewma_seconds
            )
            if projected_wait >= deadline:
                self.metrics.inc("serve.shed")
                self.breaker.abort_probe()
                raise ServiceSaturated(
                    f"projected queue wait {projected_wait:.2f}s exceeds "
                    f"request deadline {deadline:g}s",
                    retry_after=self._retry_after(),
                )
        self._inflight += 1
        self._idle.clear()
        self.metrics.observe("serve.queue.depth", self._inflight)

    def _admit_bulk(self, count: int) -> None:
        """Reserve *count* queue slots at once (the /batch endpoint)."""
        self._inflight += count
        if count:
            self._idle.clear()
        self.metrics.observe("serve.queue.depth", self._inflight)

    def _release(self) -> None:
        self._inflight -= 1
        if self._inflight <= 0:
            self._idle.set()

    def _note_service_time(self, seconds: float) -> None:
        if self._ewma_seconds is None:
            self._ewma_seconds = seconds
        else:
            self._ewma_seconds = 0.2 * seconds + 0.8 * self._ewma_seconds

    # -- dispatch -----------------------------------------------------------------

    async def _dispatch(
        self, html: str, form_index: int, deadline: float
    ) -> BatchRecord:
        limits = dataclasses.replace(
            self.config.limits, deadline_seconds=deadline
        )
        arg = (html, form_index, limits)
        watchdog = deadline * self.config.watchdog_slack
        try:
            record = await self._submit(arg, watchdog)
        except BrokenProcessPool:
            # A worker died under this request (or a neighbour's).  Tear
            # the pool down and retry once on a fresh one -- extraction
            # is deterministic, so a second death pins this payload.
            self.metrics.inc("serve.pool_restarts")
            self.breaker.record_failure()
            log_event(
                _logger, logging.WARNING, "serve.pool_died", retrying=True
            )
            self._restart_workers()
            try:
                record = await self._submit(arg, watchdog)
            except BrokenProcessPool as exc:
                self.metrics.inc("serve.worker_crashes")
                self.breaker.record_failure()
                raise ServiceUnavailable(
                    "worker process died twice extracting this payload",
                    retry_after=self.breaker.retry_after(),
                ) from exc
        self.breaker.record_success()
        return record

    async def _submit(self, arg: tuple, watchdog: float) -> BatchRecord:
        """One raw submission to the workers (the chaos-injection seam).

        Every path to the pool -- or the jobs=1 worker thread -- funnels
        through here, so the chaos harness can wrap exactly this method
        to inject :class:`BrokenProcessPool` and latency, exercising the
        *real* restart/breaker recovery above it.
        """
        if self._batch is None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._thread,
                _extract_one,
                self._serial, "custom", 0, (_serve_job, arg), None,
            )
        return await asyncio.wrap_future(
            self._batch.submit_custom(_serve_job, arg, timeout=watchdog)
        )

    def _restart_workers(self) -> None:
        """Tear down a broken pool so the next submit re-forks it."""
        if self._batch is not None:
            self._batch.close()

    # -- accounting ---------------------------------------------------------------

    def _signature(self, html: str, form_index: int) -> str | None:
        if self.cache is None:
            return None
        try:
            signature = html_signature(html)
        except Exception:  # noqa: BLE001 - unsignable input: just no caching
            return None
        # The generation prefix namespaces every key: bumping the
        # generation (grammar change, DELETE /cache) re-keys the whole
        # cache without touching the disk file.
        keyed = f"{self._cache_generation}|{signature}"
        return keyed if form_index == 0 else f"{keyed}|form={form_index}"

    def _account(self, result: ServeResult, signature: str | None) -> None:
        record = result.record
        self.metrics.observe(
            "serve.latency.seconds", result.elapsed_seconds
        )
        if record.trace is not None:
            # Thread the request id into the trace before folding it into
            # the registry -- log pipelines join access lines to span
            # metrics on this tag.
            record.trace.setdefault("tags", {})["request_id"] = (
                result.request_id
            )
            self.metrics.record_trace(record.trace)
        if not record.ok:
            self.metrics.inc("serve.errors")
            return
        level = result.degrade_level
        if level != LEVEL_FULL:
            self.metrics.inc("serve.degraded")
            self.metrics.inc(f"degrade.{level}")
            return  # degraded results are never cached (PR 4 contract)
        if (
            signature is not None
            and self.cache is not None
            and record.model is not None
        ):
            self.cache.put(
                signature,
                CacheEntry.from_parts(
                    record.model, record.stats, record.warnings
                ),
            )
