"""Per-client fairness: concurrent-slot caps and token-bucket rates.

The global admission gate (queue depth + deadline projection) protects
the *service*; it does nothing to protect clients from each other -- one
greedy client can legally fill the whole queue and starve everyone.
:class:`FairnessGate` adds the per-client layer in front of it:

* **Concurrent slots** -- at most ``max_inflight`` admitted-but-unfinished
  requests per client.  The greedy client's surplus is shed 429 while the
  rest of the queue stays available to everyone else.
* **Token bucket** -- a sustained-rate bound: each admission costs one
  token; tokens refill at ``rate`` per second up to ``burst``.  Bursts up
  to the bucket size pass untouched; a sustained flood sheds with a
  ``Retry-After`` equal to the real token shortfall.

Clients are identified by an opaque key the caller derives (the service
uses the ``X-Client-Id`` header when present, else the peer address --
spoofable ids only let a client *shrink* its own share, the per-peer
fallback still fences unlabelled floods).  State per client is O(1) and
idle clients are evicted once the table passes ``max_clients``, so a
rotating-id attacker grows the table, not the process.

The gate is synchronous and single-threaded by design: the service calls
it from the event loop only, so admission decisions are atomic without a
lock.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


class FairnessLimited(Exception):
    """This client is over its share; retry after ``retry_after`` seconds.

    ``reason`` is ``"slots"`` (concurrent cap) or ``"rate"`` (token
    bucket) -- the metric and log-event discriminator.
    """

    def __init__(self, detail: str, retry_after: float, reason: str):
        self.detail = detail
        self.retry_after = retry_after
        self.reason = reason
        super().__init__(detail)


@dataclass
class _ClientState:
    """Per-client bookkeeping: live slots + the token bucket."""

    inflight: int = 0
    tokens: float = 0.0
    refilled_at: float = 0.0
    last_seen: float = 0.0


@dataclass(frozen=True)
class FairnessSnapshot:
    """Point-in-time view for /healthz and tests."""

    clients: int
    inflight: int
    shed_slots: int
    shed_rate: int

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "inflight": self.inflight,
            "shed_slots": self.shed_slots,
            "shed_rate": self.shed_rate,
        }


class FairnessGate:
    """Slot + rate admission per client key (see module docstring).

    Args:
        max_inflight: Concurrent admitted requests per client; ``None``
            disables the slot cap.
        rate: Sustained admissions per second per client; ``None``
            disables the token bucket.
        burst: Bucket capacity when *rate* is set (also the initial
            balance a new client starts with).
        max_clients: Table bound; idle clients (no slots held) are
            evicted oldest-first past it.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        rate: float | None = None,
        burst: float = 5.0,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._clients: dict[str, _ClientState] = {}
        self._shed_slots = 0
        self._shed_rate = 0

    @property
    def enabled(self) -> bool:
        """True when at least one per-client bound is configured."""
        return self.max_inflight is not None or self.rate is not None

    # -- admission ----------------------------------------------------------------

    def acquire(self, client: str, count: int = 1) -> None:
        """Admit *count* requests for *client* or raise FairnessLimited.

        All-or-nothing: a batch either gets all its slots/tokens or none
        (partial admission of one HTTP request makes no sense).  On
        success the client holds *count* slots until :meth:`release`.
        """
        if not self.enabled or count <= 0:
            return
        now = self._clock()
        state = self._state(client, now)
        if (
            self.max_inflight is not None
            and state.inflight + count > self.max_inflight
        ):
            self._shed_slots += 1
            raise FairnessLimited(
                f"client {client!r} holds {state.inflight} of "
                f"{self.max_inflight} concurrent slots",
                retry_after=1.0,
                reason="slots",
            )
        if self.rate is not None:
            self._refill(state, now)
            if state.tokens < count:
                self._shed_rate += 1
                shortfall = count - state.tokens
                raise FairnessLimited(
                    f"client {client!r} exceeded {self.rate:g} requests/s "
                    f"(burst {self.burst:g})",
                    retry_after=shortfall / self.rate,
                    reason="rate",
                )
            state.tokens -= count
        state.inflight += count
        state.last_seen = now

    def release(self, client: str, count: int = 1) -> None:
        """Return *count* slots (tokens are spent, not returned)."""
        if not self.enabled or count <= 0:
            return
        state = self._clients.get(client)
        if state is None:
            return
        state.inflight = max(0, state.inflight - count)

    # -- bookkeeping --------------------------------------------------------------

    def _state(self, client: str, now: float) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            if len(self._clients) >= self.max_clients:
                self._evict(now)
            state = _ClientState(
                tokens=self.burst, refilled_at=now, last_seen=now
            )
            self._clients[client] = state
        return state

    def _refill(self, state: _ClientState, now: float) -> None:
        assert self.rate is not None
        elapsed = max(0.0, now - state.refilled_at)
        state.tokens = min(self.burst, state.tokens + elapsed * self.rate)
        state.refilled_at = now

    def _evict(self, now: float) -> None:
        """Drop the longest-idle clients holding no slots (half the table
        at once, so a rotating-id flood amortizes to O(1) per request)."""
        idle = sorted(
            (
                (state.last_seen, client)
                for client, state in self._clients.items()
                if state.inflight == 0
            ),
        )
        for _, client in idle[: max(1, len(idle) // 2)]:
            del self._clients[client]

    def snapshot(self) -> FairnessSnapshot:
        return FairnessSnapshot(
            clients=len(self._clients),
            inflight=sum(s.inflight for s in self._clients.values()),
            shed_slots=self._shed_slots,
            shed_rate=self._shed_rate,
        )
