"""A circuit breaker over worker-pool health.

Repeated :class:`~concurrent.futures.process.BrokenProcessPool` restarts
are the service tier's most expensive failure mode: every crash pays a
pool teardown + re-fork + re-warm, so a payload (or a sick host) that
kills workers in a loop turns the whole service into a fork bomb.  The
breaker converts that into the classic three-state machine:

* **closed** -- normal operation; pool failures are counted within a
  sliding window.
* **open** -- ``threshold`` failures inside ``window_seconds`` trip it:
  requests that would need the pool are fast-failed (503 + Retry-After)
  without touching it, for ``reset_seconds``.
* **half-open** -- after the cooldown, exactly one probe request is let
  through.  Success closes the breaker; failure re-opens it for another
  cooldown.

Cache hits never consult the breaker (they do not need workers), so a
service with a hot cache keeps answering even while its pool is sick.

The breaker is event-loop-confined like the rest of the service (no
locks) and takes an injectable clock for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting three-state breaker (see module docstring).

    Args:
        threshold: Pool failures within the window that trip the breaker.
        window_seconds: Sliding window the failures must land in.
        reset_seconds: Cooldown before a half-open probe is allowed.
        clock: Monotonic time source (injectable for tests).
        on_transition: Optional ``(old_state, new_state)`` callback --
            the service hangs metrics/log events on it.
    """

    def __init__(
        self,
        threshold: int = 5,
        window_seconds: float = 30.0,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")
        self.threshold = threshold
        self.window_seconds = window_seconds
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._on_transition = on_transition
        self._state = STATE_CLOSED
        self._failures: list[float] = []
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when cooldown ends."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._transition(STATE_HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May a pool-needing request proceed right now?

        In half-open state exactly one caller gets True (the probe);
        everyone else keeps fast-failing until the probe reports back.
        """
        state = self.state
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe could run."""
        if self._state != STATE_OPEN:
            return 1.0
        remaining = self.reset_seconds - (self._clock() - self._opened_at)
        return max(1.0, remaining)

    def abort_probe(self) -> None:
        """Give back a half-open probe slot that never reached the pool.

        A request can pass :meth:`allow` and then be shed by fairness or
        the queue before dispatching; without this rollback the breaker
        would wait forever on a probe nobody is running.
        """
        if self._state == STATE_HALF_OPEN:
            self._probe_inflight = False

    def record_success(self) -> None:
        """A pool dispatch completed: close from half-open, decay history."""
        if self._state == STATE_HALF_OPEN:
            self._failures.clear()
            self._probe_inflight = False
            self._transition(STATE_CLOSED)
        elif self._state == STATE_CLOSED and self._failures:
            self._prune()

    def record_failure(self) -> None:
        """A pool dispatch died (BrokenProcessPool restart or give-up)."""
        now = self._clock()
        if self._state == STATE_HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._probe_inflight = False
            self._opened_at = now
            self._transition(STATE_OPEN)
            return
        self._failures.append(now)
        self._prune()
        if self._state == STATE_CLOSED and len(self._failures) >= self.threshold:
            self._opened_at = now
            self._transition(STATE_OPEN)

    # -- internals ----------------------------------------------------------------

    def _prune(self) -> None:
        horizon = self._clock() - self.window_seconds
        self._failures = [t for t in self._failures if t >= horizon]

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self._on_transition is not None:
            self._on_transition(old_state, new_state)
