"""Configuration for the extraction service and its HTTP front.

One frozen dataclass so a config can be shipped around (CLI → server →
service) and compared in tests without aliasing surprises.  Every knob
maps onto a piece of the substrate built in earlier PRs: *jobs* sizes the
fork-warmed pool (:class:`~repro.batch.BatchExtractor`), *limits* seeds
the per-request degradation-ladder budgets
(:class:`~repro.resilience.guard.ResourceLimits`), and the cache knobs
configure the content-addressed front
(:class:`~repro.cache.ExtractionCache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.store import DEFAULT_CAPACITY
from repro.resilience.guard import ResourceLimits


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of :class:`~repro.server.ExtractionServer`.

    Attributes:
        host: Bind address (loopback by default; a deployment fronts the
            service with its own ingress).
        port: Bind port; ``0`` asks the kernel for an ephemeral port (the
            bound port is reported by :attr:`ExtractionServer.port`).
        jobs: Worker processes for extraction.  ``"auto"`` (default)
            sizes the pool to the usable cores; ``1`` runs extraction on
            a single in-process worker thread -- no pool, the mode test
            suites and tiny deployments use.
        max_queue: Maximum requests admitted but not yet finished
            (queued + in flight).  Admission past this depth is shed with
            ``429`` and a ``Retry-After`` header.
        default_deadline_seconds: Per-request wall-clock budget when the
            request does not carry ``deadline_seconds`` itself.
        max_deadline_seconds: Hard ceiling on client-requested deadlines.
        watchdog_slack: Multiplier on the request deadline for the
            worker-side ``SIGALRM`` backstop.  The cooperative ladder
            guard should always fire first (HTTP 200, degraded model);
            the watchdog only catches a worker wedged in non-cooperative
            code.
        max_body_bytes: Request bodies above this are refused with 413
            before any parsing work happens.
        max_batch_items: Ceiling on ``POST /batch`` list length.
        cache: Serve repeated documents from the content-addressed cache
            (keyed on the HTML signature + form index).  Degraded results
            are never cached.
        cache_capacity: In-memory entry bound for the serving cache.
        cache_dir: Optional directory backing the serving cache with a
            shared JSON-lines file that survives restarts.
        cache_generation: Generation tag folded into every serve cache
            key.  ``None`` (default) derives it from the grammar
            fingerprint, so a grammar change invalidates the cache
            logically -- no ``rm -rf`` of the cache dir.  ``DELETE
            /cache`` bumps the live generation the same way.
        limits: Base degradation-ladder budgets; each request runs under
            a copy with ``deadline_seconds`` replaced by its own
            deadline.
        retry_after_seconds: Floor for the ``Retry-After`` hint on shed
            responses (the live estimate, when higher, wins).
        drain_seconds: Graceful-shutdown allowance for in-flight requests
            before the pool is torn down anyway.
        client_max_inflight: Per-client cap on admitted-but-unfinished
            requests (``None`` = no cap).  The fairness layer: one greedy
            client sheds 429 while others keep their queue share.
        client_rate: Per-client sustained admissions per second (token
            bucket; ``None`` = unlimited).
        client_burst: Token-bucket capacity when ``client_rate`` is set.
        client_id_header: Request header carrying the client identity;
            requests without it are keyed by peer address.
        idle_timeout_seconds: Keep-alive connections quiet this long are
            closed (no response -- the idle-peer convention).
        header_timeout_seconds: Budget for reading the request head once
            the request line arrived; a trickling peer gets 408.
        body_timeout_seconds: Budget for reading the request body.
        max_connections: Ceiling on concurrently open sockets; the
            connection past it gets a fast 503 and a close.
        breaker_threshold: Pool failures within the window that open the
            circuit breaker (fast 503s instead of restart storms).
        breaker_window_seconds: Sliding window for breaker failures.
        breaker_reset_seconds: Breaker cooldown before a half-open probe.
        validate_grammar: Statically analyze the serving grammar during
            service construction -- *before* the port binds -- and die
            with the full lint report
            (:class:`~repro.analysis.GrammarDiagnosticsError`) if any
            error-severity diagnostic is present.  A grammar defect
            should kill the deploy at startup, not degrade every
            extraction silently.  ``repro serve --no-grammar-check``
            turns it off.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int | str = "auto"
    max_queue: int = 64
    default_deadline_seconds: float = 10.0
    max_deadline_seconds: float = 30.0
    watchdog_slack: float = 3.0
    max_body_bytes: int = 2_000_000
    max_batch_items: int = 256
    cache: bool = True
    cache_capacity: int = DEFAULT_CAPACITY
    cache_dir: str | None = None
    cache_generation: str | None = None
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    retry_after_seconds: float = 1.0
    drain_seconds: float = 10.0
    client_max_inflight: int | None = None
    client_rate: float | None = None
    client_burst: float = 10.0
    client_id_header: str = "x-client-id"
    idle_timeout_seconds: float = 75.0
    header_timeout_seconds: float = 10.0
    body_timeout_seconds: float = 20.0
    max_connections: int = 512
    breaker_threshold: int = 5
    breaker_window_seconds: float = 30.0
    breaker_reset_seconds: float = 5.0
    validate_grammar: bool = True

    def __post_init__(self) -> None:
        if self.jobs != "auto" and (
            not isinstance(self.jobs, int) or self.jobs < 1
        ):
            raise ValueError(f"jobs must be >= 1 or 'auto', got {self.jobs!r}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_deadline_seconds <= 0:
            raise ValueError("default_deadline_seconds must be positive")
        if self.max_deadline_seconds < self.default_deadline_seconds:
            raise ValueError(
                "max_deadline_seconds must be >= default_deadline_seconds"
            )
        if self.watchdog_slack < 1.0:
            raise ValueError("watchdog_slack must be >= 1.0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.max_batch_items < 1:
            raise ValueError("max_batch_items must be >= 1")
        if self.client_max_inflight is not None and self.client_max_inflight < 1:
            raise ValueError(
                "client_max_inflight must be >= 1 or None, "
                f"got {self.client_max_inflight}"
            )
        if self.client_rate is not None and self.client_rate <= 0:
            raise ValueError(
                f"client_rate must be positive or None, got {self.client_rate}"
            )
        if self.client_burst < 1:
            raise ValueError(
                f"client_burst must be >= 1, got {self.client_burst}"
            )
        if not self.client_id_header:
            raise ValueError("client_id_header must be non-empty")
        for name in (
            "idle_timeout_seconds",
            "header_timeout_seconds",
            "body_timeout_seconds",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_window_seconds <= 0:
            raise ValueError("breaker_window_seconds must be positive")
        if self.breaker_reset_seconds <= 0:
            raise ValueError("breaker_reset_seconds must be positive")
