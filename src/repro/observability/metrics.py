"""Process-wide metrics: named counters and histograms, JSON-serializable.

A :class:`MetricsRegistry` aggregates what individual traces measure:
counters (monotonic totals -- forms extracted, instances created, pool
restarts) and histograms (distributions -- per-stage seconds, tokens per
form).  Histograms keep streaming summaries (count/total/min/max) rather
than raw samples, so a registry stays O(metric names) no matter how many
forms flow through it.

Thread-safe: the batch engine's result-collection thread and the caller
may record concurrently.  Registries are process-local; worker processes
ship their measurements back as plain trace dicts which the parent feeds
into its registry (see :meth:`MetricsRegistry.record_trace`).

A module-level default registry (:func:`get_global_registry`) serves code
that wants zero plumbing; tests reset it with
:func:`reset_global_registry`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field


@dataclass
class HistogramSummary:
    """Streaming summary of one observed distribution."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters + histograms with a lock around every mutation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one sample of histogram *name*."""
        with self._lock:
            summary = self._histograms.get(name)
            if summary is None:
                summary = self._histograms[name] = HistogramSummary()
            summary.observe(value)

    def record_counters(self, mapping: dict[str, float], prefix: str = "") -> None:
        """Bulk-increment counters from a plain dict."""
        for name, amount in mapping.items():
            self.inc(prefix + name, amount)

    def record_trace(self, trace: dict | object) -> None:
        """Fold one extraction trace into the registry.

        Accepts a :class:`~repro.observability.trace.Trace` or its
        ``to_dict()`` form (what crosses the process boundary).  Each span
        becomes a ``span.<name>.seconds`` histogram sample plus
        ``span.<name>.<counter>`` counter increments; the trace outcome
        increments ``extract.ok`` / ``extract.error``.
        """
        payload = trace if isinstance(trace, dict) else trace.to_dict()
        outcome = payload.get("outcome", "ok")
        self.inc(f"extract.{outcome}")
        self.observe("span.total.seconds", payload.get("total_seconds", 0.0))
        for span in payload.get("spans", []):
            name = span["name"]
            self.observe(f"span.{name}.seconds", span.get("seconds", 0.0))
            for counter, amount in span.get("counters", {}).items():
                self.inc(f"span.{name}.{counter}", amount)
        for _ in payload.get("warnings", []):
            self.inc("extract.warnings")

    # -- reading -----------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> HistogramSummary | None:
        with self._lock:
            return self._histograms.get(name)

    def to_dict(self) -> dict:
        """Stable-ordered snapshot: ``{"counters": ..., "histograms": ...}``."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name] for name in sorted(self._counters)
                },
                "histograms": {
                    name: self._histograms[name].to_dict()
                    for name in sorted(self._histograms)
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


_global_registry = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry


def reset_global_registry() -> None:
    """Clear the default registry (test isolation)."""
    _global_registry.reset()
