"""Observability: tracing, metrics, and structured logging for the pipeline.

The extractor is *best-effort by design* -- partial parses plus an explicit
error report are the product, so failures must be surfaced, never swallowed.
This package is the surfacing machinery:

* :mod:`repro.observability.trace` -- per-extraction :class:`Trace` objects
  made of per-stage :class:`Span`\\ s (html-parse, tokenize, parse
  construction, maximization, merge) carrying durations, counters, and
  outcome tags.
* :mod:`repro.observability.metrics` -- a process-wide
  :class:`MetricsRegistry` aggregating counters and histograms across many
  extractions, serializable to JSON for the CLI
  (``repro evaluate --metrics out.json``) and the evaluation harness.
* :mod:`repro.observability.logs` -- structured logging helpers: every
  pipeline event is a message plus key/value fields, renderable as plain
  text or JSON lines (``--log-json``).

Everything here is stdlib-only and adds near-zero overhead when unused: a
trace is a handful of small dataclasses per extraction, and the library
never configures logging handlers unless :func:`configure_logging` is
called.
"""

from repro.observability.logs import configure_logging, get_logger, log_event
from repro.observability.metrics import (
    MetricsRegistry,
    get_global_registry,
    reset_global_registry,
)
from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.trace import Span, Trace

__all__ = [
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "Trace",
    "configure_logging",
    "get_global_registry",
    "get_logger",
    "log_event",
    "parse_prometheus",
    "render_prometheus",
    "reset_global_registry",
]
