"""Prometheus text exposition for :class:`MetricsRegistry`.

:func:`render_prometheus` turns one registry snapshot into the Prometheus
text format (version 0.0.4, what ``GET /metrics`` is expected to serve):

* counters become ``counter`` samples named ``repro_<name>_total``;
* histogram summaries become a ``summary`` pair (``_count``/``_sum``)
  plus ``_min``/``_max`` gauges -- the registry keeps streaming
  aggregates, not raw samples, so quantiles are the *client's* job
  (rate + histogram_quantile do not apply; p50/p99 for the serving tier
  come from ``benchmarks/bench_serve.py`` instead).

Metric names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar:
every other character (the registry's dotted names, hyphens in stage
names like ``html-parse``) maps to ``_``.  Rendering never mutates the
registry and holds no lock beyond the snapshot, so a scrape is safe
against concurrent extraction traffic.
"""

from __future__ import annotations

import re

from repro.observability.metrics import MetricsRegistry

#: Content-Type for the exposition format, to be sent verbatim by HTTP
#: handlers serving :func:`render_prometheus` output.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """A registry metric name mapped onto the Prometheus grammar."""
    flat = _INVALID_CHARS.sub("_", name)
    if _INVALID_FIRST.match(flat):
        flat = "_" + flat
    return f"{prefix}_{flat}" if prefix else flat


def _format_value(value: float) -> str:
    """Render a sample value (integral floats without the trailing .0)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """One registry snapshot in Prometheus text format.

    Counters sort before histograms, each block alphabetically -- the
    output is deterministic for a given snapshot, which keeps scrapes
    diffable and the format testable.
    """
    snapshot = registry.to_dict()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        flat = metric_name(name, prefix)
        if not flat.endswith("_total"):
            flat += "_total"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(value)}")
    for name, summary in snapshot["histograms"].items():
        flat = metric_name(name, prefix)
        lines.append(f"# TYPE {flat} summary")
        lines.append(f"{flat}_count {_format_value(summary['count'])}")
        lines.append(f"{flat}_sum {_format_value(summary['total'])}")
        for bound in ("min", "max"):
            lines.append(f"# TYPE {flat}_{bound} gauge")
            lines.append(
                f"{flat}_{bound} {_format_value(summary[bound])}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{sample_name: value}``.

    The inverse of :func:`render_prometheus` for round-trip tests and the
    serve benchmark; it understands exactly the subset this module emits
    (no labels, no timestamps).
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, raw = line.partition(" ")
        if not name or not raw:
            raise ValueError(f"malformed sample line: {line!r}")
        samples[name] = float(raw)
    return samples
