"""Per-extraction traces: a list of timed, counted pipeline spans.

A :class:`Trace` records one trip through the Figure-2 pipeline as a flat
sequence of :class:`Span` s -- ``html-parse``, ``tokenize``,
``parse.construct``, ``parse.maximize``, ``merge`` -- each carrying its
wall-clock duration, integer counters (instances created, combos examined,
conditions merged, ...), and string/bool tags (``truncated``,
``form_fallback``).  Traces are plain data: picklable, JSON-serializable
through :meth:`Trace.to_dict`, and cheap enough to record unconditionally.

The span names used by the pipeline are listed in :data:`STAGE_NAMES`;
``docs/OBSERVABILITY.md`` documents the schema.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Canonical pipeline stage names, in pipeline order.
STAGE_NAMES = (
    "html-parse",
    "tokenize",
    "parse.construct",
    "parse.maximize",
    "merge",
)


@dataclass
class Span:
    """One timed pipeline stage."""

    name: str
    seconds: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    tags: dict[str, object] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def to_dict(self) -> dict:
        payload: dict = {"name": self.name, "seconds": self.seconds}
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.tags:
            payload["tags"] = dict(self.tags)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            seconds=payload.get("seconds", 0.0),
            counters=dict(payload.get("counters", {})),
            tags=dict(payload.get("tags", {})),
        )


@dataclass
class Trace:
    """The full trace of one extraction: spans plus an outcome."""

    spans: list[Span] = field(default_factory=list)
    #: ``"ok"`` or ``"error"``; best-effort degradation stays ``"ok"`` but
    #: is tagged (``truncated``, ``form_fallback``) on the relevant span.
    outcome: str = "ok"
    tags: dict[str, object] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Time a ``with`` block as span *name*.

        The span is appended even when the block raises, with the outcome
        flipped to ``"error"`` and the exception type tagged -- a crashing
        stage must leave evidence of how far the pipeline got.
        """
        entry = Span(name=name)
        started = time.perf_counter()
        try:
            yield entry
        except BaseException as exc:
            entry.seconds = time.perf_counter() - started
            entry.tags["error"] = type(exc).__name__
            self.outcome = "error"
            self.spans.append(entry)
            raise
        entry.seconds = time.perf_counter() - started
        self.spans.append(entry)

    def add_span(
        self,
        name: str,
        seconds: float,
        counters: dict[str, int] | None = None,
        tags: dict[str, object] | None = None,
    ) -> Span:
        """Append a pre-measured span (for stages timed elsewhere)."""
        entry = Span(
            name=name,
            seconds=seconds,
            counters=dict(counters or {}),
            tags=dict(tags or {}),
        )
        self.spans.append(entry)
        return entry

    def warn(self, message: str) -> None:
        """Record a non-fatal degradation (also mirrored into ``tags``)."""
        self.warnings.append(message)

    # -- views -------------------------------------------------------------------

    def span_named(self, name: str) -> Span | None:
        """The first span called *name*, if any."""
        for entry in self.spans:
            if entry.name == name:
                return entry
        return None

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.spans)

    def to_dict(self) -> dict:
        payload: dict = {
            "outcome": self.outcome,
            "total_seconds": self.total_seconds,
            "spans": [entry.to_dict() for entry in self.spans],
        }
        if self.tags:
            payload["tags"] = dict(self.tags)
        if self.warnings:
            payload["warnings"] = list(self.warnings)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        return cls(
            spans=[Span.from_dict(s) for s in payload.get("spans", [])],
            outcome=payload.get("outcome", "ok"),
            tags=dict(payload.get("tags", {})),
            warnings=list(payload.get("warnings", [])),
        )
