"""Structured logging: events with key/value fields, plain or JSON lines.

The library logs through the stdlib under the ``repro`` namespace and never
configures handlers on import (a :class:`logging.NullHandler` keeps it
silent by default, per library convention).  Applications and the CLI opt
in with :func:`configure_logging`, choosing human-readable lines or JSON
lines (``--log-json``) suitable for log shippers.

Events are emitted through :func:`log_event`::

    log_event(logger, logging.WARNING, "batch.pool_died",
              restarts=2, pending=17)

which renders as::

    repro.batch WARNING batch.pool_died restarts=2 pending=17        # plain
    {"ts": ..., "level": "WARNING", "logger": "repro.batch",
     "event": "batch.pool_died", "restarts": 2, "pending": 17}       # json
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (idempotent)."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """Emit one structured event: a stable name plus key/value fields."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"event_fields": fields})


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; structured fields inlined."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "event_fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, _jsonable(value))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


class PlainEventFormatter(logging.Formatter):
    """``logger LEVEL event key=value ...`` -- grep-friendly plain lines."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [record.name, record.levelname, record.getMessage()]
        fields = getattr(record, "event_fields", None)
        if fields:
            parts.extend(f"{key}={_jsonable(value)}" for key, value in fields.items())
        line = " ".join(str(part) for part in parts)
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _jsonable(value: object) -> object:
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def configure_logging(
    json_output: bool = False,
    level: int | str = logging.INFO,
    stream: IO[str] | None = None,
) -> logging.Handler:
    """Attach one stream handler to the ``repro`` logger tree.

    Replaces any handler a previous call attached (idempotent for the CLI,
    which may be invoked repeatedly in one process -- tests do).  Returns
    the handler so callers can detach it.
    """
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter() if json_output else PlainEventFormatter())
    handler._repro_configured = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler


#: Re-exported so call sites can timestamp without importing ``time``.
now = time.time
