"""Navigation-menu extraction: the parsing framework on a new language.

A different hidden syntax, the same machinery.  The grammar here captures
the conventions of e-commerce entry-page *navigation menus*:

* a menu item is a short hyperlink text;
* a vertical menu stacks left-aligned items on consecutive lines;
* a horizontal menu bar chains items on one line;
* a menu may carry a (non-link) heading directly above it.

Everything downstream of the grammar -- tokenizer, 2P schedule, fix-point,
just-in-time pruning, partial-tree maximization -- is reused untouched,
which is precisely the extensibility claim of paper Sections 3.2 and 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import subsumes
from repro.grammar.text_heuristics import clean_label
from repro.html.parser import parse_html
from repro.parser.parser import BestEffortParser
from repro.tokens.tokenizer import FormTokenizer

# ---------------------------------------------------------------------------
# the menu grammar
# ---------------------------------------------------------------------------


def _is_menu_item(tx: Instance) -> bool:
    sval = str(tx.payload.get("sval", ""))
    return bool(tx.payload.get("link")) and 0 < len(sval) <= 30


def _stacked(a: Instance, b: Instance) -> bool:
    """Consecutive, left-aligned menu lines."""
    if abs(a.bbox.left - b.bbox.left) > 8.0:
        return False
    return (
        a.bbox.bottom <= b.bbox.top + 6.0
        and b.bbox.top - a.bbox.bottom <= 18.0
    )


def _beside(a: Instance, b: Instance) -> bool:
    """Items of one horizontal menu bar."""
    return (
        a.bbox.right <= b.bbox.left + 6.0
        and b.bbox.left - a.bbox.right <= 60.0
        and a.bbox.vertical_overlap(b.bbox) > 0
    )


def _heads(title: Instance, menu: Instance) -> bool:
    """A heading directly above a menu's first item."""
    head_box = menu.payload.get("head_box", menu.bbox)
    return (
        abs(title.bbox.left - head_box.left) <= 12.0
        and title.bbox.bottom <= head_box.top + 6.0
        and head_box.top - title.bbox.bottom <= 18.0
    )


def build_menu_grammar() -> TwoPGrammar:
    """The navigation-menu 2P grammar (start symbol ``Page``)."""
    g = GrammarBuilder(start="Page", name="navmenu-2P")
    g.terminals("text", "image", "textbox", "submitbutton", "hrule")

    g.production(
        "MenuItem", ["text"],
        constraint=_is_menu_item,
        constructor=lambda tx: {
            "items": (clean_label(str(tx.payload.get("sval", ""))),),
        },
        name="N-item",
    )
    g.production(
        "MenuTitle", ["text"],
        constraint=lambda tx: not tx.payload.get("link")
        and 0 < len(str(tx.payload.get("sval", ""))) <= 30,
        constructor=lambda tx: {
            "title": clean_label(str(tx.payload.get("sval", "")))
        },
        name="N-title",
    )

    def _seed(item: Instance) -> dict[str, Any]:
        return {"items": tuple(item.payload["items"]),
                "head_box": item.bbox}

    def _extend(menu: Instance, item: Instance) -> dict[str, Any]:
        return {
            "items": tuple(menu.payload["items"]) + tuple(item.payload["items"]),
            "head_box": menu.payload.get("head_box", menu.bbox),
        }

    for head, relation, suffix in (
        ("VMenu", _stacked, "v"), ("HMenu", _beside, "h")
    ):
        g.production(head, ["MenuItem"], constructor=_seed,
                     name=f"N-{suffix}seed")
        g.production(head, [head, "MenuItem"], constraint=relation,
                     constructor=_extend, name=f"N-{suffix}chain")

    def _menu_payload(menu: Instance, title: Instance | None = None) -> dict:
        return {
            "menu": {
                "title": title.payload["title"] if title is not None else "",
                "items": tuple(menu.payload["items"]),
            }
        }

    for list_symbol in ("VMenu", "HMenu"):
        g.production(
            "Menu", ["MenuTitle", list_symbol],
            constraint=_heads,
            constructor=lambda title, menu: _menu_payload(menu, title),
            name=f"N-menu-titled-{list_symbol}",
        )
        g.production(
            "Menu", [list_symbol],
            constructor=lambda menu: _menu_payload(menu),
            name=f"N-menu-bare-{list_symbol}",
        )

    # Page assembly: menus plus everything else (noise), chained strictly
    # in reading order -- an unordered chain would enumerate every subset
    # of blocks before the subsumption preference could prune.
    g.production("Noise", ["text"], name="N-noise")
    for terminal in ("image", "textbox", "submitbutton", "hrule"):
        g.production("Noise", [terminal], name=f"N-noise-{terminal}")

    def _reading_key(instance: Instance) -> tuple[float, float]:
        return (instance.bbox.top, instance.bbox.left)

    for component in ("Menu", "Noise"):
        g.production(
            "Block", [component],
            constructor=lambda inner: {"last_key": _reading_key(inner)},
            name=f"N-block-{component}",
        )
    g.production(
        "Page", ["Block"],
        constructor=lambda block: {"last_key": block.payload["last_key"]},
        name="N-page-seed",
    )
    g.production(
        "Page", ["Page", "Block"],
        constraint=lambda page, block: (
            block.payload["last_key"] > page.payload["last_key"]
        ),
        constructor=lambda page, block: {
            "last_key": block.payload["last_key"]
        },
        name="N-page-grow",
    )

    # Preferences: longer menus win; a menu reading of a text beats the
    # noise reading; titled menus beat the untitled menus they subsume.
    g.prefer("VMenu", over="VMenu", when=subsumes, name="N-longer-v")
    g.prefer("HMenu", over="HMenu", when=subsumes, name="N-longer-h")
    g.prefer("Menu", over="Menu", when=subsumes, name="N-bigger-menu")
    g.prefer("Menu", over="Noise", name="N-menu-over-noise")
    g.prefer("Page", over="Page", when=subsumes, name="N-bigger-page")
    return g.build()


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


@dataclass
class MenuExtraction:
    """Extracted navigation structure of one entry page."""

    menus: list[dict] = field(default_factory=list)

    @property
    def services(self) -> list[str]:
        """All menu entries, in reading order."""
        entries: list[str] = []
        for menu in self.menus:
            entries.extend(menu["items"])
        return entries


class NavMenuExtractor:
    """Entry-page HTML → navigation menus, via best-effort parsing."""

    def __init__(self) -> None:
        self.grammar = build_menu_grammar()
        self.parser = BestEffortParser(self.grammar)

    def extract(self, html: str) -> MenuExtraction:
        document = parse_html(html)
        tokens = FormTokenizer(document).tokenize(None)
        result = self.parser.parse(tokens)
        menus: list[dict] = []
        seen: set[int] = set()
        for tree in result.trees:
            stack = [tree]
            while stack:
                node = stack.pop()
                payload_menu = node.payload.get("menu")
                if payload_menu is not None:
                    if node.uid not in seen:
                        seen.add(node.uid)
                        menus.append(dict(payload_menu))
                    continue
                stack.extend(node.children)
        # Keep only plural menus (a lone link is not a navigation menu)
        # and present them in reading order.
        menus = [menu for menu in menus if len(menu["items"]) >= 2]
        return MenuExtraction(menus=menus)


# ---------------------------------------------------------------------------
# synthetic entry pages
# ---------------------------------------------------------------------------

_SECTIONS = {
    "Shop": ("Books", "Music", "Movies", "Games", "Electronics"),
    "Services": ("Track order", "Gift cards", "Wish list", "Registry"),
    "Help": ("Contact us", "Returns", "Shipping info", "FAQ"),
    "Account": ("Sign in", "Register", "Order history"),
}


def generate_entry_page(seed: int) -> tuple[str, dict[str, tuple[str, ...]]]:
    """A synthetic e-commerce entry page and its ground-truth menus.

    The page has a left-hand navigation column with titled link groups, a
    content area with marketing text, and a small search form -- the
    layout Section 7 describes.
    """
    rng = random.Random(seed)
    section_names = sorted(_SECTIONS)
    rng.shuffle(section_names)
    chosen = section_names[: rng.randint(2, 4)]
    truth: dict[str, tuple[str, ...]] = {}
    nav_parts: list[str] = []
    for name in chosen:
        items = _SECTIONS[name][: rng.randint(2, len(_SECTIONS[name]))]
        truth[name] = tuple(items)
        links = "<br>".join(
            f'<a href="/{item.lower().replace(" ", "-")}">{item}</a>'
            for item in items
        )
        nav_parts.append(f"<b>{name}</b><br>{links}")
    nav_html = "<br><br>".join(nav_parts)
    blurb = rng.choice((
        "Welcome to our store! Everything ships free this week.",
        "Millions of products at everyday low prices.",
    ))
    html = f"""
    <html><head><title>MegaStore</title></head><body>
    <h1>MegaStore</h1>
    <table cellspacing="8" cellpadding="4">
    <tr>
      <td>{nav_html}</td>
      <td><p>{blurb}</p>
          <form action="/search">Search: <input type="text" name="q" size="20">
          <input type="submit" value="Go"></form>
          <p>Featured today: the editors' picks, updated hourly.</p></td>
    </tr>
    </table>
    </body></html>
    """
    return html, truth
