"""Other applications of the best-effort parsing framework.

Paper Section 7: "many Web design 'artifacts' follow certain concerted
structure.  For instance, the navigational menus listing available services
are often regularly arranged at the top or left hand side of entry pages in
E-commerce Web sites. ... by designing a grammar that captures such
structure regularities, we can employ our parsing framework to extract the
services available."

:mod:`repro.apps.navmenu` realizes that suggestion: a different 2P grammar
over the same token alphabet, driven by the *same* tokenizer, parser,
scheduler, and pruner, extracts the service menu of a synthetic e-commerce
entry page.
"""

from repro.apps.navmenu import (
    MenuExtraction,
    NavMenuExtractor,
    build_menu_grammar,
    generate_entry_page,
)

__all__ = [
    "MenuExtraction",
    "NavMenuExtractor",
    "build_menu_grammar",
    "generate_entry_page",
]
