"""Cross-source conflict resolution and missing-element recovery.

Two mechanisms, both driven by :class:`DomainKnowledge` -- attribute
statistics harvested from (many) extractions over one domain:

* **Conflict arbitration.**  When the merger reports that two conditions
  compete for a token, keep the competitor whose attribute is *known* for
  the domain (seen in other, conflict-free extractions); among several
  known competitors keep the most popular; drop the rest.  When no
  competitor is known, keep the one covering more tokens (deterministic
  tie-break by extraction order).

* **Missing-text recovery.**  An extracted condition with an empty
  attribute label plus a nearby unclaimed text token whose content is
  textually similar to a known domain attribute is almost certainly a
  mis-grouped labelled condition: adopt the token's text as the
  attribute.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from difflib import SequenceMatcher

from repro.extractor import ExtractionResult
from repro.semantics.condition import Condition, SemanticModel
from repro.semantics.matching import normalize_attribute


@dataclass
class DomainKnowledge:
    """Attribute statistics for one domain, harvested from extractions."""

    attribute_counts: Counter = field(default_factory=Counter)
    sources_seen: int = 0

    # -- building -----------------------------------------------------------

    def observe_model(self, model: SemanticModel) -> None:
        """Add one source's extraction to the statistics.

        Only conflict-free extractions teach attribute names: a conflicted
        source is exactly the kind of evidence we must not learn from.
        """
        self.sources_seen += 1
        if model.conflicts:
            return
        for condition in model.conditions:
            key = normalize_attribute(condition.attribute)
            if key:
                self.attribute_counts[key] += 1

    @classmethod
    def from_models(cls, models: list[SemanticModel]) -> "DomainKnowledge":
        knowledge = cls()
        for model in models:
            knowledge.observe_model(model)
        return knowledge

    # -- queries ------------------------------------------------------------

    def popularity(self, attribute: str) -> int:
        return self.attribute_counts.get(normalize_attribute(attribute), 0)

    def is_known(self, attribute: str, min_support: int = 1) -> bool:
        return self.popularity(attribute) >= min_support

    def best_match(
        self, text: str, min_similarity: float = 0.75
    ) -> str | None:
        """The known attribute most similar to *text*, if similar enough."""
        candidate = normalize_attribute(text)
        if not candidate:
            return None
        best_name = None
        best_score = min_similarity
        for known in self.attribute_counts:
            score = SequenceMatcher(None, candidate, known).ratio()
            if score > best_score or (
                score == best_score and best_name is None
            ):
                best_score = score
                best_name = known
        return best_name


@dataclass
class RefineStats:
    """What a refinement pass changed."""

    conflicts_resolved: int = 0
    conditions_dropped: int = 0
    attributes_recovered: int = 0


class DomainRefiner:
    """Applies domain knowledge to one extraction result."""

    def __init__(self, knowledge: DomainKnowledge, min_support: int = 2):
        self.knowledge = knowledge
        self.min_support = min_support

    # -- public API ------------------------------------------------------------

    def refine(self, result: ExtractionResult) -> tuple[SemanticModel, RefineStats]:
        """Return a refined copy of the result's semantic model."""
        stats = RefineStats()
        conditions = self._resolve_conflicts(result, stats)
        conditions = self._recover_missing(result, conditions, stats)
        refined = SemanticModel(
            conditions=conditions,
            conflicts=[] if stats.conflicts_resolved else list(
                result.model.conflicts
            ),
            missing=list(result.model.missing),
        )
        return refined, stats

    # -- conflict arbitration -----------------------------------------------------

    def _resolve_conflicts(
        self, result: ExtractionResult, stats: RefineStats
    ) -> list[Condition]:
        conditions = list(result.model.conditions)
        if not result.report.conflict_tokens:
            return conditions

        # Group the extracted entries competing for each conflict token.
        entries = result.report.extracted
        losers: set[int] = set()
        for token in result.report.conflict_tokens:
            competitors = [
                entry for entry in entries
                if token.id in entry.coverage and entry.node_uid not in losers
            ]
            if len(competitors) < 2:
                continue
            winner = self._arbitrate(competitors)
            stats.conflicts_resolved += 1
            for entry in competitors:
                if entry is not winner:
                    losers.add(entry.node_uid)

        if not losers:
            return conditions
        dropped_conditions = {
            entry.condition
            for entry in entries
            if entry.node_uid in losers
        }
        kept_conditions = {
            entry.condition
            for entry in entries
            if entry.node_uid not in losers
        }
        refined = []
        for condition in conditions:
            if condition in dropped_conditions and condition not in kept_conditions:
                stats.conditions_dropped += 1
                continue
            refined.append(condition)
        return refined

    def _arbitrate(self, competitors):
        """Pick the winning entry among conflicting extractions."""
        def known_rank(entry) -> tuple:
            popularity = self.knowledge.popularity(entry.condition.attribute)
            known = popularity >= self.min_support
            return (known, popularity, len(entry.coverage), -entry.node_uid)

        return max(competitors, key=known_rank)

    # -- missing-text recovery ------------------------------------------------------

    def _recover_missing(
        self,
        result: ExtractionResult,
        conditions: list[Condition],
        stats: RefineStats,
    ) -> list[Condition]:
        missing_texts = [
            token for token in result.report.missing_tokens
            if token.terminal == "text"
        ]
        # Texts the parse shrugged off as noise are candidates too: a
        # detached label is usually *covered* (as a Note) yet unclaimed.
        missing_texts.extend(result.report.unclaimed_text_tokens)
        if not missing_texts:
            return conditions

        coverage_by_condition = {
            entry.condition: entry.coverage
            for entry in result.report.extracted
        }
        tokens_by_id = {token.id: token for token in result.tokens}
        refined = []
        for condition in conditions:
            if condition.attribute.strip():
                refined.append(condition)
                continue
            adopted = self._adopt_label(
                condition, coverage_by_condition, tokens_by_id, missing_texts
            )
            if adopted is not None:
                stats.attributes_recovered += 1
                refined.append(adopted)
            else:
                refined.append(condition)
        return refined

    def _adopt_label(
        self, condition, coverage_by_condition, tokens_by_id, missing_texts
    ) -> Condition | None:
        coverage = coverage_by_condition.get(condition)
        if not coverage:
            return None
        own_tokens = [
            tokens_by_id[token_id]
            for token_id in coverage
            if token_id in tokens_by_id
        ]
        if not own_tokens:
            return None
        box = own_tokens[0].bbox
        for token in own_tokens[1:]:
            box = box.union(token.bbox)
        best = None
        best_gap = 60.0  # a label floats at most a couple of lines away
        for token in missing_texts:
            known = self.knowledge.best_match(token.sval)
            if known is None:
                continue
            gap = box.gap(token.bbox)
            if gap < best_gap:
                best_gap = gap
                best = token
        if best is None:
            return None
        from repro.grammar.text_heuristics import clean_label

        return replace(condition, attribute=clean_label(best.sval))
