"""Post-extraction refinement (paper Section 7, first discussion item).

The merger reports *conflicts* and *missing elements* for "further
client-side handling"; the paper suggests resolving them with cross-source
knowledge: "to resolve the conflict in a specific query interface, we can
leverage the correctly parsed conditions from other query interfaces of
the same domain", and "to handle missing elements, we find it promising to
explore matching non-associated tokens by their textual similarity."

This package implements both suggestions: :class:`DomainKnowledge`
accumulates attribute statistics from many extractions of one domain, and
:class:`DomainRefiner` uses it to arbitrate conflicting conditions and to
label bare conditions from nearby unclaimed text.
"""

from repro.refine.resolver import DomainKnowledge, DomainRefiner, RefineStats

__all__ = ["DomainKnowledge", "DomainRefiner", "RefineStats"]
