"""The form extractor: the end-to-end pipeline of paper Figure 2.

Given an HTML query form, the extractor tokenizes the rendered page, parses
the tokens against the 2P grammar with the best-effort parser, and merges
the resulting partial parse trees into the form's query capabilities::

    from repro import FormExtractor

    extractor = FormExtractor()
    model = extractor.extract(html)
    for condition in model:
        print(condition)      # [Author; {contains}; text] ...

Every extraction additionally records a :class:`~repro.observability.Trace`
of per-stage spans (``html-parse``, ``tokenize``, ``parse.construct``,
``parse.maximize``, ``merge``) with durations and counters, available on
:attr:`ExtractionResult.trace` and folded into a
:class:`~repro.observability.MetricsRegistry` -- the extractor is
best-effort by design, so degradations (no ``<form>`` element, budget
truncation) are *surfaced* as warnings and tags, never silently absorbed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.cache import CacheEntry, ExtractionCache, token_signature
from repro.grammar.cache import cached_standard_grammar
from repro.grammar.grammar import TwoPGrammar
from repro.html.dom import Document, Element
from repro.html.parser import parse_html
from repro.merger.merger import Merger, MergeReport
from repro.observability.logs import get_logger, log_event
from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.observability.trace import Trace
from repro.parser.parser import (
    BestEffortParser,
    ParseResult,
    ParserConfig,
    ParseStats,
)
from repro.semantics.condition import SemanticModel
from repro.tokens.tokenizer import FormTokenizer
from repro.tokens.model import Token

_logger = get_logger("repro.extractor")


class FormNotFoundError(LookupError):
    """Raised when ``form_index`` does not name a form of the document.

    Carries the requested index and the number of forms actually present,
    so batch clients can report the miss precisely instead of silently
    extracting the wrong form.
    """

    def __init__(self, form_index: int, form_count: int):
        self.form_index = form_index
        self.form_count = form_count
        super().__init__(
            f"form index {form_index} out of range: "
            f"document has {form_count} form(s)"
        )


@dataclass
class ExtractionResult:
    """Full trace of one extraction, for clients that need more than the
    semantic model (error handling, visualization, debugging)."""

    model: SemanticModel
    parse: ParseResult
    report: MergeReport
    tokens: list[Token]
    trace: Trace = field(default_factory=Trace)

    @property
    def warnings(self) -> list[str]:
        """Non-fatal degradations recorded along the pipeline."""
        return self.trace.warnings


class FormExtractor:
    """HTML query form → semantic model (query capabilities).

    Args:
        grammar: The 2P grammar (default: the cached standard grammar).
        parser_config: Parser tunables (budgets, evaluation mode).
        metrics: Registry receiving one trace per extraction.  ``None``
            (default) records into the process-wide global registry; pass
            a dedicated registry to isolate measurements.
        cache: Optional :class:`~repro.cache.ExtractionCache`.  When set,
            ``extract_from_tokens`` looks the token signature up before
            parsing and replays the stored model/stats on a hit (the
            parse and merge stages are skipped entirely); misses are
            stored after extraction.  Cached replays rebuild fresh
            objects -- a hit can never alias a previous result.
    """

    def __init__(
        self,
        grammar: TwoPGrammar | None = None,
        parser_config: ParserConfig | None = None,
        metrics: MetricsRegistry | None = None,
        cache: ExtractionCache | None = None,
    ):
        # The cached grammar is shared across extractors (and with it the
        # cached schedule), so per-form extractor construction stays cheap.
        self.grammar = grammar if grammar is not None else cached_standard_grammar()
        self.parser = BestEffortParser(self.grammar, parser_config)
        self.merger = Merger()
        self.metrics = metrics if metrics is not None else get_global_registry()
        self.cache = cache

    # -- main entry points --------------------------------------------------------

    def extract(self, html: str, form_index: int = 0) -> SemanticModel:
        """Extract the semantic model of the *form_index*-th form in *html*."""
        return self.extract_detailed(html, form_index).model

    def extract_detailed(self, html: str, form_index: int = 0) -> ExtractionResult:
        """Extract, returning the full pipeline trace."""
        trace = Trace()
        with trace.span("html-parse") as span:
            document = parse_html(html)
            span.count("chars", len(html))
        return self.extract_from_document(document, form_index, trace=trace)

    def extract_from_document(
        self,
        document: Document,
        form_index: int = 0,
        trace: Trace | None = None,
    ) -> ExtractionResult:
        """Extract from an already-parsed document.

        Raises:
            FormNotFoundError: *form_index* is out of range for the
                document's forms.  A document with no ``<form>`` element at
                all still tokenizes the whole page for ``form_index=0``
                (some sites write bare controls), but the fallback is
                recorded in the result's trace and warnings.
        """
        trace = trace if trace is not None else Trace()
        with trace.span("tokenize") as span:
            tokenizer = FormTokenizer(document)
            form = self._pick_form(document, form_index)
            if form is None:
                trace.tags["form_fallback"] = True
                trace.warn(
                    "document has no <form> element; tokenized the whole page"
                )
                log_event(
                    _logger, logging.WARNING, "extract.no_form_fallback",
                    form_index=form_index,
                )
            tokens = tokenizer.tokenize(form)
            span.count("tokens", len(tokens))
            span.count("forms_on_page", len(document.forms))
        return self.extract_from_tokens(tokens, trace=trace)

    def extract_from_tokens(
        self, tokens: list[Token], trace: Trace | None = None
    ) -> ExtractionResult:
        """Parse and merge an existing token set.

        With a :attr:`cache` configured, a token-signature hit replays the
        stored outcome (recorded as a ``cache`` span tagged ``cache_hit``)
        instead of parsing; a miss parses normally and stores the result.
        """
        trace = trace if trace is not None else Trace()
        signature: str | None = None
        if self.cache is not None:
            with trace.span("cache") as span:
                signature = token_signature(tokens)
                entry = self.cache.get(signature)
                span.count("hit", 1 if entry is not None else 0)
            if entry is not None:
                return self._replay_cached(entry, tokens, trace)
        parse = self.parser.parse(tokens)
        stats = parse.stats
        construct = trace.add_span(
            "parse.construct", stats.construction_seconds, counters=stats.counters()
        )
        if stats.truncated:
            construct.tags["truncated"] = True
        trace.add_span(
            "parse.maximize",
            stats.maximization_seconds,
            counters={"trees": len(parse.trees)},
        )
        with trace.span("merge") as span:
            report = self.merger.merge(parse)
            span.counters.update(report.counters())
        result = ExtractionResult(
            model=report.model,
            parse=parse,
            report=report,
            tokens=tokens,
            trace=trace,
        )
        if self.cache is not None and signature is not None:
            self.cache.put(signature, CacheEntry.from_result(result))
        self.metrics.record_trace(trace)
        log_event(
            _logger, logging.DEBUG, "extract.complete",
            tokens=len(tokens),
            conditions=len(report.model.conditions),
            conflicts=len(report.conflict_tokens),
            missing=len(report.missing_tokens),
            truncated=stats.truncated,
            seconds=round(trace.total_seconds, 6),
        )
        return result

    def _replay_cached(
        self, entry: CacheEntry, tokens: list[Token], trace: Trace
    ) -> ExtractionResult:
        """Rebuild an :class:`ExtractionResult` from a cache entry.

        The model and stats are fresh deserialized objects; the parse
        carries no trees or instances (they were never stored) but replays
        the original counters so batch/benchmark stat sums are identical
        to a full recompute.  Warnings stored with the entry are re-issued
        on this trace.
        """
        trace.tags["cache_hit"] = True
        for warning in entry.warnings:
            trace.warn(warning)
        model = entry.rebuild_model()
        stats = entry.rebuild_stats()
        parse = ParseResult(
            trees=[],
            tokens=tokens,
            instances=[],
            stats=stats if stats is not None else ParseStats(tokens=len(tokens)),
        )
        result = ExtractionResult(
            model=model,
            parse=parse,
            report=MergeReport(model=model),
            tokens=tokens,
            trace=trace,
        )
        self.metrics.record_trace(trace)
        log_event(
            _logger, logging.DEBUG, "extract.cache_hit",
            tokens=len(tokens),
            conditions=len(model.conditions),
        )
        return result

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _pick_form(document: Document, form_index: int) -> Element | None:
        forms = document.forms
        if not forms:
            if form_index == 0:
                return None  # whole-page fallback, recorded by the caller
            raise FormNotFoundError(form_index, 0)
        if not 0 <= form_index < len(forms):
            raise FormNotFoundError(form_index, len(forms))
        return forms[form_index]


def extract_capabilities(html: str) -> SemanticModel:
    """One-shot extraction with the default grammar."""
    return FormExtractor().extract(html)
