"""The form extractor: the end-to-end pipeline of paper Figure 2.

Given an HTML query form, the extractor tokenizes the rendered page, parses
the tokens against the 2P grammar with the best-effort parser, and merges
the resulting partial parse trees into the form's query capabilities::

    from repro import FormExtractor

    extractor = FormExtractor()
    model = extractor.extract(html)
    for condition in model:
        print(condition)      # [Author; {contains}; text] ...

Every extraction additionally records a :class:`~repro.observability.Trace`
of per-stage spans (``html-parse``, ``tokenize``, ``parse.construct``,
``parse.maximize``, ``merge``) with durations and counters, available on
:attr:`ExtractionResult.trace` and folded into a
:class:`~repro.observability.MetricsRegistry` -- the extractor is
best-effort by design, so degradations (no ``<form>`` element, budget
truncation) are *surfaced* as warnings and tags, never silently absorbed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.cache import CacheEntry, ExtractionCache, token_signature
from repro.grammar.cache import cached_standard_grammar
from repro.grammar.grammar import TwoPGrammar
from repro.html.dom import Document, Element
from repro.html.parser import parse_html
from repro.layout.box import BBox
from repro.merger.merger import Merger, MergeReport
from repro.observability.logs import get_logger, log_event
from repro.observability.metrics import MetricsRegistry, get_global_registry
from repro.observability.trace import Trace
from repro.parser.parser import (
    BestEffortParser,
    ParseResult,
    ParserConfig,
    ParseStats,
)
from repro.resilience.guard import ResourceGuard
from repro.resilience.ladder import (
    LEVEL_CAPPED,
    LEVEL_FULL,
    LEVEL_HEURISTIC,
    LEVEL_MINIMAL,
    DegradationReport,
    ResilienceConfig,
    token_dump_model,
)
from repro.semantics.condition import SemanticModel
from repro.tokens.tokenizer import FormTokenizer
from repro.tokens.model import Token

_logger = get_logger("repro.extractor")


class FormNotFoundError(LookupError):
    """Raised when ``form_index`` does not name a form of the document.

    Carries the requested index and the number of forms actually present,
    so batch clients can report the miss precisely instead of silently
    extracting the wrong form.
    """

    def __init__(self, form_index: int, form_count: int):
        self.form_index = form_index
        self.form_count = form_count
        super().__init__(
            f"form index {form_index} out of range: "
            f"document has {form_count} form(s)"
        )


@dataclass
class ExtractionResult:
    """Full trace of one extraction, for clients that need more than the
    semantic model (error handling, visualization, debugging)."""

    model: SemanticModel
    parse: ParseResult
    report: MergeReport
    tokens: list[Token]
    trace: Trace = field(default_factory=Trace)
    #: Downgrades the resilient ladder recorded (empty on the full level
    #: and for non-resilient extractions).
    degradation: list[DegradationReport] = field(default_factory=list)

    @property
    def warnings(self) -> list[str]:
        """Non-fatal degradations recorded along the pipeline."""
        return self.trace.warnings

    @property
    def level(self) -> str:
        """The ladder level this extraction landed on."""
        worst = LEVEL_FULL
        order = {LEVEL_FULL: 0, LEVEL_CAPPED: 1, LEVEL_HEURISTIC: 2,
                 LEVEL_MINIMAL: 3}
        for report in self.degradation:
            if order.get(report.level, 0) > order[worst]:
                worst = report.level
        return worst


class FormExtractor:
    """HTML query form → semantic model (query capabilities).

    Args:
        grammar: The 2P grammar (default: the cached standard grammar).
        parser_config: Parser tunables (budgets, evaluation mode).
        metrics: Registry receiving one trace per extraction.  ``None``
            (default) records into the process-wide global registry; pass
            a dedicated registry to isolate measurements.
        cache: Optional :class:`~repro.cache.ExtractionCache`.  When set,
            ``extract_from_tokens`` looks the token signature up before
            parsing and replays the stored model/stats on a hit (the
            parse and merge stages are skipped entirely); misses are
            stored after extraction.  Cached replays rebuild fresh
            objects -- a hit can never alias a previous result.
        validate_grammar: When ``True``, run the static analyzer on the
            grammar at construction time and raise
            :class:`~repro.analysis.GrammarDiagnosticsError` on any
            error-severity diagnostic (see ``repro lint``).  Off by
            default; the default path never imports the analyzer.
    """

    def __init__(
        self,
        grammar: TwoPGrammar | None = None,
        parser_config: ParserConfig | None = None,
        metrics: MetricsRegistry | None = None,
        cache: ExtractionCache | None = None,
        resilience: ResilienceConfig | bool | None = None,
        validate_grammar: bool = False,
    ):
        # The cached grammar is shared across extractors (and with it the
        # cached schedule), so per-form extractor construction stays cheap.
        self.grammar = grammar if grammar is not None else cached_standard_grammar()
        self.parser = BestEffortParser(
            self.grammar, parser_config, validate_grammar=validate_grammar
        )
        self.merger = Merger()
        self.metrics = metrics if metrics is not None else get_global_registry()
        self.cache = cache
        if resilience is True:
            resilience = ResilienceConfig()
        elif resilience is False:
            resilience = None
        self.resilience: ResilienceConfig | None = resilience

    def warmup(self) -> None:
        """Pay every first-call cost now instead of on the first request.

        Parses and merges one tiny synthetic form through the extractor's
        own parser: the cached grammar and schedule, the spatial kernel
        (including its lazy numpy import), the parser core's first-call
        allocations, and the merger are all exercised once.  The result
        is discarded and neither the extraction cache nor the metrics
        registry is touched, so a warmed extractor is observably
        identical to a cold one -- except that the first real request no
        longer pays import/alloc latency (``repro serve`` calls this in
        every worker's initializer).
        """
        tokens: list[Token] = []
        # Four label+textbox rows plus a submit row: big enough that the
        # instance pools cross MIN_INDEXED_POOL, so the band/geometry
        # index paths (and their numpy allocations) run too.
        for row in range(4):
            top = 24.0 * row
            tokens.append(Token(
                id=len(tokens), terminal="text",
                bbox=BBox(0.0, 60.0, top, top + 19.0),
                attrs={"sval": f"Field {row}"},
            ))
            tokens.append(Token(
                id=len(tokens), terminal="textbox",
                bbox=BBox(70.0, 190.0, top, top + 19.0),
                attrs={"name": f"f{row}"},
            ))
        tokens.append(Token(
            id=len(tokens), terminal="submitbutton",
            bbox=BBox(0.0, 60.0, 96.0, 115.0), attrs={"label": "Go"},
        ))
        self.merger.merge(self.parser.parse(tokens))

    # -- main entry points --------------------------------------------------------

    def extract(self, html: str, form_index: int = 0) -> SemanticModel:
        """Extract the semantic model of the *form_index*-th form in *html*."""
        return self.extract_detailed(html, form_index).model

    def extract_detailed(
        self,
        html: str,
        form_index: int = 0,
        guard: ResourceGuard | None = None,
    ) -> ExtractionResult:
        """Extract, returning the full pipeline trace.

        A raise-mode *guard* (the batch engine's deadline fallback) is
        threaded through every stage; with :attr:`resilience` configured
        and no explicit guard, extraction routes through the degradation
        ladder instead (see :meth:`extract_resilient`).
        """
        if self.resilience is not None and guard is None:
            return self.extract_resilient(html, form_index)
        trace = Trace()
        with trace.span("html-parse") as span:
            document = parse_html(html, guard=guard)
            span.count("chars", len(html))
        return self.extract_from_document(
            document, form_index, trace=trace, guard=guard
        )

    def extract_from_document(
        self,
        document: Document,
        form_index: int = 0,
        trace: Trace | None = None,
        guard: ResourceGuard | None = None,
    ) -> ExtractionResult:
        """Extract from an already-parsed document.

        Raises:
            FormNotFoundError: *form_index* is out of range for the
                document's forms.  A document with no ``<form>`` element at
                all still tokenizes the whole page for ``form_index=0``
                (some sites write bare controls), but the fallback is
                recorded in the result's trace and warnings.
        """
        trace = trace if trace is not None else Trace()
        with trace.span("tokenize") as span:
            tokenizer = FormTokenizer(document, guard=guard)
            form = self._pick_form(document, form_index)
            if form is None:
                trace.tags["form_fallback"] = True
                trace.warn(
                    "document has no <form> element; tokenized the whole page"
                )
                log_event(
                    _logger, logging.WARNING, "extract.no_form_fallback",
                    form_index=form_index,
                )
            tokens = tokenizer.tokenize(form)
            span.count("tokens", len(tokens))
            span.count("forms_on_page", len(document.forms))
        return self.extract_from_tokens(tokens, trace=trace, guard=guard)

    def extract_from_tokens(
        self,
        tokens: list[Token],
        trace: Trace | None = None,
        guard: ResourceGuard | None = None,
    ) -> ExtractionResult:
        """Parse and merge an existing token set.

        With a :attr:`cache` configured, a token-signature hit replays the
        stored outcome (recorded as a ``cache`` span tagged ``cache_hit``)
        instead of parsing; a miss parses normally and stores the result.
        With :attr:`resilience` configured and no explicit guard, the
        parse/merge stages run under the degradation ladder instead.
        """
        if self.resilience is not None and guard is None:
            cfg = self.resilience
            ladder_guard = ResourceGuard(limits=cfg.limits, mode="degrade").start()
            return self._ladder_from_tokens(
                tokens, trace if trace is not None else Trace(), ladder_guard, cfg
            )
        trace = trace if trace is not None else Trace()
        signature: str | None = None
        if self.cache is not None:
            with trace.span("cache") as span:
                signature = token_signature(tokens)
                entry = self.cache.get(signature)
                span.count("hit", 1 if entry is not None else 0)
            if entry is not None:
                return self._replay_cached(entry, tokens, trace)
        parse = self.parser.parse(tokens, guard=guard)
        stats = parse.stats
        construct = trace.add_span(
            "parse.construct", stats.construction_seconds, counters=stats.counters()
        )
        construct.tags["kernel"] = stats.kernel
        construct.tags["compiled"] = stats.compiled
        self.metrics.inc(f"parse.kernel.{stats.kernel}")
        self.metrics.inc(
            f"parse.compiled.{'true' if stats.compiled else 'false'}"
        )
        if stats.truncated:
            construct.tags["truncated"] = True
        trace.add_span(
            "parse.maximize",
            stats.maximization_seconds,
            counters={"trees": len(parse.trees)},
        )
        with trace.span("merge") as span:
            report = self.merger.merge(parse, guard=guard)
            span.counters.update(report.counters())
        result = ExtractionResult(
            model=report.model,
            parse=parse,
            report=report,
            tokens=tokens,
            trace=trace,
        )
        if self.cache is not None and signature is not None:
            self.cache.put(signature, CacheEntry.from_result(result))
        self.metrics.record_trace(trace)
        log_event(
            _logger, logging.DEBUG, "extract.complete",
            tokens=len(tokens),
            conditions=len(report.model.conditions),
            conflicts=len(report.conflict_tokens),
            missing=len(report.missing_tokens),
            truncated=stats.truncated,
            seconds=round(trace.total_seconds, 6),
        )
        return result

    def _replay_cached(
        self, entry: CacheEntry, tokens: list[Token], trace: Trace
    ) -> ExtractionResult:
        """Rebuild an :class:`ExtractionResult` from a cache entry.

        The model and stats are fresh deserialized objects; the parse
        carries no trees or instances (they were never stored) but replays
        the original counters so batch/benchmark stat sums are identical
        to a full recompute.  Warnings stored with the entry are re-issued
        on this trace.
        """
        trace.tags["cache_hit"] = True
        for warning in entry.warnings:
            trace.warn(warning)
        model = entry.rebuild_model()
        stats = entry.rebuild_stats()
        parse = ParseResult(
            trees=[],
            tokens=tokens,
            instances=[],
            stats=stats if stats is not None else ParseStats(tokens=len(tokens)),
        )
        result = ExtractionResult(
            model=model,
            parse=parse,
            report=MergeReport(model=model),
            tokens=tokens,
            trace=trace,
        )
        self.metrics.record_trace(trace)
        log_event(
            _logger, logging.DEBUG, "extract.cache_hit",
            tokens=len(tokens),
            conditions=len(model.conditions),
        )
        return result

    # -- the degradation ladder ---------------------------------------------------

    def extract_resilient(
        self,
        html: str,
        form_index: int = 0,
        config: ResilienceConfig | None = None,
    ) -> ExtractionResult:
        """Extract under the degradation ladder: always return a model.

        Runs the pipeline under a degrade-mode
        :class:`~repro.resilience.guard.ResourceGuard` and steps down the
        ladder (``full`` → ``capped`` → ``heuristic`` → ``minimal``) on
        budget breaches or stage failures instead of raising.  Every
        downgrade is a :class:`~repro.resilience.ladder.DegradationReport`
        on :attr:`ExtractionResult.degradation`, mirrored into the trace
        warnings/tags and counted as a ``degrade.<level>`` metric.

        The only exception that escapes is :class:`FormNotFoundError`
        (a caller error, not an input pathology).  Degraded results are
        never cached.
        """
        cfg = config if config is not None else self.resilience
        if cfg is None:
            cfg = ResilienceConfig()
        guard = ResourceGuard(limits=cfg.limits, mode="degrade").start()
        trace = Trace()
        tokens: list[Token] = []
        structural: list[DegradationReport] = []
        try:
            with trace.span("html-parse") as span:
                document = parse_html(html, guard=guard)
                span.count("chars", len(html))
                if document.truncated:
                    span.tags["truncated"] = True
                if document.depth_capped:
                    span.tags["depth_capped"] = True
                    structural.append(
                        DegradationReport(
                            level=LEVEL_CAPPED,
                            stage="html-parse",
                            reason="tree depth cap flattened deeply "
                            "nested markup",
                            resource="depth",
                        )
                    )
        except Exception as exc:
            trace.outcome = "ok"
            return self._finish_ladder(
                token_dump_model(tokens), None, None, tokens, trace, guard,
                [self._stage_failure(LEVEL_MINIMAL, "html-parse", exc)],
            )
        try:
            with trace.span("tokenize") as span:
                tokenizer = FormTokenizer(document, guard=guard)
                form = self._pick_form(document, form_index)
                if form is None:
                    trace.tags["form_fallback"] = True
                    trace.warn(
                        "document has no <form> element; "
                        "tokenized the whole page"
                    )
                tokens = tokenizer.tokenize(form)
                span.count("tokens", len(tokens))
                span.count("forms_on_page", len(document.forms))
        except FormNotFoundError:
            raise
        except Exception as exc:
            trace.outcome = "ok"
            return self._finish_ladder(
                token_dump_model(tokens), None, None, tokens, trace, guard,
                [self._stage_failure(LEVEL_MINIMAL, "tokenize", exc)],
            )
        return self._ladder_from_tokens(
            tokens, trace, guard, cfg, prior=structural
        )

    def _ladder_from_tokens(
        self,
        tokens: list[Token],
        trace: Trace,
        guard: ResourceGuard,
        cfg: ResilienceConfig,
        prior: list[DegradationReport] | None = None,
    ) -> ExtractionResult:
        """Parse/merge rungs of the ladder (shared with token-level entry)."""
        try:
            parse = self.parser.parse(tokens, guard=guard)
            stats = parse.stats
            construct = trace.add_span(
                "parse.construct",
                stats.construction_seconds,
                counters=stats.counters(),
            )
            construct.tags["kernel"] = stats.kernel
            construct.tags["compiled"] = stats.compiled
            self.metrics.inc(f"parse.kernel.{stats.kernel}")
            self.metrics.inc(
                f"parse.compiled.{'true' if stats.compiled else 'false'}"
            )
            if stats.truncated:
                construct.tags["truncated"] = True
            trace.add_span(
                "parse.maximize",
                stats.maximization_seconds,
                counters={"trees": len(parse.trees)},
            )
            with trace.span("merge") as span:
                report = self.merger.merge(parse, guard=guard)
                span.counters.update(report.counters())
        except Exception as exc:
            trace.outcome = "ok"
            return self._ladder_fallback(
                tokens, trace, guard, cfg,
                f"stage raised {type(exc).__name__}: {exc}",
                prior=prior,
            )
        reports = list(prior or [])
        reports += [
            DegradationReport(
                level=LEVEL_CAPPED,
                stage=event.stage,
                reason=event.describe(),
                resource=event.resource,
            )
            for event in guard.events
        ]
        if parse.stats.truncated and not reports:
            reports.append(
                DegradationReport(
                    level=LEVEL_CAPPED,
                    stage="parse",
                    reason="parser budget truncated the fix-point; "
                    "best partial parses kept",
                )
            )
        if reports and not report.model.conditions and tokens:
            # A cap that left nothing behind is a failure in disguise --
            # step down rather than hand back an empty "capped" model.
            return self._ladder_fallback(
                tokens, trace, guard, cfg,
                "budget-capped parse produced no conditions",
                prior=reports,
            )
        return self._finish_ladder(
            report.model, parse, report, tokens, trace, guard, reports
        )

    def _ladder_fallback(
        self,
        tokens: list[Token],
        trace: Trace,
        guard: ResourceGuard,
        cfg: ResilienceConfig,
        reason: str,
        prior: list[DegradationReport] | None = None,
    ) -> ExtractionResult:
        """Parse/merge gave nothing usable: step to heuristic, then minimal."""
        reports = list(prior or [])
        if cfg.heuristic_fallback:
            try:
                from repro.baseline.heuristic import HeuristicExtractor

                model = HeuristicExtractor().extract_from_tokens(tokens)
                reports.append(
                    DegradationReport(LEVEL_HEURISTIC, "parse", reason)
                )
                return self._finish_ladder(
                    model, None, None, tokens, trace, guard, reports
                )
            except Exception as heuristic_exc:
                reports.append(
                    DegradationReport(LEVEL_HEURISTIC, "parse", reason)
                )
                reports.append(
                    self._stage_failure(
                        LEVEL_MINIMAL, "heuristic", heuristic_exc
                    )
                )
                return self._finish_ladder(
                    token_dump_model(tokens), None, None, tokens, trace,
                    guard, reports,
                )
        reports.append(DegradationReport(LEVEL_MINIMAL, "parse", reason))
        return self._finish_ladder(
            token_dump_model(tokens), None, None, tokens, trace, guard,
            reports,
        )

    @staticmethod
    def _stage_failure(
        level: str, stage: str, exc: Exception
    ) -> DegradationReport:
        return DegradationReport(
            level=level,
            stage=stage,
            reason=f"stage raised {type(exc).__name__}: {exc}",
        )

    def _finish_ladder(
        self,
        model: SemanticModel,
        parse: ParseResult | None,
        report: MergeReport | None,
        tokens: list[Token],
        trace: Trace,
        guard: ResourceGuard,
        reports: list[DegradationReport],
    ) -> ExtractionResult:
        """Assemble the result, surfacing every downgrade."""
        if parse is None:
            parse = ParseResult(
                trees=[],
                tokens=tokens,
                instances=[],
                stats=ParseStats(tokens=len(tokens)),
            )
        if report is None:
            report = MergeReport(model=model)
        result = ExtractionResult(
            model=model,
            parse=parse,
            report=report,
            tokens=tokens,
            trace=trace,
            degradation=list(reports),
        )
        for entry in reports:
            trace.warn(entry.describe())
        level = result.level
        if level != LEVEL_FULL:
            trace.tags["degrade.level"] = level
            self.metrics.inc(f"degrade.{level}")
            log_event(
                _logger, logging.WARNING, "extract.degraded",
                degrade_level=level,
                reports=len(reports),
                tokens=len(tokens),
                conditions=len(model.conditions),
            )
        self.metrics.record_trace(trace)
        return result

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _pick_form(document: Document, form_index: int) -> Element | None:
        forms = document.forms
        if not forms:
            if form_index == 0:
                return None  # whole-page fallback, recorded by the caller
            raise FormNotFoundError(form_index, 0)
        if not 0 <= form_index < len(forms):
            raise FormNotFoundError(form_index, len(forms))
        return forms[form_index]


def extract_capabilities(html: str) -> SemanticModel:
    """One-shot extraction with the default grammar."""
    return FormExtractor().extract(html)
