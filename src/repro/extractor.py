"""The form extractor: the end-to-end pipeline of paper Figure 2.

Given an HTML query form, the extractor tokenizes the rendered page, parses
the tokens against the 2P grammar with the best-effort parser, and merges
the resulting partial parse trees into the form's query capabilities::

    from repro import FormExtractor

    extractor = FormExtractor()
    model = extractor.extract(html)
    for condition in model:
        print(condition)      # [Author; {contains}; text] ...
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.cache import cached_standard_grammar
from repro.grammar.grammar import TwoPGrammar
from repro.html.dom import Document, Element
from repro.html.parser import parse_html
from repro.merger.merger import Merger, MergeReport
from repro.parser.parser import BestEffortParser, ParseResult, ParserConfig
from repro.semantics.condition import SemanticModel
from repro.tokens.tokenizer import FormTokenizer
from repro.tokens.model import Token


@dataclass
class ExtractionResult:
    """Full trace of one extraction, for clients that need more than the
    semantic model (error handling, visualization, debugging)."""

    model: SemanticModel
    parse: ParseResult
    report: MergeReport
    tokens: list[Token]


class FormExtractor:
    """HTML query form → semantic model (query capabilities)."""

    def __init__(
        self,
        grammar: TwoPGrammar | None = None,
        parser_config: ParserConfig | None = None,
    ):
        # The cached grammar is shared across extractors (and with it the
        # cached schedule), so per-form extractor construction stays cheap.
        self.grammar = grammar if grammar is not None else cached_standard_grammar()
        self.parser = BestEffortParser(self.grammar, parser_config)
        self.merger = Merger()

    # -- main entry points --------------------------------------------------------

    def extract(self, html: str, form_index: int = 0) -> SemanticModel:
        """Extract the semantic model of the *form_index*-th form in *html*."""
        return self.extract_detailed(html, form_index).model

    def extract_detailed(self, html: str, form_index: int = 0) -> ExtractionResult:
        """Extract, returning the full pipeline trace."""
        document = parse_html(html)
        return self.extract_from_document(document, form_index)

    def extract_from_document(
        self, document: Document, form_index: int = 0
    ) -> ExtractionResult:
        """Extract from an already-parsed document."""
        tokenizer = FormTokenizer(document)
        form = self._pick_form(document, form_index)
        tokens = tokenizer.tokenize(form)
        return self.extract_from_tokens(tokens)

    def extract_from_tokens(self, tokens: list[Token]) -> ExtractionResult:
        """Parse and merge an existing token set."""
        parse = self.parser.parse(tokens)
        report = self.merger.merge(parse)
        return ExtractionResult(
            model=report.model, parse=parse, report=report, tokens=tokens
        )

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _pick_form(document: Document, form_index: int) -> Element | None:
        forms = document.forms
        if not forms:
            return None
        index = min(form_index, len(forms) - 1)
        return forms[index]


def extract_capabilities(html: str) -> SemanticModel:
    """One-shot extraction with the default grammar."""
    return FormExtractor().extract(html)
