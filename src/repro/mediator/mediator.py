"""Routing user queries across extracted deep-Web sources.

Onboarding is fully automatic: ``add_source`` runs the form extractor on
the source's HTML and keeps the extracted semantic model as the source
description (paper Section 1: mediation "relies on such source
descriptions ... largely constructed by hands today").  Querying then:

1. plans the user constraints against every source's extracted model;
2. skips sources that cannot honour all constraints (capability-based
   source selection);
3. submits to the capable sources and collects their records with
   provenance;
4. reports per-source planning outcomes so callers see *why* a source
   was skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extractor import FormExtractor
from repro.query.planner import Constraint, QueryPlan, QueryPlanner
from repro.semantics.condition import SemanticModel
from repro.webdb.records import Record
from repro.webdb.source import SimulatedSource


@dataclass
class SourceAnswer:
    """One source's contribution to a mediated query."""

    source_name: str
    plan: QueryPlan
    records: list[Record] = field(default_factory=list)
    queried: bool = False

    @property
    def skipped_reason(self) -> str:
        if self.queried:
            return ""
        return "; ".join(
            f"{constraint}: {reason}"
            for constraint, reason in self.plan.unplanned
        )


@dataclass
class MediatedAnswer:
    """The merged result of a mediated query."""

    answers: list[SourceAnswer] = field(default_factory=list)

    @property
    def records(self) -> list[tuple[str, Record]]:
        """All records, tagged with their source of origin."""
        merged: list[tuple[str, Record]] = []
        for answer in self.answers:
            merged.extend((answer.source_name, record) for record in answer.records)
        return merged

    @property
    def sources_queried(self) -> list[str]:
        return [a.source_name for a in self.answers if a.queried]

    @property
    def sources_skipped(self) -> list[str]:
        return [a.source_name for a in self.answers if not a.queried]


class Mediator:
    """Extract-once, query-many mediation over simulated sources."""

    def __init__(self, extractor: FormExtractor | None = None):
        self.extractor = extractor or FormExtractor()
        self._sources: list[SimulatedSource] = []
        self._models: dict[str, SemanticModel] = {}
        self._planners: dict[str, QueryPlanner] = {}

    # -- onboarding ---------------------------------------------------------------

    def add_source(self, source: SimulatedSource) -> SemanticModel:
        """Onboard *source*: extract and store its source description."""
        model = self.extractor.extract(source.html)
        name = source.generated.name
        self._sources.append(source)
        self._models[name] = model
        self._planners[name] = QueryPlanner(model)
        return model

    @property
    def source_names(self) -> list[str]:
        return [source.generated.name for source in self._sources]

    def description_of(self, source_name: str) -> SemanticModel | None:
        """The stored (extracted) description of an onboarded source."""
        return self._models.get(source_name)

    # -- querying ------------------------------------------------------------------

    def query(
        self, constraints: list[Constraint], partial: bool = False
    ) -> MediatedAnswer:
        """Pose *constraints* to every capable source.

        With ``partial=False`` a source is queried only when every
        constraint planned; with ``partial=True`` sources answering a
        subset are queried too (their answers are supersets of the exact
        answer -- the mediator's client must post-filter).
        """
        result = MediatedAnswer()
        for source in self._sources:
            name = source.generated.name
            plan = self._planners[name].plan(constraints)
            answer = SourceAnswer(source_name=name, plan=plan)
            if plan.complete or (partial and plan.planned):
                answer.records = source.submit(plan.params)
                answer.queried = True
            result.answers.append(answer)
        return result

    def capable_sources(self, constraints: list[Constraint]) -> list[str]:
        """Names of sources whose extracted model plans every constraint."""
        capable = []
        for source in self._sources:
            name = source.generated.name
            if self._planners[name].plan(constraints).complete:
                capable.append(name)
        return capable
