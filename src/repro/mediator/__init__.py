"""A minimal deep-Web mediator built on the form extractor.

The paper's opening motivation: with ~10^5 databases online, "large-scale
integration [is] a real necessity", and automatic capability extraction is
"the very first step".  This package supplies the last step for the
simulated ecosystem: a :class:`Mediator` that onboards sources by
extracting their capabilities from HTML, routes a user query to the
sources that can answer it, plans per-source submissions, and merges the
returned records with provenance.
"""

from repro.mediator.mediator import Mediator, MediatedAnswer, SourceAnswer

__all__ = ["MediatedAnswer", "Mediator", "SourceAnswer"]
