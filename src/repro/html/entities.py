"""HTML character-reference (entity) decoding.

Implements the subset of HTML entity handling that Web query forms actually
use: the full set of numeric character references (decimal and hexadecimal)
plus the named entities that appear in form markup (``&amp;``, ``&nbsp;``,
punctuation, currency symbols, accented Latin letters).  Unknown references
are passed through verbatim, mirroring browser behaviour -- the extractor
must never lose text because of an unrecognized entity.
"""

from __future__ import annotations

import re

# Named entities that occur in practice on query forms.  This is a curated
# subset of the HTML 4 table; numeric references cover everything else.
NAMED_ENTITIES: dict[str, str] = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "deg": "°",
    "plusmn": "±",
    "middot": "·",
    "laquo": "«",
    "raquo": "»",
    "ldquo": "“",
    "rdquo": "”",
    "lsquo": "‘",
    "rsquo": "’",
    "ndash": "–",
    "mdash": "—",
    "hellip": "…",
    "bull": "•",
    "sect": "§",
    "para": "¶",
    "cent": "¢",
    "pound": "£",
    "yen": "¥",
    "euro": "€",
    "curren": "¤",
    "frac12": "½",
    "frac14": "¼",
    "frac34": "¾",
    "sup1": "¹",
    "sup2": "²",
    "sup3": "³",
    "times": "×",
    "divide": "÷",
    "iexcl": "¡",
    "iquest": "¿",
    "agrave": "à",
    "aacute": "á",
    "acirc": "â",
    "atilde": "ã",
    "auml": "ä",
    "aring": "å",
    "aelig": "æ",
    "ccedil": "ç",
    "egrave": "è",
    "eacute": "é",
    "ecirc": "ê",
    "euml": "ë",
    "igrave": "ì",
    "iacute": "í",
    "icirc": "î",
    "iuml": "ï",
    "ntilde": "ñ",
    "ograve": "ò",
    "oacute": "ó",
    "ocirc": "ô",
    "otilde": "õ",
    "ouml": "ö",
    "oslash": "ø",
    "ugrave": "ù",
    "uacute": "ú",
    "ucirc": "û",
    "uuml": "ü",
    "yacute": "ý",
    "yuml": "ÿ",
    "szlig": "ß",
    "Agrave": "À",
    "Aacute": "Á",
    "Auml": "Ä",
    "Eacute": "É",
    "Ouml": "Ö",
    "Uuml": "Ü",
    "Ntilde": "Ñ",
    "Ccedil": "Ç",
}

_ENTITY_RE = re.compile(
    r"&(?:"
    r"#[xX](?P<hex>[0-9a-fA-F]{1,6})"
    r"|#(?P<dec>[0-9]{1,7})"
    r"|(?P<named>[a-zA-Z][a-zA-Z0-9]{1,31})"
    r");?"
)

# Windows-1252 mappings for the C1 range, which browsers apply to numeric
# references in 0x80-0x9F (forms in the wild use &#146; for apostrophes).
_CP1252_OVERRIDES: dict[int, str] = {
    0x80: "€", 0x82: "‚", 0x83: "ƒ", 0x84: "„",
    0x85: "…", 0x86: "†", 0x87: "‡", 0x88: "ˆ",
    0x89: "‰", 0x8A: "Š", 0x8B: "‹", 0x8C: "Œ",
    0x8E: "Ž", 0x91: "‘", 0x92: "’", 0x93: "“",
    0x94: "”", 0x95: "•", 0x96: "–", 0x97: "—",
    0x98: "˜", 0x99: "™", 0x9A: "š", 0x9B: "›",
    0x9C: "œ", 0x9E: "ž", 0x9F: "Ÿ",
}


def _decode_codepoint(value: int) -> str:
    """Map a numeric character reference to text, browser-style."""
    if value in _CP1252_OVERRIDES:
        return _CP1252_OVERRIDES[value]
    if value == 0 or value > 0x10FFFF or 0xD800 <= value <= 0xDFFF:
        return "�"
    return chr(value)


def _replace(match: re.Match[str]) -> str:
    hex_digits = match.group("hex")
    if hex_digits is not None:
        return _decode_codepoint(int(hex_digits, 16))
    dec_digits = match.group("dec")
    if dec_digits is not None:
        return _decode_codepoint(int(dec_digits, 10))
    name = match.group("named")
    if name in NAMED_ENTITIES:
        return NAMED_ENTITIES[name]
    # Try case-insensitive fallback before giving up.
    lowered = name.lower()
    if lowered in NAMED_ENTITIES:
        return NAMED_ENTITIES[lowered]
    return match.group(0)


def decode_entities(text: str) -> str:
    """Decode HTML character references in *text*.

    Both named (``&amp;``) and numeric (``&#38;``, ``&#x26;``) references are
    handled; a missing trailing semicolon is tolerated.  Unknown named
    references are left untouched, as browsers do.
    """
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_replace, text)


def encode_entities(text: str) -> str:
    """Escape the characters that are unsafe in HTML text content."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
