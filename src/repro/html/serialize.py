"""Serializing DOM trees back to HTML.

The inverse of the tree builder, for tooling: dataset inspection, fixture
generation, and test round-trips.  Serialization is normalizing rather
than byte-faithful -- tag case, attribute quoting, and implied closing
tags come out canonical -- but re-parsing serialized output always yields
an equivalent tree (asserted by property tests).
"""

from __future__ import annotations

from repro.html.dom import Comment, Document, Element, Node, Text
from repro.html.entities import encode_entities
from repro.html.parser import VOID_ELEMENTS

#: Rawtext elements whose content must not be entity-encoded.
_RAWTEXT = frozenset({"script", "style"})


def serialize(node: Node) -> str:
    """Serialize *node* (and descendants) to HTML text."""
    parts: list[str] = []
    _write(node, parts, raw=False)
    return "".join(parts)


def _write(node: Node, parts: list[str], raw: bool) -> None:
    if isinstance(node, Document):
        if node.doctype is not None:
            parts.append(f"<!DOCTYPE {node.doctype}>")
        for child in node.children:
            _write(child, parts, raw)
        return
    if isinstance(node, Text):
        parts.append(node.data if raw else encode_entities(node.data))
        return
    if isinstance(node, Comment):
        parts.append(f"<!--{node.data}-->")
        return
    if isinstance(node, Element):
        parts.append(_open_tag(node))
        if node.tag in VOID_ELEMENTS:
            return
        child_raw = raw or node.tag in _RAWTEXT
        for child in node.children:
            _write(child, parts, child_raw)
        parts.append(f"</{node.tag}>")


def _open_tag(element: Element) -> str:
    attributes = "".join(
        f' {name}="{_attr_value(value)}"' if value else f" {name}"
        for name, value in element.attributes.items()
    )
    return f"<{element.tag}{attributes}>"


def _attr_value(value: str) -> str:
    return value.replace("&", "&amp;").replace('"', "&quot;")
