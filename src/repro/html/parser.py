"""Forgiving HTML tree builder.

Assembles the lexer's token stream into a :class:`~repro.html.dom.Document`.
Mirrors the error-recovery behaviours of browser parsers that matter for
query forms in the wild:

* void elements (``<input>``, ``<br>`` ...) never take children;
* ``<p>``, ``<li>``, ``<option>``, ``<tr>``, ``<td>`` and friends are
  implicitly closed by a sibling opener;
* unmatched end tags are ignored;
* an end tag for an open ancestor pops every element in between;
* the builder never raises on any input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.html.dom import Comment, Document, Element, Node, Text
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    HTMLLexer,
    StartTagToken,
    TextToken,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard

#: Hard ceiling on the open-element stack.  Elements opened deeper than
#: this are attached but not pushed (their content flattens onto the
#: capped ancestor), which bounds DOM depth so the recursive layout
#: engine can never blow the interpreter stack on 10k-deep nesting.
#: Deliberately below the layout engine's own depth cap, so flattened
#: content still renders instead of being dropped a second time.
MAX_TREE_DEPTH = 120

#: Elements that cannot have content.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

#: For each tag, the set of open tags a new instance implicitly closes.
_IMPLICIT_CLOSERS: dict[str, frozenset[str]] = {
    "p": frozenset({"p"}),
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "option": frozenset({"option"}),
    "optgroup": frozenset({"option", "optgroup"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "thead": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tbody": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tfoot": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
}

#: Tags whose implicit closing must not escape these container tags.
_CLOSE_BARRIERS: dict[str, frozenset[str]] = {
    "li": frozenset({"ul", "ol"}),
    "option": frozenset({"select", "optgroup"}),
    "optgroup": frozenset({"select"}),
    "tr": frozenset({"table", "thead", "tbody", "tfoot"}),
    "td": frozenset({"tr", "table"}),
    "th": frozenset({"tr", "table"}),
    "dt": frozenset({"dl"}),
    "dd": frozenset({"dl"}),
}


class HTMLTreeBuilder:
    """Build a DOM tree from HTML text without ever rejecting the input."""

    def __init__(self, max_depth: int = MAX_TREE_DEPTH) -> None:
        self._document = Document()
        self._stack: list[Element] = []
        self._max_depth = max_depth
        self._guard: ResourceGuard | None = None
        self._stopped = False

    # -- public API -----------------------------------------------------------

    def parse(self, html: str, guard: ResourceGuard | None = None) -> Document:
        """Parse *html* and return the resulting :class:`Document`.

        With a *guard*, the builder cooperatively honors the input-size,
        node, depth, and deadline budgets: in degrade mode a breach stops
        consumption and marks ``document.truncated`` (the prefix tree is
        returned); in raise mode it raises ``BudgetExceeded``.
        """
        self._guard = guard
        if guard is not None:
            admitted = guard.cap_input(len(html), "html-parse")
            if admitted < len(html):
                html = html[:admitted]
                self._document.truncated = True
            limit = guard.limits.max_depth
            if limit is not None:
                self._max_depth = min(self._max_depth, limit)
        for token in HTMLLexer(html).tokens():
            if guard is not None and guard.tick("html-parse", stride=512):
                self._document.truncated = True
                break
            if isinstance(token, TextToken):
                self._handle_text(token)
            elif isinstance(token, StartTagToken):
                self._handle_start_tag(token)
            elif isinstance(token, EndTagToken):
                self._handle_end_tag(token)
            elif isinstance(token, CommentToken):
                if self._admit_node():
                    self._current().append_child(Comment(token.data))
            elif isinstance(token, DoctypeToken):
                if self._document.doctype is None:
                    self._document.doctype = token.data
            if self._stopped:
                self._document.truncated = True
                break
        return self._document

    # -- token handlers ---------------------------------------------------------

    def _current(self) -> Node:
        return self._stack[-1] if self._stack else self._document

    def _admit_node(self) -> bool:
        if self._guard is None:
            return True
        if self._guard.admit_nodes(1, "html-parse"):
            return True
        self._stopped = True
        return False

    def _handle_text(self, token: TextToken) -> None:
        if not token.data:
            return
        parent = self._current()
        # Merge adjacent text nodes so layout sees contiguous runs.
        if parent.children and isinstance(parent.children[-1], Text):
            last = parent.children[-1]
            last.data += token.data
            return
        if not self._admit_node():
            return
        parent.append_child(Text(token.data))

    def _handle_start_tag(self, token: StartTagToken) -> None:
        name = token.name
        self._close_open_select(name)
        self._apply_implicit_closes(name)
        if not self._admit_node():
            return
        element = Element(name, token.attributes)
        self._current().append_child(element)
        if name in VOID_ELEMENTS or token.self_closing:
            return
        if len(self._stack) >= self._max_depth:
            # Too deep: attach but do not push -- deeper content flattens
            # onto this level instead of growing the tree.
            self._document.depth_capped = True
            if self._guard is not None:
                self._guard.admit_depth(len(self._stack) + 1, "html-parse")
            return
        self._stack.append(element)

    def _close_open_select(self, name: str) -> None:
        """An unterminated ``<select>`` closes at the next non-option tag.

        Browsers never let page content nest inside a select (the HTML5
        "in select" insertion mode); without this, one missing
        ``</select>`` would swallow -- and hide -- the rest of the form.
        """
        if name in ("option", "optgroup"):
            return
        for index in range(len(self._stack) - 1, -1, -1):
            tag = self._stack[index].tag
            if tag == "select":
                del self._stack[index:]
                return
            if tag not in ("option", "optgroup"):
                return

    def _apply_implicit_closes(self, name: str) -> None:
        closers = _IMPLICIT_CLOSERS.get(name)
        if closers is None:
            return
        barriers = _CLOSE_BARRIERS.get(name, frozenset())
        # Pop elements the new tag implicitly closes, stopping at barriers.
        while self._stack:
            top = self._stack[-1].tag
            if top in barriers:
                break
            if top in closers:
                self._stack.pop()
                continue
            break

    def _handle_end_tag(self, token: EndTagToken) -> None:
        name = token.name
        if name in VOID_ELEMENTS:
            return  # e.g. stray </br>
        # Find the matching open element, if any.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index].tag == name:
                del self._stack[index:]
                return
        # Unmatched end tag: ignore, as browsers do.


def parse_html(html: str, guard: ResourceGuard | None = None) -> Document:
    """Parse *html* into a :class:`Document` (never raises without a
    raise-mode *guard*)."""
    return HTMLTreeBuilder().parse(html, guard=guard)
