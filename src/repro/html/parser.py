"""Forgiving HTML tree builder.

Assembles the lexer's token stream into a :class:`~repro.html.dom.Document`.
Mirrors the error-recovery behaviours of browser parsers that matter for
query forms in the wild:

* void elements (``<input>``, ``<br>`` ...) never take children;
* ``<p>``, ``<li>``, ``<option>``, ``<tr>``, ``<td>`` and friends are
  implicitly closed by a sibling opener;
* unmatched end tags are ignored;
* an end tag for an open ancestor pops every element in between;
* the builder never raises on any input.
"""

from __future__ import annotations

from repro.html.dom import Comment, Document, Element, Node, Text
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    HTMLLexer,
    StartTagToken,
    TextToken,
)

#: Elements that cannot have content.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

#: For each tag, the set of open tags a new instance implicitly closes.
_IMPLICIT_CLOSERS: dict[str, frozenset[str]] = {
    "p": frozenset({"p"}),
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "option": frozenset({"option"}),
    "optgroup": frozenset({"option", "optgroup"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "thead": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tbody": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tfoot": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
}

#: Tags whose implicit closing must not escape these container tags.
_CLOSE_BARRIERS: dict[str, frozenset[str]] = {
    "li": frozenset({"ul", "ol"}),
    "option": frozenset({"select", "optgroup"}),
    "optgroup": frozenset({"select"}),
    "tr": frozenset({"table", "thead", "tbody", "tfoot"}),
    "td": frozenset({"tr", "table"}),
    "th": frozenset({"tr", "table"}),
    "dt": frozenset({"dl"}),
    "dd": frozenset({"dl"}),
}


class HTMLTreeBuilder:
    """Build a DOM tree from HTML text without ever rejecting the input."""

    def __init__(self) -> None:
        self._document = Document()
        self._stack: list[Element] = []

    # -- public API -----------------------------------------------------------

    def parse(self, html: str) -> Document:
        """Parse *html* and return the resulting :class:`Document`."""
        for token in HTMLLexer(html).tokens():
            if isinstance(token, TextToken):
                self._handle_text(token)
            elif isinstance(token, StartTagToken):
                self._handle_start_tag(token)
            elif isinstance(token, EndTagToken):
                self._handle_end_tag(token)
            elif isinstance(token, CommentToken):
                self._current().append_child(Comment(token.data))
            elif isinstance(token, DoctypeToken):
                if self._document.doctype is None:
                    self._document.doctype = token.data
        return self._document

    # -- token handlers ---------------------------------------------------------

    def _current(self) -> Node:
        return self._stack[-1] if self._stack else self._document

    def _handle_text(self, token: TextToken) -> None:
        if not token.data:
            return
        parent = self._current()
        # Merge adjacent text nodes so layout sees contiguous runs.
        if parent.children and isinstance(parent.children[-1], Text):
            last = parent.children[-1]
            last.data += token.data
            return
        parent.append_child(Text(token.data))

    def _handle_start_tag(self, token: StartTagToken) -> None:
        name = token.name
        self._close_open_select(name)
        self._apply_implicit_closes(name)
        element = Element(name, token.attributes)
        self._current().append_child(element)
        if name in VOID_ELEMENTS or token.self_closing:
            return
        self._stack.append(element)

    def _close_open_select(self, name: str) -> None:
        """An unterminated ``<select>`` closes at the next non-option tag.

        Browsers never let page content nest inside a select (the HTML5
        "in select" insertion mode); without this, one missing
        ``</select>`` would swallow -- and hide -- the rest of the form.
        """
        if name in ("option", "optgroup"):
            return
        for index in range(len(self._stack) - 1, -1, -1):
            tag = self._stack[index].tag
            if tag == "select":
                del self._stack[index:]
                return
            if tag not in ("option", "optgroup"):
                return

    def _apply_implicit_closes(self, name: str) -> None:
        closers = _IMPLICIT_CLOSERS.get(name)
        if closers is None:
            return
        barriers = _CLOSE_BARRIERS.get(name, frozenset())
        # Pop elements the new tag implicitly closes, stopping at barriers.
        while self._stack:
            top = self._stack[-1].tag
            if top in barriers:
                break
            if top in closers:
                self._stack.pop()
                continue
            break

    def _handle_end_tag(self, token: EndTagToken) -> None:
        name = token.name
        if name in VOID_ELEMENTS:
            return  # e.g. stray </br>
        # Find the matching open element, if any.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index].tag == name:
                del self._stack[index:]
                return
        # Unmatched end tag: ignore, as browsers do.


def parse_html(html: str) -> Document:
    """Parse *html* into a :class:`Document` (never raises)."""
    return HTMLTreeBuilder().parse(html)
