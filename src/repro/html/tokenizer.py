"""HTML lexer: splits raw markup into a flat stream of lexical tokens.

This is the first stage of the DOM substrate.  It is deliberately forgiving:
any byte sequence lexes to *some* token stream, because query forms on the
deep Web are routinely malformed and the form extractor must not reject them
(the "best-effort" philosophy starts here).

The lexer understands start tags with quoted/unquoted/valueless attributes,
end tags, comments (including bogus ones), doctypes, and the raw-text
elements ``script`` and ``style`` whose content must not be tokenized as
markup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.html.entities import decode_entities

# Elements whose content is raw text until the matching close tag.
RAWTEXT_ELEMENTS = frozenset({"script", "style", "textarea", "title"})

_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:_.-]*")
_ATTR_RE = re.compile(
    r"""\s*(?P<name>[^\s=/>]+)"""
    r"""(?:\s*=\s*(?P<value>"[^"]*"|'[^']*'|[^\s>]*))?"""
)
_WS_RE = re.compile(r"\s+")


@dataclass(frozen=True)
class LexToken:
    """Base class for lexical tokens.  ``position`` is the source offset."""

    position: int


@dataclass(frozen=True)
class TextToken(LexToken):
    """A run of character data (entities already decoded)."""

    data: str = ""


@dataclass(frozen=True)
class StartTagToken(LexToken):
    """An opening tag, e.g. ``<input type="text" name=q>``."""

    name: str = ""
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass(frozen=True)
class EndTagToken(LexToken):
    """A closing tag, e.g. ``</form>``."""

    name: str = ""


@dataclass(frozen=True)
class CommentToken(LexToken):
    """An HTML comment; preserved so tooling can round-trip documents."""

    data: str = ""


@dataclass(frozen=True)
class DoctypeToken(LexToken):
    """A ``<!DOCTYPE ...>`` declaration (content kept verbatim)."""

    data: str = ""


class HTMLLexer:
    """Convert an HTML string into a stream of :class:`LexToken`.

    The lexer never raises on malformed input.  A stray ``<`` that does not
    begin a plausible tag is treated as literal text, as browsers do.
    """

    def __init__(self, html: str, guard=None):
        if guard is not None:
            admitted = guard.cap_input(len(html), "html-lex")
            if admitted < len(html):
                html = html[:admitted]
        self._guard = guard
        self._html = html
        self._length = len(html)
        self._pos = 0
        # When set, we are inside a rawtext element and only its end tag
        # terminates the text run.
        self._rawtext_tag: str | None = None

    def tokens(self) -> Iterator[LexToken]:
        """Yield lexical tokens until the input is exhausted (stopping
        early when an attached guard's deadline passes)."""
        guard = self._guard
        while self._pos < self._length:
            if guard is not None and guard.tick("html-lex", stride=512):
                break
            if self._rawtext_tag is not None:
                token = self._lex_rawtext()
                if token is not None:
                    yield token
                continue
            lt = self._html.find("<", self._pos)
            if lt == -1:
                yield self._text_token(self._pos, self._html[self._pos:])
                self._pos = self._length
                break
            if lt > self._pos:
                yield self._text_token(self._pos, self._html[self._pos:lt])
                self._pos = lt
                continue
            token = self._lex_angle()
            if token is not None:
                yield token

    # ------------------------------------------------------------------
    # internal lexing helpers
    # ------------------------------------------------------------------

    def _text_token(self, position: int, raw: str) -> TextToken:
        return TextToken(position=position, data=decode_entities(raw))

    def _lex_rawtext(self) -> LexToken | None:
        """Lex content of a rawtext element up to its end tag."""
        assert self._rawtext_tag is not None
        close_re = re.compile(
            r"</\s*" + re.escape(self._rawtext_tag) + r"\s*>", re.IGNORECASE
        )
        match = close_re.search(self._html, self._pos)
        tag = self._rawtext_tag
        if match is None:
            # Unterminated rawtext: consume everything.
            start = self._pos
            data = self._html[start:]
            self._pos = self._length
            self._rawtext_tag = None
            if data:
                return TextToken(position=start, data=data)
            return None
        start = self._pos
        data = self._html[start : match.start()]
        self._pos = match.end()
        self._rawtext_tag = None
        if data:
            # Rawtext content is not entity-decoded except in textarea,
            # where browsers do decode character references.
            if tag == "textarea":
                data = decode_entities(data)
            return TextToken(position=start, data=data)
        return None

    def _lex_angle(self) -> LexToken | None:
        """Lex a construct starting with ``<`` at the current position."""
        html = self._html
        start = self._pos
        nxt = html[start + 1] if start + 1 < self._length else ""

        if nxt == "!":
            return self._lex_markup_declaration()
        if nxt == "?":
            # Bogus comment per the HTML spec: <? ... >
            end = html.find(">", start)
            end = self._length if end == -1 else end
            data = html[start + 2 : end]
            self._pos = min(end + 1, self._length)
            return CommentToken(position=start, data=data)
        if nxt == "/":
            return self._lex_end_tag()
        if _TAG_NAME_RE.match(html, start + 1):
            return self._lex_start_tag()
        # Literal "<" followed by junk -- emit it as text.
        self._pos = start + 1
        return TextToken(position=start, data="<")

    def _lex_markup_declaration(self) -> LexToken:
        html = self._html
        start = self._pos
        if html.startswith("<!--", start):
            end = html.find("-->", start + 4)
            if end == -1:
                data = html[start + 4 :]
                self._pos = self._length
            else:
                data = html[start + 4 : end]
                self._pos = end + 3
            return CommentToken(position=start, data=data)
        # DOCTYPE or a bogus declaration.
        end = html.find(">", start)
        end = self._length if end == -1 else end
        body = html[start + 2 : end]
        self._pos = min(end + 1, self._length)
        if body.lower().startswith("doctype"):
            return DoctypeToken(position=start, data=body[7:].strip())
        return CommentToken(position=start, data=body)

    def _lex_end_tag(self) -> LexToken:
        html = self._html
        start = self._pos
        match = _TAG_NAME_RE.match(html, start + 2)
        if match is None:
            # "</" followed by junk: browsers treat "</>" as nothing and
            # "</ x" as a bogus comment; we fold both into a comment.
            end = html.find(">", start)
            end = self._length if end == -1 else end
            data = html[start + 2 : end]
            self._pos = min(end + 1, self._length)
            return CommentToken(position=start, data=data)
        name = match.group(0).lower()
        end = html.find(">", match.end())
        self._pos = self._length if end == -1 else end + 1
        return EndTagToken(position=start, name=name)

    def _lex_start_tag(self) -> LexToken:
        html = self._html
        start = self._pos
        match = _TAG_NAME_RE.match(html, start + 1)
        assert match is not None
        name = match.group(0).lower()
        cursor = match.end()
        attributes: dict[str, str] = {}
        self_closing = False

        while cursor < self._length:
            # Skip whitespace between attributes.
            ws = _WS_RE.match(html, cursor)
            if ws:
                cursor = ws.end()
            if cursor >= self._length:
                break
            ch = html[cursor]
            if ch == ">":
                cursor += 1
                break
            if ch == "/":
                if cursor + 1 < self._length and html[cursor + 1] == ">":
                    self_closing = True
                    cursor += 2
                    break
                cursor += 1
                continue
            attr = _ATTR_RE.match(html, cursor)
            if attr is None or attr.end() == cursor:
                cursor += 1
                continue
            attr_name = attr.group("name").lower()
            raw_value = attr.group("value")
            if raw_value is None:
                value = ""
            elif raw_value[:1] in {'"', "'"}:
                value = raw_value[1:-1] if len(raw_value) >= 2 else ""
            else:
                value = raw_value
            if attr_name not in attributes:
                attributes[attr_name] = decode_entities(value)
            cursor = attr.end()

        self._pos = cursor
        if name in RAWTEXT_ELEMENTS and not self_closing:
            self._rawtext_tag = name
        return StartTagToken(
            position=start,
            name=name,
            attributes=attributes,
            self_closing=self_closing,
        )


def lex_html(html: str) -> list[LexToken]:
    """Convenience wrapper: lex *html* into a token list."""
    return list(HTMLLexer(html).tokens())
