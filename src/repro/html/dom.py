"""DOM node model: documents, elements, text, and comments.

A small, browser-like document object model.  Nodes form a tree; elements
carry lower-cased tag names and attribute dictionaries.  The model offers the
traversal and query helpers the rest of the system needs (``find``,
``find_all``, ``iter``, ``text_content``) without pretending to be a full
W3C DOM.
"""

from __future__ import annotations

from typing import Callable, Iterator


class Node:
    """Base class for all DOM nodes."""

    __slots__ = ("parent", "children")

    def __init__(self) -> None:
        self.parent: Element | Document | None = None
        self.children: list[Node] = []

    # -- tree manipulation -------------------------------------------------

    def append_child(self, child: "Node") -> "Node":
        """Attach *child* as the last child of this node and return it."""
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self  # type: ignore[assignment]
        self.children.append(child)
        return child

    def remove_child(self, child: "Node") -> "Node":
        """Detach *child* from this node and return it."""
        self.children.remove(child)
        child.parent = None
        return child

    # -- traversal ---------------------------------------------------------

    def iter(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document order."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["Element"]:
        """Yield descendant elements (including self if it is one)."""
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- queries -----------------------------------------------------------

    def find(
        self, tag: str, predicate: Callable[["Element"], bool] | None = None
    ) -> "Element | None":
        """Return the first descendant element with *tag*, or ``None``."""
        for element in self.find_all(tag, predicate):
            return element
        return None

    def find_all(
        self, tag: str, predicate: Callable[["Element"], bool] | None = None
    ) -> Iterator["Element"]:
        """Yield descendant elements with *tag* satisfying *predicate*."""
        wanted = tag.lower()
        for element in self.iter_elements():
            if element is self:
                continue
            if element.tag == wanted and (predicate is None or predicate(element)):
                yield element

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: list[str] = []
        for node in self.iter():
            if isinstance(node, Text):
                parts.append(node.data)
        return "".join(parts)


class Document(Node):
    """The root of a parsed HTML tree."""

    __slots__ = ("doctype", "truncated", "depth_capped")

    def __init__(self) -> None:
        super().__init__()
        self.doctype: str | None = None
        #: True when the builder stopped early (input/node/deadline budget).
        self.truncated: bool = False
        #: True when elements beyond the depth cap were flattened.
        self.depth_capped: bool = False

    def __repr__(self) -> str:
        return f"<Document children={len(self.children)}>"

    @property
    def body(self) -> "Element | None":
        """The ``<body>`` element, if the document has one."""
        return self.find("body")

    @property
    def forms(self) -> list["Element"]:
        """All ``<form>`` elements in document order."""
        return list(self.find_all("form"))


class Element(Node):
    """An HTML element with a tag name and attributes."""

    __slots__ = ("tag", "attributes")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None):
        super().__init__()
        self.tag = tag.lower()
        self.attributes: dict[str, str] = dict(attributes or {})

    def __repr__(self) -> str:
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attributes.items())
        label = f"{self.tag} {attrs}".strip()
        return f"<Element {label}>"

    # -- attribute access ----------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return attribute *name* (case-insensitive) or *default*."""
        return self.attributes.get(name.lower(), default)

    def has_attribute(self, name: str) -> bool:
        """True if the element carries attribute *name*."""
        return name.lower() in self.attributes

    @property
    def id(self) -> str | None:
        return self.get("id")

    @property
    def name(self) -> str | None:
        return self.get("name")

    # -- element-specific helpers ---------------------------------------------

    def child_elements(self) -> list["Element"]:
        """Direct element children, in order."""
        return [child for child in self.children if isinstance(child, Element)]

    def own_text(self) -> str:
        """Text from direct text-node children only (not descendants)."""
        return "".join(
            child.data for child in self.children if isinstance(child, Text)
        )


class Text(Node):
    """A text node."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        super().__init__()
        self.data = data

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"<Text {preview!r}>"


class Comment(Node):
    """A comment node; kept for fidelity but ignored by layout."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        super().__init__()
        self.data = data

    def __repr__(self) -> str:
        return f"<Comment {self.data[:30]!r}>"
