"""HTML substrate: lexer, DOM model, and a forgiving tree builder.

The paper's form extractor relies on a browser's HTML DOM API (Internet
Explorer in the original implementation) to access tags and their rendered
positions.  This package provides the DOM half of that substrate: a
from-scratch HTML lexer (:mod:`repro.html.tokenizer`), a DOM node model
(:mod:`repro.html.dom`), and a forgiving, browser-style tree builder
(:mod:`repro.html.parser`) that never rejects its input -- real Web query
forms are frequently malformed, and the extractor must accept them anyway.

Typical usage::

    from repro.html import parse_html

    document = parse_html("<form><input name='q'></form>")
    form = document.find("form")
"""

from repro.html.dom import (
    Comment,
    Document,
    Element,
    Node,
    Text,
)
from repro.html.entities import decode_entities
from repro.html.parser import HTMLTreeBuilder, parse_html
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    HTMLLexer,
    LexToken,
    StartTagToken,
    TextToken,
)

__all__ = [
    "Comment",
    "CommentToken",
    "DoctypeToken",
    "Document",
    "Element",
    "EndTagToken",
    "HTMLLexer",
    "HTMLTreeBuilder",
    "LexToken",
    "Node",
    "StartTagToken",
    "Text",
    "TextToken",
    "decode_entities",
    "parse_html",
]
